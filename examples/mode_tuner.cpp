/**
 * @file
 * Mode tuner: given a benchmark, a quality floor, and a power
 * budget, recommend the Accordion operating point — problem size,
 * mode, flavor, core count and clock — that maximizes energy
 * efficiency while matching the STV execution time. This is the
 * decision a cluster-scheduler integration of Accordion would make
 * per job.
 *
 *   ./mode_tuner [benchmark] [quality_floor] [power_budget_w]
 *   e.g. ./mode_tuner hotspot 0.9 80
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/accordion.hpp"

using namespace accordion;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hotspot";
    const double q_floor = argc > 2 ? std::atof(argv[2]) : 0.9;
    const double budget = argc > 3 ? std::atof(argv[3]) : 100.0;

    core::AccordionSystem::Config config;
    config.power.budgetW = budget;
    core::AccordionSystem system(config);
    const rms::Workload &w = rms::findWorkload(name);
    const core::QualityProfile &profile = system.profile(name);
    const core::StvBaseline base = system.pareto().baseline(w, profile);

    std::printf("mode tuner: %s, quality floor %.2f, budget %.0f W\n",
                name.c_str(), q_floor, budget);
    std::printf("STV reference: %zu cores, %.3g s, %.1f W\n\n",
                base.n, base.seconds, base.powerW);

    const core::OperatingPoint *best = nullptr;
    std::vector<core::OperatingPoint> all;
    for (core::Flavor flavor :
         {core::Flavor::Safe, core::Flavor::Speculative}) {
        for (const auto &p :
             system.pareto().extract(w, profile, flavor))
            all.push_back(p);
    }
    for (const auto &p : all) {
        if (!p.feasible || !p.withinBudget ||
            p.qualityRatio < q_floor)
            continue;
        if (!best ||
            p.efficiencyRatio(base) > best->efficiencyRatio(base))
            best = &p;
    }

    if (!best) {
        std::printf("no feasible operating point satisfies the "
                    "constraints; relax the quality floor or the "
                    "budget.\n");
        return 1;
    }
    std::printf("recommended operating point:\n");
    std::printf("  mode:        %s %s\n",
                core::flavorName(best->flavor).c_str(),
                core::sizeModeName(best->sizeMode).c_str());
    std::printf("  problem size: %.2fx the default (%s = adjust "
                "accordingly)\n",
                best->psRatio, w.accordionInputName().c_str());
    std::printf("  cores:       %zu of %zu (%.1fx N_STV)\n", best->n,
                system.chip().numCores(), best->nRatio(base));
    std::printf("  clock:       %.2f GHz at Vdd = %.3f V%s\n",
                best->fHz / 1e9, system.chip().vddNtv(),
                best->flavor == core::Flavor::Speculative
                    ? " (above the safe clock)"
                    : "");
    std::printf("  power:       %.1f W (%.2fx STV)\n", best->powerW,
                best->powerRatio(base));
    std::printf("  efficiency:  %.2fx the STV MIPS/W\n",
                best->efficiencyRatio(base));
    std::printf("  quality:     %.3fx STV\n", best->qualityRatio);
    return 0;
}
