/**
 * @file
 * CC/DC failover demo: run a Monte Carlo pricing workload (a
 * data-intensive, fault-tolerant RMS-style computation) through the
 * Accordion master-slave runtime while data cores hang and corrupt
 * results, and watch the control core's watchdogs and quality
 * limits contain every error.
 *
 *   ./cc_dc_failover [hang_prob] [corrupt_prob]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/runtime.hpp"
#include "util/rng.hpp"

using namespace accordion;
using namespace accordion::core;

int
main(int argc, char **argv)
{
    const double hang_prob = argc > 1 ? std::atof(argv[1]) : 0.05;
    const double corrupt_prob = argc > 2 ? std::atof(argv[2]) : 0.05;

    // Work: estimate E[max(S-K, 0)] by per-item Monte Carlo batches
    // — each work item prices one strike, tolerating dropped items
    // the way RMS applications tolerate dropped tasks.
    const ItemFn price = [](const WorkItem &item) {
        util::Rng rng(7, item.id);
        const double strike = 0.8 + item.input;
        double sum = 0.0;
        const int paths = 2000;
        for (int i = 0; i < paths; ++i) {
            const double s = std::exp(-0.02 + 0.2 * rng.normal());
            sum += std::max(0.0, s - strike);
        }
        return sum / paths;
    };
    std::vector<WorkItem> items(256);
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = {i, static_cast<double>(i) / 512.0};

    RuntimeParams params;
    params.organization = Organization::HomogeneousSpatial;
    params.numDcs = 14;
    params.numCcs = 2;
    params.maxRetries = 1;
    // The application developer's preset limit on per-task quality
    // degradation (Section 6.3, outcome class (ii)).
    params.acceptable = [](double v) {
        return std::isfinite(v) && v >= 0.0 && v <= 1.0;
    };

    DcFaultModel faults;
    faults.hangProbability = hang_prob;
    faults.corruptProbability = corrupt_prob;
    faults.corruptMagnitude = 50.0;
    faults.seed = 99;

    std::printf("CC/DC failover demo: %zu items on %zu DCs / %zu "
                "CCs, hang %.0f%%, corrupt %.0f%%\n\n",
                items.size(), params.numDcs, params.numCcs,
                100.0 * hang_prob, 100.0 * corrupt_prob);

    const AccordionRuntime runtime{params};
    const RuntimeReport clean = runtime.execute(items, price);
    const RuntimeReport faulty = runtime.execute(items, price, faults);

    std::printf("%-28s %10s %10s\n", "", "fault-free", "faulty");
    std::printf("%-28s %10zu %10zu\n", "completed first try",
                clean.completed, faulty.completed);
    std::printf("%-28s %10zu %10zu\n", "recovered by re-dispatch",
                clean.recovered, faulty.recovered);
    std::printf("%-28s %10zu %10zu\n", "dropped (perceived as Drop)",
                clean.dropped, faulty.dropped);
    std::printf("%-28s %10zu %10zu\n", "watchdog fires",
                clean.watchdogFires, faulty.watchdogFires);
    std::printf("%-28s %10zu %10zu\n", "quality-limit rejects",
                clean.qualityRejects, faulty.qualityRejects);
    std::printf("%-28s %10.1f %10.1f\n", "virtual time",
                clean.virtualTime, faulty.virtualTime);

    // Application-level damage: mean price over surviving items vs
    // the fault-free merge — RMS fault tolerance in action.
    double clean_mean = 0.0, faulty_mean = 0.0;
    for (double v : clean.results)
        clean_mean += v;
    clean_mean /= static_cast<double>(clean.results.size());
    for (double v : faulty.results)
        faulty_mean += v;
    faulty_mean /= static_cast<double>(faulty.results.size());
    std::printf("\nmerged estimate: %.5f fault-free vs %.5f under "
                "faults (%.2f%% deviation, %zu/%zu items survive)\n",
                clean_mean, faulty_mean,
                100.0 * std::abs(faulty_mean - clean_mean) /
                    clean_mean,
                faulty.results.size(), items.size());
    std::printf("every corrupted result was either caught by the "
                "CC's quality limit or diluted by the merge — no "
                "crash, no hang, bounded quality loss.\n");
    return 0;
}
