/**
 * @file
 * Quickstart: wire up an Accordion system, inspect the manufactured
 * chip, and extract an iso-execution-time operating point for one
 * RMS kernel.
 *
 *   ./quickstart [benchmark]   (default: canneal)
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/accordion.hpp"

using namespace accordion;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "canneal";

    // One object wires the whole stack: 11 nm technology, a
    // variation-afflicted 288-core chip, power + performance
    // models, and cached per-kernel quality profiles.
    core::AccordionSystem system;
    const auto &chip = system.chip();

    std::printf("Accordion quickstart\n");
    std::printf("====================\n");
    std::printf("chip: %zu cores, %zu clusters, VddNTV = %.3f V\n",
                chip.numCores(), chip.numClusters(), chip.vddNtv());
    double f_lo = 1e300, f_hi = 0.0;
    for (std::size_t k = 0; k < chip.numClusters(); ++k) {
        f_lo = std::min(f_lo, chip.clusterSafeF(k));
        f_hi = std::max(f_hi, chip.clusterSafeF(k));
    }
    std::printf("cluster safe f spans [%.2f, %.2f] GHz "
                "(nominal would be 1.00)\n",
                f_lo / 1e9, f_hi / 1e9);

    const rms::Workload &w = rms::findWorkload(name);
    std::printf("\nbenchmark: %s (%s; Accordion input: %s)\n",
                w.name().c_str(), w.domain().c_str(),
                w.accordionInputName().c_str());

    const core::QualityProfile &profile = system.profile(name);
    const core::StvBaseline base = system.pareto().baseline(w, profile);
    std::printf("STV baseline: %zu cores at %.1f GHz, %.3g s, "
                "%.1f W\n",
                base.n, base.fHz / 1e9, base.seconds, base.powerW);

    // Ask for the Speculative Expand point at 1.33x problem size:
    // more work in the same time, errors embraced, quality made up
    // by the larger problem.
    const auto point = system.pareto().evaluateAt(
        w, profile, core::Flavor::Speculative, 1.33, base);
    std::printf("\nSpeculative %s at 1.33x problem size:\n",
                core::sizeModeName(point.sizeMode).c_str());
    std::printf("  cores: %zu (%.1fx N_STV), f = %.2f GHz "
                "(Perr target %.1e)\n",
                point.n, point.nRatio(base), point.fHz / 1e9,
                point.perr);
    std::printf("  execution time: %.3g s (STV: %.3g s) -> %s\n",
                point.execSeconds, base.seconds,
                point.feasible ? "iso-execution time met"
                               : "NOT met (N-limited)");
    std::printf("  power: %.1f W (budget %.0f W)%s\n", point.powerW,
                system.powerModel().budget(),
                point.withinBudget ? "" : "  ** over budget **");
    std::printf("  energy efficiency: %.2fx the STV MIPS/W\n",
                point.efficiencyRatio(base));
    std::printf("  output quality: %.3fx the STV quality (assumed "
                "drop share %.0f%%)\n",
                point.qualityRatio, 100.0 * point.dropFraction);
    return 0;
}
