/**
 * @file
 * Variation explorer: manufacture a batch of chips and visualize
 * how parametric variation shapes each one — an ASCII safe-
 * frequency map of the cluster grid, per-chip VddNTV, and the
 * batch statistics a binning engineer would look at.
 *
 *   ./variation_explorer [num_chips] [seed]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/stats.hpp"
#include "vartech/variation_chip.hpp"

using namespace accordion;

namespace {

/** Render the 6x6 cluster grid as a safe-f heat map. */
void
printClusterMap(const vartech::VariationChip &chip)
{
    const auto &geo = chip.geometry();
    const char shades[] = " .:-=+*#%@";
    double lo = 1e300, hi = 0.0;
    for (std::size_t k = 0; k < chip.numClusters(); ++k) {
        lo = std::min(lo, chip.clusterSafeF(k));
        hi = std::max(hi, chip.clusterSafeF(k));
    }
    std::printf("  cluster safe-f map (@ fast .. ' ' slow, "
                "[%.2f, %.2f] GHz):\n", lo / 1e9, hi / 1e9);
    for (std::size_t y = 0; y < geo.params().clustersY; ++y) {
        std::printf("    ");
        for (std::size_t x = 0; x < geo.params().clustersX; ++x) {
            const std::size_t k = y * geo.params().clustersX + x;
            const double t =
                (chip.clusterSafeF(k) - lo) / (hi - lo + 1e-12);
            const auto idx = static_cast<std::size_t>(t * 9.0);
            std::printf("%c%c", shades[idx], shades[idx]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t count =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
    const std::uint64_t seed =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 12345;

    const auto tech = vartech::Technology::makeItrs11nm();
    const vartech::ChipFactory factory(
        tech, vartech::ChipFactory::Params{}, seed);

    util::OnlineStats vddntv, worst_f, best_f;
    for (std::uint64_t id = 0; id < count; ++id) {
        const auto chip = factory.make(id);
        double f_lo = 1e300, f_hi = 0.0;
        for (std::size_t k = 0; k < chip.numClusters(); ++k) {
            f_lo = std::min(f_lo, chip.clusterSafeF(k));
            f_hi = std::max(f_hi, chip.clusterSafeF(k));
        }
        vddntv.add(chip.vddNtv());
        worst_f.add(f_lo);
        best_f.add(f_hi);
        std::printf("chip %2llu: VddNTV = %.3f V, cluster safe f in "
                    "[%.2f, %.2f] GHz\n",
                    static_cast<unsigned long long>(id),
                    chip.vddNtv(), f_lo / 1e9, f_hi / 1e9);
        if (id == 0)
            printClusterMap(chip);
    }

    std::printf("\nbatch of %zu chips:\n", count);
    std::printf("  VddNTV: mean %.3f V, sigma %.3f V, range "
                "[%.3f, %.3f] V\n",
                vddntv.mean(), vddntv.stddev(), vddntv.min(),
                vddntv.max());
    std::printf("  slowest cluster f: mean %.2f GHz; fastest "
                "cluster f: mean %.2f GHz\n",
                worst_f.mean() / 1e9, best_f.mean() / 1e9);
    std::printf("  => speed binning alone would leave %.0f%% of the "
                "chip's throughput on the table (the gap Accordion's "
                "variation-aware selection recovers)\n",
                100.0 * (1.0 - worst_f.mean() / best_f.mean()));
    return 0;
}
