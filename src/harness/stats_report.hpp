/**
 * @file
 * End-of-run reporting for the harness: per-experiment stat
 * snapshots, derived pool-utilization gauges, the merged human
 * stats table, and the machine-readable run_summary.json (schema
 * "accordion-run-summary-v1"). Split out of cli.cpp so the perf
 * subcommand (perf.cpp) can reuse the utilization derivation and
 * the summary-writing machinery without dragging in CLI parsing.
 */

#ifndef ACCORDION_HARNESS_STATS_REPORT_HPP
#define ACCORDION_HARNESS_STATS_REPORT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "run_context.hpp"

namespace accordion::harness {

/** One experiment's instrumentation snapshot. */
struct ExperimentSummary
{
    std::string name;
    std::uint64_t elapsedNs = 0;
    std::vector<obs::StatEntry> stats;
};

/**
 * Turn the per-worker busy-time counters of a just-finished
 * measurement into utilization-fraction gauges, so the stats dump
 * carries the saturation number directly (busy_ns / wall_ns).
 */
void deriveUtilization(obs::StatsRegistry &registry,
                       std::uint64_t elapsed_ns);

/**
 * Write `<out-dir>/run_summary.json`: run metadata (seed, threads,
 * format, trace path, environment — git SHA, compiler, build type)
 * plus, per experiment, wall time and every stat the
 * instrumentation layer collected while it ran (schema documented
 * in EXPERIMENTS.md).
 */
void writeRunSummary(const std::string &path,
                     const RunContext::Options &run,
                     const std::string &trace, std::size_t threads,
                     const std::vector<ExperimentSummary> &summaries);

/**
 * Merge per-experiment stat snapshots by name: counters summed,
 * gauges keeping the latest level, distributions pooled with their
 * sample reservoirs first thinned to a common decimation stride (so
 * every pooled sample stands for the same number of raw samples and
 * merged quantiles are not biased toward the less-decimated
 * experiment).
 */
std::map<std::string, obs::StatEntry>
mergedStats(const std::vector<ExperimentSummary> &summaries);

/**
 * The end-of-run human stats table: mergedStats() rendered, with
 * utilization recomputed over the whole run's wall time.
 */
std::string statsTable(const std::vector<ExperimentSummary> &summaries,
                       std::uint64_t total_elapsed_ns);

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_STATS_REPORT_HPP
