/**
 * @file
 * Reproduces Fig. 7: iso-execution-time pareto fronts for the two
 * Rodinia kernels — hotspot and srad.
 */

#include "pareto_fronts.hpp"

namespace accordion::harness {
namespace {

class Fig7ParetoRodinia final : public Experiment
{
  public:
    std::string name() const override { return "fig7_pareto_rodinia"; }
    std::string artifact() const override { return "Fig. 7"; }
    std::string description() const override
    {
        return "pareto fronts: hotspot, srad";
    }

    void run(RunContext &ctx) const override
    {
        runParetoFronts(ctx, "7", {"hotspot", "srad"});
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig7ParetoRodinia)

} // namespace
} // namespace accordion::harness
