/**
 * @file
 * Reproduces Fig. 1c: worst-case timing guardband vs Vdd for the
 * 22 nm and 11 nm nodes. The paper shows guardbands exploding as
 * Vdd approaches Vth (hundreds of percent near 0.4-0.5 V) and the
 * newer node suffering more at every voltage.
 */

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"
#include "vartech/guardband.hpp"

namespace accordion::harness {
namespace {

class Fig1cGuardband final : public Experiment
{
  public:
    std::string name() const override { return "fig1c_guardband"; }
    std::string artifact() const override { return "Fig. 1c"; }
    std::string description() const override
    {
        return "worst-case timing guardband vs Vdd, 22 vs 11 nm";
    }

    void run(RunContext &ctx) const override
    {
        banner("Figure 1c — timing guardband vs Vdd (22 vs 11 nm)",
               "guardband grows toward Vth, exceeding ~250% near "
               "0.4-0.5 V at 11 nm; 11 nm > 22 nm everywhere");

        const auto t22 = vartech::Technology::makeItrs22nm();
        const auto t11 = vartech::Technology::makeItrs11nm();

        util::Table table({"Vdd (V)", "GB 22nm (%)", "GB 11nm (%)"});
        auto csv = ctx.series("fig1c_guardband",
                              {"vdd", "gb22_pct", "gb11_pct"});
        for (double vdd = 0.40; vdd <= 1.20 + 1e-9; vdd += 0.05) {
            const double gb22 =
                vartech::timingGuardbandPercent(t22, vdd);
            const double gb11 =
                vartech::timingGuardbandPercent(t11, vdd);
            table.addRow({util::format("%.2f", vdd),
                          util::format("%.1f", gb22),
                          util::format("%.1f", gb11)});
            csv.addRow(std::vector<double>{vdd, gb22, gb11});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: at 0.45 V the guardband is %.0f%% "
                    "(11 nm) vs %.0f%% (22 nm)\n",
                    vartech::timingGuardbandPercent(t11, 0.45),
                    vartech::timingGuardbandPercent(t22, 0.45));
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig1cGuardband)

} // namespace
} // namespace accordion::harness
