/**
 * @file
 * Ablation A5 — supply granularity. The paper designates one
 * chip-wide VddNTV (the maximum per-cluster VddMIN): every cluster
 * pays for the worst memory block on the die. This ablation asks
 * what per-cluster supplies would buy: each cluster at its own
 * VddMIN plus a fixed guard, trading lower power and lower safe f
 * per cluster against the hardware cost of 36 supply domains.
 */

#include <algorithm>

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "manycore/power_model.hpp"
#include "util/table.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness {
namespace {

class AblationVddPercluster final : public Experiment
{
  public:
    std::string name() const override
    {
        return "ablation_vdd_percluster";
    }
    std::string artifact() const override { return "Ablation A5"; }
    std::string description() const override
    {
        return "chip-wide vs per-cluster supply rails";
    }

    void run(RunContext &ctx) const override
    {
        banner("Ablation A5 — chip-wide vs per-cluster supply",
               "chip-wide VddNTV pays the worst die block "
               "everywhere; per-cluster rails trade power for "
               "supply-domain cost");

        const auto &chip = ctx.system().chip();
        const auto &power = ctx.system().powerModel();
        const double guard = 0.02; // supply margin above VddMIN [V]

        double chipwide_power = 0.0, chipwide_ghz = 0.0;
        double percluster_power = 0.0, percluster_ghz = 0.0;
        for (std::size_t k = 0; k < chip.numClusters(); ++k) {
            // Chip-wide supply: cluster safe f at VddNTV.
            const double f_cw = chip.clusterSafeF(k);
            for (std::size_t core :
                 chip.geometry().coresOfCluster(k))
                chipwide_power += power.corePower(
                    chip, core, chip.vddNtv(), f_cw);
            chipwide_power +=
                power.uncorePowerPerCluster(chip.vddNtv());
            chipwide_ghz += 8.0 * f_cw / 1e9;

            // Per-cluster supply: own VddMIN + guard.
            const double vdd_k = chip.clusterVddMin(k) + guard;
            double f_pc = 1e300;
            for (std::size_t core :
                 chip.geometry().coresOfCluster(k))
                f_pc = std::min(f_pc, chip.coreSafeFAt(core, vdd_k));
            for (std::size_t core :
                 chip.geometry().coresOfCluster(k))
                percluster_power +=
                    power.corePower(chip, core, vdd_k, f_pc);
            percluster_power += power.uncorePowerPerCluster(vdd_k);
            percluster_ghz += 8.0 * f_pc / 1e9;
        }

        util::Table table({"supply scheme", "Vdd domains",
                           "aggregate safe GHz", "power (W)",
                           "GHz per W"});
        auto csv = ctx.series("ablation_vdd_percluster",
                              {"scheme", "ghz", "power_w"});
        table.addRow({"chip-wide VddNTV (paper)", "1",
                      util::format("%.1f", chipwide_ghz),
                      util::format("%.1f", chipwide_power),
                      util::format("%.3f",
                                   chipwide_ghz / chipwide_power)});
        table.addRow(
            {util::format("per-cluster VddMIN + %.0f mV",
                          guard * 1e3),
             "36", util::format("%.1f", percluster_ghz),
             util::format("%.1f", percluster_power),
             util::format("%.3f",
                          percluster_ghz / percluster_power)});
        csv.addRow({"chipwide", util::format("%.4f", chipwide_ghz),
                    util::format("%.4f", chipwide_power)});
        csv.addRow({"percluster",
                    util::format("%.4f", percluster_ghz),
                    util::format("%.4f", percluster_power)});
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: per-cluster supplies change GHz/W "
                    "by %.1f%% — the chip-wide rail the paper "
                    "assumes leaves little efficiency on the table "
                    "because the timing-critical clusters, not the "
                    "memory VddMIN, dominate\n",
                    100.0 * (percluster_ghz / percluster_power /
                                 (chipwide_ghz / chipwide_power) -
                             1.0));
    }
};

ACCORDION_REGISTER_EXPERIMENT(AblationVddPercluster)

} // namespace
} // namespace accordion::harness
