/**
 * @file
 * Ablation A4 — checkpoint/recovery complexity (Section 4.1). A
 * conventional worst-case design running above the safe frequency
 * must checkpoint against the *full* timing error rate; Accordion
 * only needs rollback for errors that strike control execution
 * (a few percent of cycles) — data-phase errors surface as Drop.
 * This ablation quantifies the resulting gap in checkpoint
 * frequency and time overhead across speculative operating points.
 */

#include <cmath>

#include "core/checkpoint.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness {
namespace {

class AblationCheckpoint final : public Experiment
{
  public:
    std::string name() const override { return "ablation_checkpoint"; }
    std::string artifact() const override { return "Ablation A4"; }
    std::string description() const override
    {
        return "checkpoint rate: full coverage vs Accordion";
    }

    void run(RunContext &ctx) const override
    {
        banner("Ablation A4 — checkpoint/recovery complexity",
               "Accordion anticipates much rarer checkpointing "
               "and recovery than full-coverage rollback");

        const auto &chip = ctx.system().chip();
        const std::size_t core = chip.slowestCoreOfCluster(0);
        const core::CheckpointParams params;
        const double control_fraction = 0.03; // control cycles share

        util::Table table({"Perr target", "f (GHz)",
                           "ckpt/s (full coverage)",
                           "ckpt/s (Accordion)", "overhead full (%)",
                           "overhead Accordion (%)"});
        auto csv = ctx.series("ablation_checkpoint",
                              {"perr", "f_ghz", "full_overhead",
                               "accordion_overhead"});
        for (double perr : {1e-9, 1e-7, 1e-5, 1e-4}) {
            const double f =
                chip.coreFrequencyForErrorRate(core, perr);
            const auto full = core::planCheckpoints(params, perr, f);
            const auto acc = core::planCheckpoints(
                params,
                core::accordionCoveredErrorRate(perr,
                                                control_fraction),
                f);
            table.addRow(
                {util::format("%.0e", perr),
                 util::format("%.2f", f / 1e9),
                 util::format("%.3g", full.checkpointsPerSecond),
                 util::format("%.3g", acc.checkpointsPerSecond),
                 util::format("%.2f", 100.0 * full.overheadFraction),
                 util::format("%.2f",
                              100.0 * acc.overheadFraction)});
            csv.addRow(std::vector<double>{perr, f / 1e9,
                                           full.overheadFraction,
                                           acc.overheadFraction});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: containing errors in the data "
                    "phases cuts the checkpoint rate and rollback "
                    "overhead by ~%.0fx (sqrt of the %.0fx coverage "
                    "reduction)\n",
                    std::sqrt(1.0 / control_fraction),
                    1.0 / control_fraction);
    }
};

ACCORDION_REGISTER_EXPERIMENT(AblationCheckpoint)

} // namespace
} // namespace accordion::harness
