/**
 * @file
 * Monte Carlo evaluation over the paper's 100-chip sample (Table 2
 * lists "Sample size: 100 chips"): distribution of the chip-level
 * reliability metrics and of the headline energy-efficiency gain
 * across manufacturing outcomes — how much the Accordion result
 * depends on the die you happen to get.
 */

#include <algorithm>

#include "core/accordion.hpp"
#include "core/dynamic.hpp"
#include "core/montecarlo.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class MontecarloSample final : public Experiment
{
  public:
    std::string name() const override { return "montecarlo_sample"; }
    std::string artifact() const override { return "Table 2"; }
    std::string description() const override
    {
        return "100-chip manufacturing-sample distributions";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Monte Carlo — the 100-chip manufacturing sample",
               "Table 2: sample size 100 chips; results hold "
               "across the sample, not just one die");

        core::AccordionSystem &system = ctx.system();
        const core::MonteCarloEvaluator mc(system.factory(), 100);

        util::Table table({"metric", "mean", "sigma", "min", "p10",
                           "p90", "max"});
        auto csv = ctx.series("montecarlo_sample",
                              {"metric", "mean", "sigma", "min",
                               "max"});
        auto add = [&](const core::SampleStatistics &s, double scale,
                       const char *unit) {
            table.addRow({s.metric + std::string(" ") + unit,
                          util::format("%.3f", s.mean * scale),
                          util::format("%.3f", s.stddev * scale),
                          util::format("%.3f", s.min * scale),
                          util::format("%.3f", s.p10 * scale),
                          util::format("%.3f", s.p90 * scale),
                          util::format("%.3f", s.max * scale)});
            csv.addRow({s.metric,
                        util::format("%.5g", s.mean * scale),
                        util::format("%.5g", s.stddev * scale),
                        util::format("%.5g", s.min * scale),
                        util::format("%.5g", s.max * scale)});
        };

        // One manufacturing pass feeds all three reliability
        // metrics (evaluateMany reuses each chip); the statistics
        // are bit-identical to the old per-metric evaluate calls.
        const std::vector<core::SampleStatistics> reliability =
            mc.evaluateMany(
                {{"VddNTV",
                  [](const vartech::VariationChip &chip) {
                      return chip.vddNtv();
                  }},
                 {"slowest cluster safe f",
                  [](const vartech::VariationChip &chip) {
                      double f = 1e300;
                      for (double cluster_f : chip.clusterSafeFs())
                          f = std::min(f, cluster_f);
                      return f;
                  }},
                 {"fastest cluster safe f",
                  [](const vartech::VariationChip &chip) {
                      double f = 0.0;
                      for (double cluster_f : chip.clusterSafeFs())
                          f = std::max(f, cluster_f);
                      return f;
                  }}});
        add(reliability[0], 1.0, "(V)");
        add(reliability[1], 1e-9, "(GHz)");
        add(reliability[2], 1e-9, "(GHz)");

        // Headline gain distribution over a 20-chip subsample (the
        // pareto sweep per chip is the expensive part).
        const core::MonteCarloEvaluator mc20(system.factory(), 20);
        const auto &w = rms::findWorkload("hotspot");
        const auto &profile = system.profile("hotspot");
        add(mc20.efficiencyGainDistribution(
                w, profile, system.powerModel(), system.perfModel(),
                core::Flavor::Speculative, 0.0),
            1.0, "(x STV, 20 chips)");

        // Dynamic orchestration across the same subsample: does the
        // re-selecting controller hold the iso-execution-time target
        // on every die, not just the default one? One thermal
        // emergency (cluster 0 loses 40% of its safe f at phase 2,
        // recovers at phase 6) per chip.
        {
            const std::vector<core::ResilienceEvent> events = {
                {2, 0, 0.6}, {6, 0, 1.0}};
            const auto reports = core::runOverSample(
                system.factory(), 20, system.powerModel(),
                system.perfModel(),
                core::DynamicOrchestrator::Params{}, w, profile,
                events);
            std::size_t held = 0;
            std::vector<double> ratios;
            ratios.reserve(reports.size());
            for (std::size_t id = 0; id < reports.size(); ++id) {
                const vartech::VariationChip chip =
                    system.factory().make(id);
                const core::ParetoExtractor extractor(
                    chip, system.powerModel(), system.perfModel());
                const core::StvBaseline chip_base =
                    extractor.baseline(w, profile);
                const double ratio =
                    reports[id].totalSeconds / chip_base.seconds;
                ratios.push_back(ratio);
                held += ratio <= 1.05 ? 1 : 0;
            }
            table.addRow(
                {"dynamic T/T_STV (20 chips)",
                 util::format("%.3f", util::mean(ratios)),
                 util::format("%.3f", util::stddev(ratios)),
                 util::format("%.3f",
                              *std::min_element(ratios.begin(),
                                                ratios.end())),
                 util::format("%.3f",
                              util::percentile(ratios, 10.0)),
                 util::format("%.3f",
                              util::percentile(ratios, 90.0)),
                 util::format("%.3f",
                              *std::max_element(ratios.begin(),
                                                ratios.end()))});
            std::printf("dynamic orchestration holds iso-time on "
                        "%zu/20 chips under a cluster-0 thermal "
                        "emergency\n",
                        held);
        }

        std::printf("%s", table.render().c_str());
        std::printf("\nevery chip of the sample yields a > 1x gain: "
                    "the headline is a property of the approach, not "
                    "of a lucky die\n");
    }
};

ACCORDION_REGISTER_EXPERIMENT(MontecarloSample)

} // namespace
} // namespace accordion::harness
