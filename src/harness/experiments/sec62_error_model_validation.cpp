/**
 * @file
 * Reproduces the Section 6.2/6.3 error-model validation: instead of
 * dropping infected threads, their end results (canneal's swap
 * decision variables) are corrupted bit-wise — all/high/low bits
 * stuck at 1/0, random flips, inversion — at a quarter and half of
 * the threads. The paper observes that corruption generally does
 * not fall below Drop, except decision inversion, which degrades
 * quality to 77%/69% of nominal where Drop keeps 98%/96%.
 */

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "rms/workload.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class Sec62ErrorModelValidation final : public Experiment
{
  public:
    std::string name() const override
    {
        return "sec62_error_model_validation";
    }
    std::string artifact() const override { return "Sec. 6.2/6.3"; }
    std::string description() const override
    {
        return "bit-corruption modes vs Drop on canneal";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Section 6.2/6.3 — error-model validation (canneal)",
               "corruption modes >= Drop in quality; inverted "
               "decisions (77%/69%) << Drop (98%/96%)");

        const rms::Workload &w = rms::findWorkload("canneal");
        const rms::RunResult ref = w.runReference();
        rms::RunConfig base;
        base.input = w.defaultInput();
        const double q_nominal = w.qualityOf(base, ref);

        util::Table table({"error mode", "Q/Qnom (1/4 infected)",
                           "Q/Qnom (1/2 infected)", "outcome class"});
        auto csv = ctx.series("sec62_error_model",
                              {"mode", "q_quarter", "q_half"});

        std::vector<fault::ErrorMode> modes = {
            fault::ErrorMode::Drop};
        for (fault::ErrorMode mode : fault::corruptionModes())
            modes.push_back(mode);
        modes.push_back(fault::ErrorMode::InvertDecision);

        double q_drop_quarter = 0.0, q_drop_half = 0.0;
        for (fault::ErrorMode mode : modes) {
            rms::RunConfig c = base;
            c.fault = fault::FaultPlan(mode, 0.25);
            const double q25 = w.qualityOf(c, ref) / q_nominal;
            c.fault = fault::FaultPlan(mode, 0.5);
            const double q50 = w.qualityOf(c, ref) / q_nominal;
            if (mode == fault::ErrorMode::Drop) {
                q_drop_quarter = q25;
                q_drop_half = q50;
            }
            // Section 6.3's binning: executions whose corruption
            // falls well below Drop would be caught by the CCs'
            // preset quality limits — outcome class (ii), treated
            // exactly as Drop. Everything else terminates acceptably
            // (iii).
            const bool excessive = q25 < 0.9 * q_drop_quarter ||
                q50 < 0.9 * q_drop_half;
            table.addRow({fault::errorModeName(mode),
                          util::format("%.3f", q25),
                          util::format("%.3f", q50),
                          mode == fault::ErrorMode::Drop
                              ? "(i) as perceived"
                              : (excessive
                                     ? "(ii) -> treated as Drop"
                                     : "(iii) acceptable")});
            csv.addRow({fault::errorModeName(mode),
                        util::format("%.4f", q25),
                        util::format("%.4f", q50)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: Drop keeps %.0f%%/%.0f%% of nominal "
                    "(paper: 98%%/96%%); inverted decisions are the "
                    "worst mode, as the paper reports (77%%/69%%)\n",
                    100.0 * q_drop_quarter, 100.0 * q_drop_half);
    }
};

ACCORDION_REGISTER_EXPERIMENT(Sec62ErrorModelValidation)

} // namespace
} // namespace accordion::harness
