/**
 * @file
 * Reproduces Table 3: the RMS benchmark characterization — domain,
 * quality metric, Accordion input, and the measured dependency
 * class (linear vs complex) of problem size and quality on the
 * Accordion input, recovered by power-law fits over the sweep.
 */

#include <cmath>

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "rms/workload.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class Table3Characterization final : public Experiment
{
  public:
    std::string name() const override
    {
        return "table3_characterization";
    }
    std::string artifact() const override { return "Table 3"; }
    std::string description() const override
    {
        return "RMS kernel characterization via power-law fits";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Table 3 — RMS benchmark characterization",
               "six PARSEC/Rodinia kernels; problem size and "
               "quality dependencies per Accordion input");

        util::Table table({"Benchmark", "Domain", "Quality metric",
                           "Accordion input", "PS dep (fit)",
                           "Q dep (fit)"});
        auto csv = ctx.series("table3_characterization",
                              {"benchmark", "ps_exponent",
                               "q_exponent", "ps_class", "q_class"});

        for (const rms::Workload *w : rms::allWorkloads()) {
            const rms::RunResult ref = w->runReference();
            std::vector<double> inputs, sizes, qualities;
            for (double input : w->inputSweep()) {
                rms::RunConfig c;
                c.input = input;
                c.threads = w->defaultThreads();
                const rms::RunResult r = w->run(c);
                inputs.push_back(input);
                sizes.push_back(r.problemSize);
                qualities.push_back(w->quality(r, ref));
            }
            const auto ps_fit = util::fitPowerLaw(inputs, sizes);
            const auto q_fit = util::fitPowerLaw(inputs, qualities);
            // Linear: the quantity tracks the input proportionally
            // (exponent ~ +1 and a clean fit). Quality saturates, so
            // its linear band is judged against a shallow exponent
            // with high R^2 instead.
            const bool ps_linear =
                std::abs(ps_fit.slope - 1.0) < 0.15;
            const bool q_linear =
                q_fit.slope > 0.0 && q_fit.r2 > 0.9;
            const std::string ps_class =
                ps_linear ? "linear" : "complex";
            const std::string q_class =
                q_linear ? "linear" : "complex";
            table.addRow(
                {w->name(), w->domain(), w->qualityMetricName(),
                 w->accordionInputName(),
                 util::format("%s (x^%.2f)", ps_class.c_str(),
                              ps_fit.slope),
                 util::format("%s (x^%.2f, R2=%.2f)",
                              q_class.c_str(), q_fit.slope,
                              q_fit.r2)});
            csv.addRow({w->name(),
                        util::format("%.4f", ps_fit.slope),
                        util::format("%.4f", q_fit.slope), ps_class,
                        q_class});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nnote: declared classes live in each kernel's "
                    "problemSizeDependency()/qualityDependency() and "
                    "are checked against these fits by the test "
                    "suite\n");
    }
};

ACCORDION_REGISTER_EXPERIMENT(Table3Characterization)

} // namespace
} // namespace accordion::harness
