/**
 * @file
 * Reproduces Fig. 1a: power, frequency, and energy per operation as
 * functions of Vdd for the 11 nm node. The paper's bands: moving
 * from STV (~1 V) to NTV (~0.55 V) cuts power 10-50x and energy per
 * operation 2-5x at a 5-10x frequency cost, with the minimum-energy
 * point in the sub-threshold region.
 */

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"
#include "vartech/technology.hpp"

namespace accordion::harness {
namespace {

class Fig1aOperatingPoint final : public Experiment
{
  public:
    std::string name() const override { return "fig1a_operating_point"; }
    std::string artifact() const override { return "Fig. 1a"; }
    std::string description() const override
    {
        return "power, frequency and energy/op vs Vdd (11 nm)";
    }

    void run(RunContext &ctx) const override
    {
        banner(
            "Figure 1a — operating point vs Vdd (11 nm)",
            "NTV vs STV: power /10-50, energy/op /2-5, frequency "
            "/5-10; min-energy point sub-threshold");

        const auto tech = vartech::Technology::makeItrs11nm();
        util::Table table({"Vdd (V)", "f (GHz)", "Power (W)",
                           "Energy/op (nJ)", "norm P", "norm f",
                           "norm E/op"});
        auto csv = ctx.series("fig1a_operating_point",
                              {"vdd", "f_hz", "power_w", "energy_j"});

        const double f_stv = tech.fStv();
        const double p_stv = tech.dynamicPower(1.0, f_stv) +
            tech.staticPower(1.0, tech.params().vthNom);
        const double e_stv = tech.energyPerOp(1.0);

        double best_e = 1e300, best_vdd = 0.0;
        for (double vdd = 0.20; vdd <= 1.20 + 1e-9; vdd += 0.05) {
            const double f = tech.frequencyAtNominalVth(vdd);
            const double p = tech.dynamicPower(vdd, f) +
                tech.staticPower(vdd, tech.params().vthNom);
            const double e = tech.energyPerOp(vdd);
            if (e < best_e) {
                best_e = e;
                best_vdd = vdd;
            }
            table.addRow({util::format("%.2f", vdd),
                          util::format("%.3f", f / 1e9),
                          util::format("%.3f", p),
                          util::format("%.3f", e * 1e9),
                          util::format("%.3f", p / p_stv),
                          util::format("%.3f", f / f_stv),
                          util::format("%.3f", e / e_stv)});
            csv.addRow(std::vector<double>{vdd, f, p, e});
        }
        std::printf("%s", table.render().c_str());

        const double vdd_ntv = tech.params().vddNom;
        const double f_ntv = tech.fNtv();
        const double p_ntv = tech.dynamicPower(vdd_ntv, f_ntv) +
            tech.staticPower(vdd_ntv, tech.params().vthNom);
        std::printf("\nmeasured: NTV(0.55 V) vs STV(1.0 V): power "
                    "/%.1f, energy/op /%.2f, frequency /%.2f\n",
                    p_stv / p_ntv,
                    e_stv / tech.energyPerOp(vdd_ntv), f_stv / f_ntv);
        std::printf("measured: minimum-energy point at Vdd = %.2f V "
                    "(Vth = %.2f V)\n",
                    best_vdd, tech.params().vthNom);
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig1aOperatingPoint)

} // namespace
} // namespace accordion::harness
