/**
 * @file
 * Reproduces Fig. 1b: variation-induced timing error rate vs Vdd at
 * a fixed clock. The paper shows the error rate climbing from ~0
 * to ~1 over a narrow 0.45-0.60 V window — the cliff that makes
 * worst-case operation at NTV untenable.
 */

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"
#include "vartech/technology.hpp"
#include "vartech/timing.hpp"

namespace accordion::harness {
namespace {

class Fig1bErrorRate final : public Experiment
{
  public:
    std::string name() const override { return "fig1b_error_rate"; }
    std::string artifact() const override { return "Fig. 1b"; }
    std::string description() const override
    {
        return "timing error rate vs Vdd at a fixed clock";
    }

    void run(RunContext &ctx) const override
    {
        banner("Figure 1b — timing error rate vs Vdd",
               "error rate rises from ~0 to ~1 across the "
               "0.45-0.60 V window at a fixed clock");

        const auto tech = vartech::Technology::makeItrs11nm();
        // A nominal core clocked at the frequency that is just safe
        // at 0.60 V; lowering Vdd from there walks up the error
        // cliff.
        const vartech::CoreTimingModel core(
            tech, vartech::TimingModelParams{}, 0.0, 0.0, 0.116);
        const double f = core.safeFrequency(0.60);

        util::Table table({"Vdd (V)", "error rate / cycle"});
        auto csv = ctx.series("fig1b_error_rate", {"vdd", "perr"});
        for (double vdd = 0.45; vdd <= 0.60 + 1e-9; vdd += 0.01) {
            const double perr = core.errorRate(vdd, f);
            table.addRow({util::format("%.2f", vdd),
                          util::format("%.3g", perr)});
            csv.addRow(std::vector<double>{vdd, perr});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: Perr(0.45 V) = %.3g, Perr(0.60 V) = "
                    "%.3g at f = %.2f GHz\n",
                    core.errorRate(0.45, f), core.errorRate(0.60, f),
                    f / 1e9);
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig1bErrorRate)

} // namespace
} // namespace accordion::harness
