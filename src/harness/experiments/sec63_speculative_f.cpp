/**
 * @file
 * Reproduces the Section 6.3 speculative-frequency observation:
 * operating at the error rate implied by "one timing error per
 * infected task" (Perr = 1/e for a task of e cycles) instead of the
 * safe rate buys 8-41% frequency across the chip's clusters.
 */

#include <algorithm>

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness {
namespace {

class Sec63SpeculativeF final : public Experiment
{
  public:
    std::string name() const override { return "sec63_speculative_f"; }
    std::string artifact() const override { return "Sec. 6.3"; }
    std::string description() const override
    {
        return "speculative frequency gain across clusters";
    }

    void run(RunContext &ctx) const override
    {
        banner("Section 6.3 — speculative frequency gain",
               "8-41% f increase across chip from embracing "
               "timing errors (Perr = 1/e per task)");

        const auto &chip = ctx.system().chip();

        util::Table table({"task length e (cycles)", "Perr target",
                           "min gain (%)", "median gain (%)",
                           "max gain (%)"});
        auto csv = ctx.series("sec63_spec_f",
                              {"e_cycles", "cluster", "gain_pct"});
        for (double e : {1e5, 1e6, 1e7, 1e8}) {
            const double perr = 1.0 / e;
            std::vector<double> gains;
            for (std::size_t k = 0; k < chip.numClusters(); ++k) {
                const std::size_t core =
                    chip.slowestCoreOfCluster(k);
                const double gain = 100.0 *
                    (chip.coreFrequencyForErrorRate(core, perr) /
                         chip.coreSafeF(core) -
                     1.0);
                gains.push_back(gain);
                csv.addRow(std::vector<double>{
                    e, static_cast<double>(k), gain});
            }
            std::sort(gains.begin(), gains.end());
            table.addRow({util::format("%.0e", e),
                          util::format("%.0e", perr),
                          util::format("%.1f", gains.front()),
                          util::format("%.1f",
                                       gains[gains.size() / 2]),
                          util::format("%.1f", gains.back())});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\npaper band: 8-41%% across chip; shorter tasks "
                    "tolerate higher Perr and gain more\n");
    }
};

ACCORDION_REGISTER_EXPERIMENT(Sec63SpeculativeF)

} // namespace
} // namespace accordion::harness
