/**
 * @file
 * Reproduces Table 2: the system, variation, technology and
 * architecture parameters of the hypothetical 288-core NTV chip,
 * plus the derived quantities the rest of the evaluation consumes.
 */

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class Table2Parameters final : public Experiment
{
  public:
    std::string name() const override { return "table2_parameters"; }
    std::string artifact() const override { return "Table 2"; }
    std::string description() const override
    {
        return "technology/architecture parameters + derived corner";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Table 2 — technology and architecture parameters",
               "288 cores / 36 clusters at 11 nm; P_MAX 100 W; "
               "VddNOM 0.55 V, VthNOM 0.33 V, fNOM 1 GHz");

        core::AccordionSystem &system = ctx.system();
        const auto &tech = system.technology();
        const auto &chip = system.chip();
        const auto &geo = chip.geometry();
        const auto &mem = system.config().memory;

        util::Table table({"parameter", "value"});
        table.addRow({"Technology node", tech.name()});
        table.addRow({"# cores", util::format("%zu", geo.numCores())});
        table.addRow({"# clusters",
                      util::format("%zu (%zu cores/cluster)",
                                   geo.numClusters(),
                                   geo.coresPerCluster())});
        table.addRow({"P_MAX",
                      util::format("%.0f W",
                                   system.powerModel().budget())});
        table.addRow({"Chip area",
                      util::format("%.0f mm x %.0f mm",
                                   geo.params().chipEdgeMm,
                                   geo.params().chipEdgeMm)});
        table.addRow({"VddNOM",
                      util::format("%.2f V", tech.params().vddNom)});
        table.addRow({"VthNOM",
                      util::format("%.2f V", tech.params().vthNom)});
        table.addRow({"fNOM",
                      util::format("%.1f GHz", tech.fNtv() / 1e9)});
        table.addRow({"f_network",
                      util::format("%.1f GHz", mem.networkFreqGhz)});
        table.addRow(
            {"Correlation range phi",
             util::format("%.1f",
                          system.factory().params().variation.phi)});
        table.addRow(
            {"Total (sigma/mu) Vth",
             util::format("%.0f%%",
                          100.0 * tech.params().sigmaVthTotal)});
        table.addRow(
            {"Total (sigma/mu) Leff",
             util::format("%.1f%%",
                          100.0 * tech.params().sigmaLeffTotal)});
        table.addRow({"Sample size", "100 chips"});
        table.addRow({"Core-private mem",
                      util::format("64KB WT, %.0f ns access, 64B line",
                                   mem.privateAccessNs)});
        table.addRow({"Cluster mem",
                      util::format("2MB WB, %.0f ns access, 64B line",
                                   mem.clusterAccessNs)});
        table.addRow(
            {"Network", "bus inside cluster, 2D-torus across"});
        table.addRow({"Avg mem round trip",
                      util::format("~%.0f ns (uncontended)",
                                   mem.remoteRoundTripNs)});
        std::printf("%s", table.render().c_str());

        std::printf("\nderived on the default chip:\n");
        std::printf("  STV equivalent corner: %.2f V / %.2f GHz\n",
                    tech.params().vddStv, tech.fStv() / 1e9);
        std::printf("  N_STV (cores in budget at STV): %zu\n",
                    system.powerModel().maxCoresAtStv(
                        geo.coresPerCluster()));
        std::printf("  chip VddNTV (max per-cluster VddMIN): %.3f V\n",
                    chip.vddNtv());
    }
};

ACCORDION_REGISTER_EXPERIMENT(Table2Parameters)

} // namespace
} // namespace accordion::harness
