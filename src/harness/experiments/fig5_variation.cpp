/**
 * @file
 * Reproduces Fig. 5: the impact of parametric variation on one
 * representative chip of the 100-chip sample.
 *  - Fig. 5a: histogram of per-cluster VddMIN (paper: a significant
 *    0.46-0.58 V spread; the chip-wide maximum becomes VddNTV).
 *  - Fig. 5b: per-cycle timing error rate vs frequency at VddNTV
 *    for the slowest core of each of the 36 clusters (paper: steep
 *    S-curves; most cores cannot reach the 1 GHz NTV nominal even
 *    at Perr of 1e-16..1e-12; the slowest cores support maximum
 *    frequencies with a 0.14-0.72x slowdown band).
 *
 * The representative chip and the factory come from the run's
 * shared AccordionSystem (chip 0, the run's seed — exactly what the
 * legacy binary manufactured for itself).
 */

#include <algorithm>
#include <span>

#include "core/montecarlo.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness {
namespace {

class Fig5Variation final : public Experiment
{
  public:
    std::string name() const override { return "fig5_variation"; }
    std::string artifact() const override { return "Fig. 5"; }
    std::string description() const override
    {
        return "per-cluster VddMIN spread and Perr S-curves";
    }

    void run(RunContext &ctx) const override
    {
        const auto &factory = ctx.system().factory();
        const auto &chip = ctx.system().chip();

        banner("Figure 5a — per-cluster VddMIN histogram",
               "per-cluster VddMIN varies across ~0.46-0.58 V; "
               "chip-wide max becomes VddNTV");
        util::Histogram hist(0.44, 0.60, 16);
        double lo = 1e9, hi = 0.0;
        auto csv_a = ctx.series("fig5a_vddmin",
                                {"cluster", "vddmin_v"});
        const std::span<const double> vddmins = chip.clusterVddMins();
        for (std::size_t k = 0; k < vddmins.size(); ++k) {
            const double v = vddmins[k];
            hist.add(v);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
            csv_a.addRow(
                std::vector<double>{static_cast<double>(k), v});
        }
        std::printf("%s", hist.render().c_str());
        std::printf("\nmeasured: per-cluster VddMIN in [%.3f, %.3f] "
                    "V; VddNTV = %.3f V\n",
                    lo, hi, chip.vddNtv());

        banner("Figure 5b — Perr vs f, slowest core per cluster",
               "steep S-curves; majority of cores below 1 GHz even "
               "at Perr 1e-16..1e-12");
        util::Table table({"f (GHz)", "min Perr", "median Perr",
                           "max Perr", "#clusters Perr>1e-12"});
        auto csv_b = ctx.series("fig5b_perr",
                                {"f_ghz", "cluster", "perr"});
        // The slowest-core set is frequency-independent; gather it
        // once (precomputed argmins) instead of per sweep point.
        std::vector<std::size_t> slow(chip.numClusters());
        for (std::size_t k = 0; k < chip.numClusters(); ++k)
            slow[k] = chip.slowestCoreOfCluster(k);
        for (double f = 0.2e9; f <= 1.5e9 + 1e-3; f += 0.1e9) {
            std::vector<double> rates;
            std::size_t above = 0;
            for (std::size_t k = 0; k < chip.numClusters(); ++k) {
                const double perr = chip.coreErrorRate(slow[k], f);
                rates.push_back(perr);
                above += perr > 1e-12;
                csv_b.addRow(std::vector<double>{
                    f / 1e9, static_cast<double>(k), perr});
            }
            std::sort(rates.begin(), rates.end());
            table.addRow({util::format("%.1f", f / 1e9),
                          util::format("%.3g", rates.front()),
                          util::format("%.3g",
                                       rates[rates.size() / 2]),
                          util::format("%.3g", rates.back()),
                          util::format("%zu", above)});
        }
        std::printf("%s", table.render().c_str());

        double f_lo = 1e300, f_hi = 0.0;
        for (double f : chip.clusterSafeFs()) {
            f_lo = std::min(f_lo, f);
            f_hi = std::max(f_hi, f);
        }
        std::printf("\nmeasured: slowest-core safe f per cluster "
                    "spans [%.2f, %.2f] GHz (%.2f-%.2fx slowdown vs "
                    "the 1 GHz NTV nominal)\n",
                    f_lo / 1e9, f_hi / 1e9, 1.0 - f_hi / 1e9,
                    1.0 - f_lo / 1e9);

        // 100-chip Monte Carlo statistics (the paper's sample size),
        // through the chip-reuse sweep: one manufacture per chip id,
        // parallelized, aggregation in id order — the printed
        // numbers are bit-identical to the old serial loop.
        const core::MonteCarloEvaluator mc(factory, 100);
        const core::SampleStatistics vddntv =
            mc.evaluateMany(
                  {{"VddNTV",
                    [](const vartech::VariationChip &c) {
                        return c.vddNtv();
                    }}})
                .front();
        std::printf("100-chip sample: VddNTV mean %.3f V, sigma %.3f "
                    "V, range [%.3f, %.3f] V\n",
                    vddntv.mean, vddntv.stddev, vddntv.min,
                    vddntv.max);
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig5Variation)

} // namespace
} // namespace accordion::harness
