/**
 * @file
 * Shared driver for the Fig. 6 / Fig. 7 iso-execution-time pareto
 * experiments: extracts Safe and Speculative fronts for a set of
 * kernels on the run's shared chip and prints the paper's four
 * columns (MIPS/W, power, problem size, quality — all normalized to
 * the STV baseline) against NNTV/NSTV.
 */

#ifndef ACCORDION_HARNESS_EXPERIMENTS_PARETO_FRONTS_HPP
#define ACCORDION_HARNESS_EXPERIMENTS_PARETO_FRONTS_HPP

#include <string>
#include <vector>

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {

/** Run and print the pareto fronts of the given kernels. */
inline void
runParetoFronts(RunContext &ctx, const std::string &figure,
                const std::vector<std::string> &kernels)
{
    util::setVerbose(false);
    core::AccordionSystem &system = ctx.system();
    auto csv = ctx.series(
        "fig" + figure + "_pareto",
        {"benchmark", "flavor", "ps_ratio", "n_ntv", "n_ratio",
         "f_ghz", "mipsw_ratio", "power_ratio", "q_ratio", "mode",
         "feasible", "within_budget"});

    for (const std::string &name : kernels) {
        const rms::Workload &w = rms::findWorkload(name);
        const core::QualityProfile &profile = system.profile(name);
        const core::StvBaseline base =
            system.pareto().baseline(w, profile);

        banner(util::format(
                   "Figure %s — %s: iso-execution-time pareto fronts",
                   figure.c_str(), name.c_str()),
               "MIPS/W < ~2x and degrading with N; Spec beats Safe; "
               "Compress needs fewer cores; Expand N/power-limited "
               "at the largest sizes");
        std::printf("STV baseline: N_STV=%zu, f=%.2f GHz, "
                    "T=%.3g s, %.0f MIPS, %.1f W\n\n",
                    base.n, base.fHz / 1e9, base.seconds, base.mips,
                    base.powerW);

        for (core::Flavor flavor :
             {core::Flavor::Safe, core::Flavor::Speculative}) {
            std::printf("%s fronts:\n",
                        core::flavorName(flavor).c_str());
            util::Table table(
                {"PS/PSstv", "N", "N/Nstv", "f (GHz)", "MIPS/W x",
                 "Power x", "Q/Qstv", "mode", "status"});
            for (const core::OperatingPoint &p :
                 system.pareto().extract(w, profile, flavor)) {
                std::string status = p.feasible ? "ok" : "infeasible";
                if (!p.withinBudget)
                    status += ",over-budget";
                table.addRow(
                    {util::format("%.2f", p.psRatio),
                     util::format("%zu", p.n),
                     util::format("%.1f", p.nRatio(base)),
                     util::format("%.2f", p.fHz / 1e9),
                     util::format("%.2f", p.efficiencyRatio(base)),
                     util::format("%.2f", p.powerRatio(base)),
                     util::format("%.3f", p.qualityRatio),
                     core::sizeModeName(p.sizeMode), status});
                csv.addRow(
                    {name, core::flavorName(flavor),
                     util::format("%.6g", p.psRatio),
                     util::format("%zu", p.n),
                     util::format("%.6g", p.nRatio(base)),
                     util::format("%.6g", p.fHz / 1e9),
                     util::format("%.6g", p.efficiencyRatio(base)),
                     util::format("%.6g", p.powerRatio(base)),
                     util::format("%.6g", p.qualityRatio),
                     core::sizeModeName(p.sizeMode),
                     p.feasible ? "1" : "0",
                     p.withinBudget ? "1" : "0"});
            }
            std::printf("%s\n", table.render().c_str());
        }
    }
}

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_EXPERIMENTS_PARETO_FRONTS_HPP
