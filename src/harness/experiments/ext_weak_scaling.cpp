/**
 * @file
 * Extension (Section 7 — Discussion): strict weak scaling. The
 * paper notes its six kernels only approximate weak scaling
 * (per-thread work grows with problem size) and that applications
 * strictly conforming to it — e.g. bitcoin mining — "would benefit
 * most from Accordion operation". This experiment adds the bitmine
 * proof-of-work kernel and compares its quality-vs-problem-size
 * behavior and pareto headroom against a representative Table 3
 * kernel.
 */

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "rms/bitmine.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class ExtWeakScaling final : public Experiment
{
  public:
    std::string name() const override { return "ext_weak_scaling"; }
    std::string artifact() const override { return "Sec. 7"; }
    std::string description() const override
    {
        return "strict weak scaling with the bitmine kernel";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Extension — strict weak scaling (bitmine)",
               "Section 7: strictly weak-scaling applications "
               "(e.g. bitcoin mining) benefit most from Accordion");

        // Quality front: for bitmine, quality == surviving work, so
        // the Default curve is the identity and Drop costs exactly
        // the dropped share — the ideal Accordion trade.
        const rms::Workload &mine = rms::findWorkload("bitmine");
        const auto profile = core::QualityProfile::measure(mine);
        util::Table front({"problem size (norm)", "Q default",
                           "Q drop 1/4", "Q drop 1/2"});
        const auto &def = profile.defaultCurve();
        const auto q14 = profile.dropQuarterCurve().interp();
        const auto q12 = profile.dropHalfCurve().interp();
        auto csv = ctx.series("ext_weak_scaling",
                              {"ps_ratio", "q_default", "q_drop14",
                               "q_drop12"});
        for (std::size_t i = 0; i < def.psRatio.size(); ++i) {
            const double ps = def.psRatio[i];
            front.addRow({util::format("%.3f", ps),
                          util::format("%.3f", def.qRatio[i]),
                          util::format("%.3f", q14(ps)),
                          util::format("%.3f", q12(ps))});
            csv.addRow(std::vector<double>{ps, def.qRatio[i],
                                           q14(ps), q12(ps)});
        }
        std::printf("%s", front.render().c_str());
        std::printf("\nmeasured: the Default curve is the identity "
                    "(Q == PS) and Drop 1/2 costs exactly half the "
                    "shares — quality trades for cores "
                    "one-for-one\n");

        // Pareto comparison against canneal: the strictly
        // weak-scaling kernel keeps its efficiency flat as the
        // problem expands.
        core::AccordionSystem &system = ctx.system();
        util::Table pareto({"benchmark", "PS", "N/Nstv", "MIPS/W x",
                            "Q/Qstv", "status"});
        for (const char *name : {"bitmine", "canneal"}) {
            const rms::Workload &w = rms::findWorkload(name);
            const auto &prof = system.profile(name);
            const auto base = system.pareto().baseline(w, prof);
            for (double ps : {1.0, 1.33, 2.0}) {
                const auto p = system.pareto().evaluateAt(
                    w, prof, core::Flavor::Speculative, ps, base);
                pareto.addRow(
                    {name, util::format("%.2f", ps),
                     util::format("%.1f", p.nRatio(base)),
                     util::format("%.2f", p.efficiencyRatio(base)),
                     util::format("%.3f", p.qualityRatio),
                     p.feasible
                         ? (p.withinBudget ? "ok" : "over-budget")
                         : "infeasible"});
            }
        }
        std::printf("\n%s", pareto.render().c_str());
    }
};

ACCORDION_REGISTER_EXPERIMENT(ExtWeakScaling)

} // namespace
} // namespace accordion::harness
