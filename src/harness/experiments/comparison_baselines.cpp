/**
 * @file
 * Baseline comparison (Section 8 related work): Accordion vs
 * Booster [25] (dual-rail effective-frequency equalization) and
 * EnergySmart [21] (single-rail, per-cluster variation-aware
 * scheduling) on the same chip, at the default problem size and
 * iso-execution-time. Accordion's Speculative flavor — and its
 * unique problem-size knob, shown as the Expand point — should win
 * on MIPS/W; the baselines bracket its Safe flavor.
 */

#include "core/accordion.hpp"
#include "core/baselines.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class ComparisonBaselines final : public Experiment
{
  public:
    std::string name() const override
    {
        return "comparison_baselines";
    }
    std::string artifact() const override { return "Sec. 8"; }
    std::string description() const override
    {
        return "Accordion vs Booster vs EnergySmart";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Comparison — Accordion vs Booster vs EnergySmart",
               "no prior NTC proposal exploits weak scaling or RMS "
               "fault tolerance; Accordion adds the problem-size "
               "knob on top of variation-aware operation");

        core::AccordionSystem &system = ctx.system();
        core::BaselineEvaluator baselines(system.chip(),
                                          system.powerModel(),
                                          system.perfModel());
        auto csv =
            ctx.series("comparison_baselines",
                       {"benchmark", "scheme", "n", "f_ghz",
                        "power_w", "mipsw_ratio", "feasible"});

        for (const char *name : {"canneal", "hotspot", "srad"}) {
            const rms::Workload &w = rms::findWorkload(name);
            const auto &profile = system.profile(name);
            const auto base = system.pareto().baseline(w, profile);

            util::Table table({"scheme", "N", "f (GHz)", "Power (W)",
                               "MIPS/W x STV", "Q/Qstv", "status"});
            auto add = [&](const std::string &scheme, std::size_t n,
                           double f, double p, double eff, double q,
                           bool feasible, bool budget) {
                std::string status = feasible ? "ok" : "infeasible";
                if (!budget)
                    status += ",over-budget";
                table.addRow({scheme, util::format("%zu", n),
                              util::format("%.2f", f / 1e9),
                              util::format("%.1f", p),
                              util::format("%.2f", eff),
                              util::format("%.3f", q), status});
                csv.addRow({name, scheme, util::format("%zu", n),
                            util::format("%.4f", f / 1e9),
                            util::format("%.4f", p),
                            util::format("%.4f", eff),
                            feasible ? "1" : "0"});
            };

            // Accordion Still (Safe and Speculative).
            for (core::Flavor flavor :
                 {core::Flavor::Safe, core::Flavor::Speculative}) {
                const auto p = system.pareto().evaluateAt(
                    w, profile, flavor, 1.0, base);
                add("Accordion " + core::flavorName(flavor) +
                        " Still",
                    p.n, p.fHz, p.powerW, p.efficiencyRatio(base),
                    p.qualityRatio, p.feasible, p.withinBudget);
            }
            // Accordion's unique capability: the problem-size knob.
            const auto expand = system.pareto().evaluateAt(
                w, profile, core::Flavor::Speculative, 1.33, base);
            add("Accordion Spec Expand 1.33x", expand.n, expand.fHz,
                expand.powerW, expand.efficiencyRatio(base),
                expand.qualityRatio, expand.feasible,
                expand.withinBudget);

            const auto boost = baselines.booster(w, profile, base);
            add(boost.scheme, boost.n, boost.fHz, boost.powerW,
                boost.efficiencyRatio(base), 1.0, boost.feasible,
                boost.withinBudget);
            const auto esmart =
                baselines.energySmart(w, profile, base);
            add(esmart.scheme, esmart.n, esmart.fHz, esmart.powerW,
                esmart.efficiencyRatio(base), 1.0, esmart.feasible,
                esmart.withinBudget);

            std::printf("%s (STV: %zu cores, %.1f W)\n%s\n", name,
                        base.n, base.powerW, table.render().c_str());
        }
    }
};

ACCORDION_REGISTER_EXPERIMENT(ComparisonBaselines)

} // namespace
} // namespace accordion::harness
