/**
 * @file
 * Ablation A2 — frequency-domain granularity. Accordion clusters
 * cores into per-cluster frequency domains (Table 2); the design
 * space spans one chip-wide domain (cheapest, slowest: the single
 * slowest core drags everyone) to per-core domains (EnergySmart/
 * Booster-style, most flexible). This ablation quantifies the
 * aggregate safe compute throughput (sum of core clocks) each
 * granularity extracts from the same variation-afflicted chip.
 */

#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness {
namespace {

class AblationFdomain final : public Experiment
{
  public:
    std::string name() const override { return "ablation_fdomain"; }
    std::string artifact() const override { return "Ablation A2"; }
    std::string description() const override
    {
        return "frequency-domain granularity vs safe throughput";
    }

    void run(RunContext &ctx) const override
    {
        banner("Ablation A2 — frequency-domain granularity",
               "per-cluster domains recover most of the "
               "per-core-domain throughput at 1/8 the cost");

        const auto &chip = ctx.system().chip();

        // Chip-wide domain: every core at the chip-slowest safe f.
        double f_chip_min = 1e300;
        double sum_core = 0.0, sum_cluster = 0.0;
        for (std::size_t k = 0; k < chip.numClusters(); ++k) {
            const double f_cluster = chip.clusterSafeF(k);
            for (std::size_t core :
                 chip.geometry().coresOfCluster(k)) {
                const double f = chip.coreSafeF(core);
                f_chip_min = std::min(f_chip_min, f);
                sum_core += f;
                sum_cluster += f_cluster;
            }
        }
        const double sum_chip =
            f_chip_min * static_cast<double>(chip.numCores());

        util::Table table({"granularity", "# domains",
                           "aggregate safe GHz", "vs per-core"});
        auto csv = ctx.series("ablation_fdomain",
                              {"granularity", "domains",
                               "aggregate_ghz"});
        struct Row
        {
            const char *name;
            std::size_t domains;
            double sum;
        };
        const Row rows[] = {
            {"chip-wide", 1, sum_chip},
            {"per-cluster (Accordion)", chip.numClusters(),
             sum_cluster},
            {"per-core", chip.numCores(), sum_core},
        };
        for (const Row &row : rows) {
            table.addRow({row.name, util::format("%zu", row.domains),
                          util::format("%.1f", row.sum / 1e9),
                          util::format("%.0f%%",
                                       100.0 * row.sum / sum_core)});
            csv.addRow({row.name, util::format("%zu", row.domains),
                        util::format("%.4f", row.sum / 1e9)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nmeasured: cluster granularity recovers %.0f%% "
                    "of the per-core throughput with %zux fewer "
                    "domains\n",
                    100.0 * sum_cluster / sum_core,
                    chip.numCores() / chip.numClusters());
    }
};

ACCORDION_REGISTER_EXPERIMENT(AblationFdomain)

} // namespace
} // namespace accordion::harness
