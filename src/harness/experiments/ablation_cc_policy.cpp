/**
 * @file
 * Ablation A1 — control-core placement policy. Accordion reserves
 * the fastest (most reliable) cores for CCs (Section 4.1). This
 * ablation compares reserving the fastest vs random vs the slowest
 * cores: the CC clock sets the serial merge tail, so the policy
 * directly moves iso-execution-time feasibility and the core count
 * each problem size needs.
 */

#include <algorithm>
#include <numeric>

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class AblationCcPolicy final : public Experiment
{
  public:
    std::string name() const override { return "ablation_cc_policy"; }
    std::string artifact() const override { return "Ablation A1"; }
    std::string description() const override
    {
        return "control-core placement policy vs merge tail";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Ablation A1 — control-core placement policy",
               "fastest-core CCs minimize the serial tail; slow "
               "CCs inflate execution time at every point");

        core::AccordionSystem &system = ctx.system();
        const auto &chip = system.chip();
        const rms::Workload &w = rms::findWorkload("bodytrack");
        const auto &profile = system.profile("bodytrack");
        const auto base = system.pareto().baseline(w, profile);

        // Candidate CC clocks under the three policies.
        std::vector<std::size_t> by_speed(chip.numCores());
        std::iota(by_speed.begin(), by_speed.end(), 0);
        std::sort(by_speed.begin(), by_speed.end(),
                  [&](std::size_t a, std::size_t b) {
                      return chip.coreSafeF(a) > chip.coreSafeF(b);
                  });
        struct Policy
        {
            const char *name;
            double ccF;
        };
        const Policy policies[] = {
            {"fastest cores (paper)",
             chip.coreSafeF(by_speed.front())},
            {"median cores",
             chip.coreSafeF(by_speed[by_speed.size() / 2])},
            {"slowest cores", chip.coreSafeF(by_speed.back())},
        };

        util::Table table({"CC policy", "CC f (GHz)",
                           "T_NTV/T_STV @ PS=1 (N=208)",
                           "iso-time feasible?"});
        auto csv = ctx.series("ablation_cc_policy",
                              {"policy", "cc_f_ghz", "t_ratio"});
        for (const Policy &policy : policies) {
            // Evaluate a fixed operating point with the policy's CC
            // clock driving the serial merge tail.
            const auto cores =
                system.pareto().selector().selectCores(208);
            const double f =
                system.pareto().selector().safeFrequency(cores);
            manycore::TaskSet tasks;
            tasks.numTasks = cores.size();
            tasks.instrPerTask = profile.defaultInstrPerTask() *
                static_cast<double>(profile.threads()) /
                static_cast<double>(cores.size());
            tasks.ccFrequencyHz = policy.ccF;
            const auto est = system.perfModel().estimate(
                chip.geometry(), cores, f, tasks, w.traits(),
                system.technology().fNtv() / f);
            const double ratio = est.seconds / base.seconds;
            table.addRow({policy.name,
                          util::format("%.2f", policy.ccF / 1e9),
                          util::format("%.3f", ratio),
                          ratio <= 1.02 ? "yes" : "no"});
            csv.addRow({policy.name,
                        util::format("%.4f", policy.ccF / 1e9),
                        util::format("%.4f", ratio)});
        }
        std::printf("%s", table.render().c_str());
    }
};

ACCORDION_REGISTER_EXPERIMENT(AblationCcPolicy)

} // namespace
} // namespace accordion::harness
