/**
 * @file
 * Reproduces Fig. 6: iso-execution-time pareto fronts for the four
 * PARSEC kernels — canneal, ferret, bodytrack, x264.
 */

#include "pareto_fronts.hpp"

namespace accordion::harness {
namespace {

class Fig6ParetoParsec final : public Experiment
{
  public:
    std::string name() const override { return "fig6_pareto_parsec"; }
    std::string artifact() const override { return "Fig. 6"; }
    std::string description() const override
    {
        return "pareto fronts: canneal, ferret, bodytrack, x264";
    }

    void run(RunContext &ctx) const override
    {
        runParetoFronts(
            ctx, "6", {"canneal", "ferret", "bodytrack", "x264"});
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig6ParetoParsec)

} // namespace
} // namespace accordion::harness
