/**
 * @file
 * Reproduces the paper's headline (Section 9): across the RMS
 * benchmarks, Accordion achieves the STV execution time while
 * operating 1.61-1.87x more energy efficiently. This experiment
 * reports, per kernel, the most energy-efficient feasible
 * within-budget operating point at (a) any quality and (b) near-STV
 * quality (Q >= 0.95), under both flavors.
 */

#include <algorithm>

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class HeadlineEnergyEfficiency final : public Experiment
{
  public:
    std::string name() const override
    {
        return "headline_energy_efficiency";
    }
    std::string artifact() const override { return "Sec. 9"; }
    std::string description() const override
    {
        return "headline energy-efficiency gains at iso-time";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Headline — energy efficiency at the STV "
               "execution time",
               "Accordion runs 1.61-1.87x more energy-efficiently "
               "at iso-execution-time");

        core::AccordionSystem &system = ctx.system();
        util::Table table({"benchmark", "Safe best x", "Spec best x",
                           "Spec best x (Q>=0.95)", "at N/Nstv",
                           "mode"});
        auto csv = ctx.series("headline",
                              {"benchmark", "safe_best", "spec_best",
                               "spec_best_isoq"});

        std::vector<double> iso_q_gains;
        for (const rms::Workload *w : rms::allWorkloads()) {
            const auto &profile = system.profile(w->name());
            const auto base = system.pareto().baseline(*w, profile);
            double safe_best = 0.0, spec_best = 0.0,
                   iso_q_best = 0.0;
            double best_n_ratio = 0.0;
            std::string best_mode = "-";
            for (core::Flavor flavor :
                 {core::Flavor::Safe, core::Flavor::Speculative}) {
                for (const auto &p :
                     system.pareto().extract(*w, profile, flavor)) {
                    if (!p.feasible || !p.withinBudget)
                        continue;
                    const double eff = p.efficiencyRatio(base);
                    if (flavor == core::Flavor::Safe)
                        safe_best = std::max(safe_best, eff);
                    else
                        spec_best = std::max(spec_best, eff);
                    if (flavor == core::Flavor::Speculative &&
                        p.qualityRatio >= 0.95 && eff > iso_q_best) {
                        iso_q_best = eff;
                        best_n_ratio = p.nRatio(base);
                        best_mode = core::sizeModeName(p.sizeMode);
                    }
                }
            }
            if (iso_q_best > 0.0)
                iso_q_gains.push_back(iso_q_best);
            table.addRow({w->name(), util::format("%.2f", safe_best),
                          util::format("%.2f", spec_best),
                          iso_q_best > 0.0
                              ? util::format("%.2f", iso_q_best)
                              : "-",
                          iso_q_best > 0.0
                              ? util::format("%.1f", best_n_ratio)
                              : "-",
                          best_mode});
            csv.addRow({w->name(), util::format("%.4f", safe_best),
                        util::format("%.4f", spec_best),
                        util::format("%.4f", iso_q_best)});
        }
        std::printf("%s", table.render().c_str());
        if (!iso_q_gains.empty()) {
            std::sort(iso_q_gains.begin(), iso_q_gains.end());
            std::printf("\nmeasured iso-quality Speculative gains "
                        "span %.2f-%.2fx (paper: 1.61-1.87x)\n",
                        iso_q_gains.front(), iso_q_gains.back());
        }
    }
};

ACCORDION_REGISTER_EXPERIMENT(HeadlineEnergyEfficiency)

} // namespace
} // namespace accordion::harness
