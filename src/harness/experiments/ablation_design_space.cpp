/**
 * @file
 * Ablation A3 — the Fig. 3 design space. Runs the same faulty
 * workload through the CC/DC runtime under the three organizations
 * (homogeneous spatio-temporal, homogeneous time-multiplexed,
 * heterogeneous clusters) across CC:DC ratios, reporting virtual
 * time, CC busy time, and the area cost of specialized CCs.
 */

#include <cmath>

#include "core/runtime.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

using namespace accordion::core;

class AblationDesignSpace final : public Experiment
{
  public:
    std::string name() const override
    {
        return "ablation_design_space";
    }
    std::string artifact() const override { return "Ablation A3"; }
    std::string description() const override
    {
        return "CC/DC organizations of the Fig. 3 design space";
    }

    void run(RunContext &ctx) const override
    {
        banner("Ablation A3 — Fig. 3 design-space organizations",
               "(a) flexible and simple; (b) better HW use but "
               "multiplexing overhead; (c) fastest CCs, more area, "
               "fixed CC count");

        std::vector<WorkItem> items(512);
        for (std::size_t i = 0; i < items.size(); ++i)
            items[i] = {i, static_cast<double>(i % 97)};
        const ItemFn work = [](const WorkItem &item) {
            // A small but real computation: iterated logistic map.
            double x = 0.25 + item.input / 200.0;
            for (int i = 0; i < 64; ++i)
                x = 3.6 * x * (1.0 - x);
            return x;
        };
        DcFaultModel faults;
        faults.hangProbability = 0.03;
        faults.corruptProbability = 0.02;
        faults.seed = 4242;

        util::Table table({"organization", "CCs", "DCs",
                           "virtual time", "CC busy", "dropped",
                           "watchdog fires", "CC area (DC-equiv)"});
        auto csv = ctx.series("ablation_design_space",
                              {"organization", "ccs", "dcs",
                               "virtual_time", "dropped"});
        for (Organization org :
             {Organization::HomogeneousSpatial,
              Organization::HomogeneousTimeMultiplexed,
              Organization::HeterogeneousClusters}) {
            const OrganizationTraits traits =
                organizationTraits(org);
            for (std::size_t ccs : {1u, 2u, 4u}) {
                if (traits.ccCountFixed && ccs != 1)
                    continue; // (c): one CC per cluster by design
                RuntimeParams params;
                params.organization = org;
                params.numCcs = ccs;
                params.numDcs = 16 - ccs;
                params.mergeCostPerItem = 0.05;
                params.acceptable = [](double v) {
                    return std::isfinite(v) && std::abs(v) < 1e3;
                };
                const auto report = AccordionRuntime{params}.execute(
                    items, work, faults);
                table.addRow(
                    {organizationName(org), util::format("%zu", ccs),
                     util::format("%zu", params.numDcs),
                     util::format("%.1f", report.virtualTime),
                     util::format("%.1f", report.ccBusyTime),
                     util::format("%zu", report.dropped),
                     util::format("%zu", report.watchdogFires),
                     util::format("%.1f",
                                  traits.ccAreaFactor *
                                      static_cast<double>(ccs))});
                csv.addRow({organizationName(org),
                            util::format("%zu", ccs),
                            util::format("%zu", params.numDcs),
                            util::format("%.4f", report.virtualTime),
                            util::format("%zu", report.dropped)});
            }
        }
        std::printf("%s", table.render().c_str());
    }
};

ACCORDION_REGISTER_EXPERIMENT(AblationDesignSpace)

} // namespace
} // namespace accordion::harness
