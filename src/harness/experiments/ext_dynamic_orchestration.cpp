/**
 * @file
 * Extension (Section 7 — Discussion): dynamic orchestration under
 * fine-grain temporal resiliency changes. Mid-execution, thermal
 * emergencies degrade some engaged clusters' safe frequencies (and
 * later recover). A static allocation rides the degraded common
 * clock and blows the iso-execution-time target; the dynamic
 * orchestrator re-selects cores at phase boundaries — swapping the
 * afflicted clusters out while they are hot — and holds the
 * target at a modest energy cost.
 */

#include "core/accordion.hpp"
#include "core/dynamic.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class ExtDynamicOrchestration final : public Experiment
{
  public:
    std::string name() const override
    {
        return "ext_dynamic_orchestration";
    }
    std::string artifact() const override { return "Sec. 7"; }
    std::string description() const override
    {
        return "dynamic re-selection under thermal emergencies";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Extension — dynamic orchestration (Section 7)",
               "N can change midst-execution (the problem size "
               "cannot); re-selection rides out temporal "
               "resiliency changes");

        core::AccordionSystem &system = ctx.system();
        const rms::Workload &w = rms::findWorkload("hotspot");
        const auto &profile = system.profile("hotspot");
        const auto base = system.pareto().baseline(w, profile);

        // Thermal emergencies: at phase 2, the four most efficient
        // clusters (the ones the initial selection certainly uses)
        // lose 40% of their safe frequency; they recover at phase 6.
        std::vector<core::ResilienceEvent> events;
        const auto &ranking =
            system.pareto().selector().rankedClusters();
        for (std::size_t i = 0; i < 4; ++i) {
            events.push_back({2, ranking[i].cluster, 0.6});
            events.push_back({6, ranking[i].cluster, 1.0});
        }

        auto csv = ctx.series("ext_dynamic",
                              {"scheme", "phase", "n", "f_ghz",
                               "seconds", "power_w"});
        util::Table table({"scheme", "T_total/T_STV", "energy (mJ)",
                           "avg power (W)", "re-selections",
                           "iso-time held?"});
        for (bool adaptive : {false, true}) {
            core::DynamicOrchestrator::Params params;
            params.adaptive = adaptive;
            const core::DynamicOrchestrator orchestrator(
                system.chip(), system.powerModel(),
                system.perfModel(), params);
            const core::DynamicReport report =
                orchestrator.run(w, profile, base, events);
            const char *scheme =
                adaptive ? "dynamic (re-select at boundaries)"
                         : "static (initial allocation)";
            for (const core::PhaseOutcome &phase : report.phases)
                csv.addRow({scheme,
                            util::format("%zu", phase.phase),
                            util::format("%zu", phase.n),
                            util::format("%.4f", phase.fHz / 1e9),
                            util::format("%.6g", phase.seconds),
                            util::format("%.4f", phase.powerW)});
            const double ratio = report.totalSeconds / base.seconds;
            table.addRow({scheme, util::format("%.3f", ratio),
                          util::format("%.3f",
                                       report.energyJ * 1e3),
                          util::format("%.1f", report.avgPowerW()),
                          util::format("%zu", report.reselections),
                          ratio <= 1.05 ? "yes" : "NO"});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nphase trace of the dynamic scheme is in "
                    "bench_out/ext_dynamic.csv — watch N and f move "
                    "at phases 2 and 6\n");
    }
};

ACCORDION_REGISTER_EXPERIMENT(ExtDynamicOrchestration)

} // namespace
} // namespace accordion::harness
