/**
 * @file
 * Reproduces Table 1: the basic Accordion modes of operation, and
 * demonstrates their arithmetic on the default chip — Still keeps
 * the problem size and grows N by >= fSTV/fNTV; Compress shrinks
 * both; Expand grows N faster than the problem size.
 */

#include "core/accordion.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class Table1Modes final : public Experiment
{
  public:
    std::string name() const override { return "table1_modes"; }
    std::string artifact() const override { return "Table 1"; }
    std::string description() const override
    {
        return "Still/Compress/Expand semantics + measured demo";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        banner("Table 1 — basic Accordion modes of operation",
               "Still: PS fixed, N x fSTV/fNTV; Compress: smaller "
               "PS, fewer cores, Q loss; Expand: larger PS, N "
               "grows faster than PS");

        util::Table semantics({"Mode", "Problem size", "Core count",
                               "Quality", "Flavors"});
        semantics.addRow({"Still", "PS_NTV = PS_STV",
                          "N_NTV >= N_STV x f_STV/f_NTV",
                          "Q_NTV = Q_STV", "Safe / Speculative"});
        semantics.addRow({"Compress", "PS_NTV < PS_STV",
                          "no restriction (can be < N_STV)",
                          "Q_NTV <= Q_STV", "Safe / Speculative"});
        semantics.addRow({"Expand", "PS_NTV > PS_STV",
                          "N_NTV > N_STV (faster than PS)",
                          "Q_NTV >= Q_STV (Safe)",
                          "Safe / Speculative"});
        std::printf("%s\n", semantics.render().c_str());

        core::AccordionSystem &system = ctx.system();
        const rms::Workload &w = rms::findWorkload("canneal");
        const core::QualityProfile &profile =
            system.profile("canneal");
        const core::StvBaseline base =
            system.pareto().baseline(w, profile);

        util::Table demo({"PS/PSstv", "mode", "N/Nstv",
                          "per-core work x", "f (GHz)", "Q/Qstv"});
        for (double ps : {0.5, 1.0, 1.33}) {
            const auto p = system.pareto().evaluateAt(
                w, profile, core::Flavor::Safe, ps, base);
            demo.addRow({util::format("%.2f", ps),
                         core::sizeModeName(p.sizeMode),
                         util::format("%.2f", p.nRatio(base)),
                         util::format("%.2f", ps / p.nRatio(base)),
                         util::format("%.2f", p.fHz / 1e9),
                         util::format("%.3f", p.qualityRatio)});
        }
        std::printf("measured on the default chip (canneal, "
                    "Safe):\n%s",
                    demo.render().c_str());
        std::printf("\nnote: per-core work (PS/N normalized to STV) "
                    "stays <= f_NTV/f_STV = %.2f in every feasible "
                    "mode, as Table 1 requires\n",
                    0.35e9 / base.fHz);
    }
};

ACCORDION_REGISTER_EXPERIMENT(Table1Modes)

} // namespace
} // namespace accordion::harness
