/**
 * @file
 * Reproduces Figures 2 and 4: application output quality vs problem
 * size under Default, Drop 1/4 and Drop 1/2 for all six RMS
 * benchmarks (Fig. 2: canneal and hotspot; Fig. 4: ferret,
 * bodytrack, x264, srad). Both axes are normalized to the default
 * Accordion-input point, exactly as Section 6.2 prescribes.
 *
 * Paper behaviors to hold: Q increases monotonically with problem
 * size; even Drop 1/2 does not cause excessive degradation (except
 * bodytrack, the most drop-sensitive kernel, whose curves may also
 * break monotonicity due to non-determinism); hotspot and ferret
 * show higher sensitivity to problem size than canneal and srad.
 */

#include "core/quality_profile.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "rms/workload.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {
namespace {

class Fig2Fig4QualityFronts final : public Experiment
{
  public:
    std::string name() const override
    {
        return "fig2_fig4_quality_fronts";
    }
    std::string artifact() const override { return "Fig. 2 + Fig. 4"; }
    std::string description() const override
    {
        return "quality vs problem size, six RMS kernels";
    }

    void run(RunContext &ctx) const override
    {
        util::setVerbose(false);
        auto csv = ctx.series("fig2_fig4_quality_fronts",
                              {"benchmark", "ps_ratio", "q_default",
                               "q_drop14", "q_drop12"});

        for (const rms::Workload *w : rms::allWorkloads()) {
            const bool fig2 =
                w->name() == "canneal" || w->name() == "hotspot";
            banner(util::format(
                       "Figure %s — %s: quality vs problem size",
                       fig2 ? "2" : "4", w->name().c_str()),
                   "Q rises monotonically with problem size; Drop "
                   "degradation stays moderate (bodytrack excepted)");

            const auto profile = core::QualityProfile::measure(*w);
            const auto &def = profile.defaultCurve();
            const auto q14 = profile.dropQuarterCurve().interp();
            const auto q12 = profile.dropHalfCurve().interp();

            util::Table table({"problem size (norm)", "Q default",
                               "Q drop 1/4", "Q drop 1/2"});
            for (std::size_t i = 0; i < def.psRatio.size(); ++i) {
                const double ps = def.psRatio[i];
                table.addRow({util::format("%.3f", ps),
                              util::format("%.3f", def.qRatio[i]),
                              util::format("%.3f", q14(ps)),
                              util::format("%.3f", q12(ps))});
                csv.addRow({w->name(), util::format("%.6g", ps),
                            util::format("%.6g", def.qRatio[i]),
                            util::format("%.6g", q14(ps)),
                            util::format("%.6g", q12(ps))});
            }
            std::printf("%s", table.render().c_str());
            std::printf("\nmeasured: Q span %.2f-%.2f across the "
                        "sweep; Drop 1/2 at default size keeps "
                        "%.0f%% of nominal quality\n",
                        def.qRatio.front(), def.qRatio.back(),
                        100.0 * q12(1.0));
        }
    }
};

ACCORDION_REGISTER_EXPERIMENT(Fig2Fig4QualityFronts)

} // namespace
} // namespace accordion::harness
