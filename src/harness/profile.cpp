#include "profile.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "perf.hpp"
#include "perf_kernels.hpp"
#include "run_context.hpp"
#include "silencer.hpp"
#include "stats_report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

namespace {

/** The perf-suite scenario named @p name, or null. */
const PerfScenario *
findScenario(const std::string &name)
{
    for (const PerfScenario &s : perfScenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

/** One-line human spelling of a sample share. */
std::string
formatShare(double fraction)
{
    return util::format("%5.1f%%", fraction * 100.0);
}

} // namespace

int
runProfile(const ProfileOptions &options)
{
    if (options.list) {
        util::Table table({"scenario", "description"});
        for (const PerfScenario &s : perfScenarios())
            table.addRow({s.name, s.description});
        std::printf("%s", table.render().c_str());
        std::printf("\n%zu scenarios; profile with: accordion "
                    "profile <scenario>\n",
                    perfScenarios().size());
        return 0;
    }

    const PerfScenario *scenario = findScenario(options.scenario);
    if (!scenario)
        util::fatal("unknown scenario '%s' (see: accordion profile "
                    "--list)",
                    options.scenario.c_str());

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    if (!options.trace.empty() &&
        !obs::TraceWriter::openGlobal(options.trace))
        util::fatal("--trace: cannot open '%s' for writing",
                    options.trace.c_str());

    // Same shared state the perf suite measures against, so the
    // profile answers "where does *that* scenario spend its time".
    const std::string out_dir =
        (std::filesystem::temp_directory_path() /
         util::format("accordion-profile-%d",
                      static_cast<int>(getpid())))
            .string();
    RunContext::Options run_options;
    run_options.seed = options.seed;
    run_options.threads = options.threads;
    run_options.outDir = out_dir;
    RunContext ctx(run_options);
    kernels::SubstrateFixtures fixtures(options.seed);
    PerfRun run{ctx, fixtures, options.scale};

    // Live telemetry while the run is in flight: the Prometheus
    // file when asked for, trace counter events whenever a trace is
    // open. Started after the pool exists so its counters are live.
    std::optional<obs::MetricsExporter> exporter;
    if (!options.metricsOut.empty() || obs::TraceWriter::global()) {
        obs::MetricsExporter::Options metrics;
        metrics.path = options.metricsOut;
        metrics.intervalMs = options.metricsIntervalMs;
        exporter.emplace(registry, metrics);
        if (!exporter->ok())
            util::fatal("--metrics-out: cannot write '%s'",
                        options.metricsOut.c_str());
    }

    // One unprofiled warmup builds the lazy fixtures (systems,
    // caches) so the samples cover steady-state work; its stats are
    // discarded with the reset below.
    {
        StdoutSilencer silence;
        scenario->body(run);
    }
    registry.reset();

    obs::SamplingProfiler profiler;
    obs::ProfilerOptions profiler_options;
    profiler_options.intervalUs = options.intervalUs;
    if (!profiler.start(profiler_options))
        util::fatal("cannot start the sampling profiler (another "
                    "profiler running, or no timer support)");

    const std::uint64_t t0 = obs::nowNs();
    {
        StdoutSilencer silence;
        for (std::size_t rep = 0; rep < options.reps; ++rep)
            scenario->body(run);
    }
    const std::uint64_t elapsed = obs::nowNs() - t0;
    profiler.stop();

    // Profiler bookkeeping rides into the run's stats through a
    // scoped domain: registered locally, folded into the global
    // registry on merge, so the table below carries it alongside
    // the wait-state counters.
    {
        obs::StatsDomain domain(registry, "profile");
        domain.counter("profiler.samples").add(profiler.sampleCount());
        domain.counter("profiler.dropped_samples")
            .add(profiler.droppedSamples());
        domain.counter("profiler.threads")
            .add(profiler.sampledThreads());
    }
    deriveUtilization(registry, elapsed);

    if (obs::TraceWriter *writer = obs::TraceWriter::global())
        profiler.injectTraceSamples(writer);
    if (exporter)
        exporter->stopAndFlush();
    if (obs::TraceWriter::global()) {
        // Recreate the pool so every worker flushes its lifetime
        // span before the trace file is sealed (same dance as run).
        util::ThreadPool::setGlobalThreads(
            util::ThreadPool::global().size());
        obs::TraceWriter::closeGlobal();
    }

    if (!options.folded.empty() &&
        !profiler.writeFolded(options.folded))
        util::fatal("--folded: cannot write '%s'",
                    options.folded.c_str());

    std::fprintf(stderr,
                 "profile: %s: %zu rep(s), %.2f s wall, %llu "
                 "samples (%llu dropped) on %zu thread(s)\n",
                 scenario->name.c_str(), options.reps, elapsed * 1e-9,
                 static_cast<unsigned long long>(
                     profiler.sampleCount()),
                 static_cast<unsigned long long>(
                     profiler.droppedSamples()),
                 profiler.sampledThreads());

    const std::vector<obs::SelfTimeEntry> top =
        profiler.selfTimes(options.top);
    util::Table table({"self", "samples", "symbol"});
    for (const obs::SelfTimeEntry &e : top)
        table.addRow({formatShare(e.fraction),
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       e.samples)),
                      e.symbol});
    std::printf("top %zu symbols by self time:\n%s",
                std::min(options.top, top.size()),
                table.render().c_str());

    std::vector<ExperimentSummary> summaries;
    summaries.push_back(
        {scenario->name, elapsed, registry.snapshot()});
    std::printf("%s", statsTable(summaries, elapsed).c_str());

    registry.reset();
    std::error_code ec;
    std::filesystem::remove_all(out_dir, ec);
    return 0;
}

} // namespace accordion::harness
