#include "profile.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "perf.hpp"
#include "perf_kernels.hpp"
#include "run_context.hpp"
#include "silencer.hpp"
#include "stats_report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

namespace {

/** The perf-suite scenario named @p name, or null. */
const PerfScenario *
findScenario(const std::string &name)
{
    for (const PerfScenario &s : perfScenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

/** One-line human spelling of a sample share. */
std::string
formatShare(double fraction)
{
    return util::format("%5.1f%%", fraction * 100.0);
}

/**
 * Pivot the registry's hw.* stats into a per-scope table: one row
 * per instrumented scope ("scenario", "pool.task",
 * "manycore.heap_advance", ...), one column per event or derived
 * metric actually present. "" when no hw stats exist (counters not
 * engaged or nothing counted).
 */
std::string
hwScopeTable(const std::vector<obs::StatEntry> &stats)
{
    // scope -> metric -> rendered value
    std::map<std::string, std::map<std::string, std::string>> rows;
    std::vector<std::string> columns;
    for (const obs::StatEntry &e : stats) {
        if (e.name.compare(0, 3, "hw.") != 0)
            continue;
        const std::size_t dot = e.name.rfind('.');
        if (dot <= 3)
            continue;
        const std::string scope = e.name.substr(3, dot - 3);
        const std::string metric = e.name.substr(dot + 1);
        std::string value;
        if (e.kind == obs::StatKind::Counter) {
            if (e.count == 0)
                continue;
            value = util::format(
                "%llu", static_cast<unsigned long long>(e.count));
        } else if (e.kind == obs::StatKind::Gauge) {
            value = util::format("%.3f", e.value);
        } else {
            continue;
        }
        rows[scope][metric] = value;
        if (std::find(columns.begin(), columns.end(), metric) ==
            columns.end())
            columns.push_back(metric);
    }
    if (rows.empty())
        return "";
    std::sort(columns.begin(), columns.end());
    std::vector<std::string> header = {"scope"};
    header.insert(header.end(), columns.begin(), columns.end());
    util::Table table(header);
    for (const auto &[scope, metrics] : rows) {
        std::vector<std::string> row = {scope};
        for (const std::string &column : columns) {
            auto it = metrics.find(column);
            row.push_back(it == metrics.end() ? "-" : it->second);
        }
        table.addRow(row);
    }
    return table.render();
}

} // namespace

int
runProfile(const ProfileOptions &options)
{
    if (options.list) {
        std::printf("%s", scenarioSuiteTable().c_str());
        std::printf("\n%zu scenarios; profile with: accordion "
                    "profile <scenario>\n",
                    perfScenarios().size());
        return 0;
    }

    const PerfScenario *scenario = findScenario(options.scenario);
    if (!scenario)
        util::fatal("unknown scenario '%s'; the suite is:\n%s",
                    options.scenario.c_str(),
                    scenarioSuiteTable().c_str());

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    if (options.events)
        obs::hwEngage();
    else
        obs::hwDisengage();
    if (!options.trace.empty() &&
        !obs::TraceWriter::openGlobal(options.trace))
        util::fatal("--trace: cannot open '%s' for writing",
                    options.trace.c_str());

    // Same shared state the perf suite measures against, so the
    // profile answers "where does *that* scenario spend its time".
    const std::string out_dir =
        (std::filesystem::temp_directory_path() /
         util::format("accordion-profile-%d",
                      static_cast<int>(getpid())))
            .string();
    RunContext::Options run_options;
    run_options.seed = options.seed;
    run_options.threads = options.threads;
    run_options.outDir = out_dir;
    RunContext ctx(run_options);
    kernels::SubstrateFixtures fixtures(options.seed);
    PerfRun run{ctx, fixtures, options.scale};

    // Live telemetry while the run is in flight: the Prometheus
    // file when asked for, trace counter events whenever a trace is
    // open. Started after the pool exists so its counters are live.
    std::optional<obs::MetricsExporter> exporter;
    if (!options.metricsOut.empty() || obs::TraceWriter::global()) {
        obs::MetricsExporter::Options metrics;
        metrics.path = options.metricsOut;
        metrics.intervalMs = options.metricsIntervalMs;
        exporter.emplace(registry, metrics);
        if (!exporter->ok())
            util::fatal("--metrics-out: cannot write '%s'",
                        options.metricsOut.c_str());
    }

    // One unprofiled warmup builds the lazy fixtures (systems,
    // caches) so the samples cover steady-state work; its stats are
    // discarded with the reset below.
    {
        StdoutSilencer silence;
        scenario->body(run);
    }
    registry.reset();

    obs::SamplingProfiler profiler;
    obs::ProfilerOptions profiler_options;
    profiler_options.intervalUs = options.intervalUs;
    if (!profiler.start(profiler_options))
        util::fatal("cannot start the sampling profiler (another "
                    "profiler running, or no timer support)");

    // The hw "scenario" scope brackets exactly the profiled reps,
    // so its IPC/MPKI describe the same work as the sample stacks.
    obs::HwSample hw0;
    const bool hw_on = options.events && obs::hwSampleNow(&hw0);
    const std::uint64_t t0 = obs::nowNs();
    {
        StdoutSilencer silence;
        for (std::size_t rep = 0; rep < options.reps; ++rep)
            scenario->body(run);
    }
    const std::uint64_t elapsed = obs::nowNs() - t0;
    if (hw_on) {
        obs::HwSample hw1;
        if (obs::hwSampleNow(&hw1))
            obs::hwPublishDelta("scenario", hw0, hw1);
    }
    profiler.stop();

    // Profiler bookkeeping rides into the run's stats through a
    // scoped domain: registered locally, folded into the global
    // registry on merge, so the table below carries it alongside
    // the wait-state counters.
    {
        obs::StatsDomain domain(registry, "profile");
        domain.counter("profiler.samples").add(profiler.sampleCount());
        domain.counter("profiler.dropped_samples")
            .add(profiler.droppedSamples());
        domain.counter("profiler.threads")
            .add(profiler.sampledThreads());
    }
    deriveUtilization(registry, elapsed);

    if (obs::TraceWriter *writer = obs::TraceWriter::global())
        profiler.injectTraceSamples(writer);
    if (exporter)
        exporter->stopAndFlush();
    if (obs::TraceWriter::global()) {
        // Recreate the pool so every worker flushes its lifetime
        // span before the trace file is sealed (same dance as run).
        util::ThreadPool::setGlobalThreads(
            util::ThreadPool::global().size());
        obs::TraceWriter::closeGlobal();
    }

    if (!options.folded.empty() &&
        !profiler.writeFolded(options.folded))
        util::fatal("--folded: cannot write '%s'",
                    options.folded.c_str());

    std::fprintf(stderr,
                 "profile: %s: %zu rep(s), %.2f s wall, %llu "
                 "samples (%llu dropped) on %zu thread(s)\n",
                 scenario->name.c_str(), options.reps, elapsed * 1e-9,
                 static_cast<unsigned long long>(
                     profiler.sampleCount()),
                 static_cast<unsigned long long>(
                     profiler.droppedSamples()),
                 profiler.sampledThreads());

    const std::vector<obs::SelfTimeEntry> top =
        profiler.selfTimes(options.top);
    util::Table table({"self", "samples", "symbol"});
    for (const obs::SelfTimeEntry &e : top)
        table.addRow({formatShare(e.fraction),
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       e.samples)),
                      e.symbol});
    std::printf("top %zu symbols by self time:\n%s",
                std::min(options.top, top.size()),
                table.render().c_str());

    std::vector<ExperimentSummary> summaries;
    summaries.push_back(
        {scenario->name, elapsed, registry.snapshot()});
    const std::string hw_table = hwScopeTable(summaries.back().stats);
    if (!hw_table.empty())
        std::printf("\nhardware counters by scope:\n%s",
                    hw_table.c_str());
    std::printf("%s", statsTable(summaries, elapsed).c_str());

    registry.reset();
    std::error_code ec;
    std::filesystem::remove_all(out_dir, ec);
    return 0;
}

} // namespace accordion::harness
