#include "cli.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "args.hpp"
#include "obs/clock.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

std::string
usage()
{
    return "usage: accordion <command> [options]\n"
           "\n"
           "commands:\n"
           "  list                     enumerate the experiments\n"
           "  run <name>... | run all  run experiments\n"
           "  help                     this text\n"
           "\n"
           "run options:\n"
           "  --threads N    thread-pool size (default: "
           "ACCORDION_THREADS or hardware concurrency)\n"
           "  --seed S       manufacturing seed (default: 12345)\n"
           "  --out-dir DIR  series output directory (default: "
           "bench_out)\n"
           "  --format F     csv | json | both (default: csv)\n"
           "  --trace FILE   write a Chrome-trace (Perfetto-"
           "loadable) JSON of the run\n";
}

namespace {

/** Fetch the value of `--flag value`; false + *error when missing. */
bool
flagValue(const std::vector<std::string> &args, std::size_t *i,
          std::string *value, std::string *error)
{
    if (*i + 1 >= args.size()) {
        *error = args[*i] + " wants a value";
        return false;
    }
    *value = args[++*i];
    return true;
}

} // namespace

std::optional<CliOptions>
parseCli(const std::vector<std::string> &args, std::string *error)
{
    CliOptions options;
    if (args.empty()) {
        options.command = CliOptions::Command::Help;
        return options;
    }

    const std::string &command = args[0];
    if (command == "help" || command == "--help" || command == "-h") {
        options.command = CliOptions::Command::Help;
        return options;
    }
    if (command == "list") {
        options.command = CliOptions::Command::List;
        if (args.size() > 1) {
            *error = "list takes no arguments";
            return std::nullopt;
        }
        return options;
    }
    if (command != "run") {
        *error = "unknown command '" + command +
                 "' (try: accordion help)";
        return std::nullopt;
    }

    options.command = CliOptions::Command::Run;
    std::string value;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--threads") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.run.threads)) {
                *error = "--threads wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parseSeed(value, &options.run.seed)) {
                *error = "--seed wants a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--out-dir") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.run.outDir = value;
        } else if (arg == "--trace") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.trace = value;
        } else if (arg == "--format") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            const auto format = parseFormat(value);
            if (!format) {
                *error = "--format wants csv, json or both, got '" +
                         value + "'";
                return std::nullopt;
            }
            options.run.format = *format;
        } else if (!arg.empty() && arg[0] == '-') {
            *error = "unknown option '" + arg + "'";
            return std::nullopt;
        } else if (arg == "all") {
            options.runAll = true;
        } else {
            options.experiments.push_back(arg);
        }
    }
    if (!options.runAll && options.experiments.empty()) {
        *error = "run wants at least one experiment name (or 'all'; "
                 "see: accordion list)";
        return std::nullopt;
    }
    if (options.runAll && !options.experiments.empty()) {
        *error = "run takes either 'all' or explicit names, not both";
        return std::nullopt;
    }
    return options;
}

std::vector<const Experiment *>
resolveExperiments(const CliOptions &options, std::string *error)
{
    if (options.runAll)
        return Registry::instance().all();
    std::vector<const Experiment *> experiments;
    for (const std::string &name : options.experiments) {
        const Experiment *e = Registry::instance().find(name);
        if (!e) {
            *error = "unknown experiment '" + name +
                     "' (see: accordion list)";
            return {};
        }
        experiments.push_back(e);
    }
    return experiments;
}

namespace {

/** One experiment's instrumentation snapshot. */
struct ExperimentSummary
{
    std::string name;
    std::uint64_t elapsedNs = 0;
    std::vector<obs::StatEntry> stats;
};

/**
 * Turn the per-worker busy-time counters of the just-finished
 * experiment into utilization-fraction gauges, so the stats dump
 * carries the saturation number directly (busy_ns / wall_ns).
 */
void
deriveUtilization(obs::StatsRegistry &registry,
                  std::uint64_t elapsed_ns)
{
    if (elapsed_ns == 0)
        return;
    const std::string prefix = "pool.worker";
    const std::string suffix = ".busy_ns";
    double busy_total = 0.0;
    std::size_t workers = 0;
    for (const obs::StatEntry &e : registry.snapshot()) {
        if (e.kind != obs::StatKind::Counter ||
            e.name.size() <= prefix.size() + suffix.size() ||
            e.name.compare(0, prefix.size(), prefix) != 0 ||
            e.name.compare(e.name.size() - suffix.size(),
                           suffix.size(), suffix) != 0)
            continue;
        // "pool.worker3.busy_ns" -> "worker3"
        const std::string worker = e.name.substr(
            5, e.name.size() - 5 - suffix.size());
        registry.gauge("pool.utilization." + worker)
            .set(static_cast<double>(e.count) /
                 static_cast<double>(elapsed_ns));
        busy_total += static_cast<double>(e.count);
        ++workers;
    }
    if (workers > 0)
        registry.gauge("pool.utilization.mean")
            .set(busy_total / (static_cast<double>(workers) *
                               static_cast<double>(elapsed_ns)));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Write `<out-dir>/run_summary.json`: run metadata plus, per
 * experiment, wall time and every stat the instrumentation layer
 * collected while it ran (schema documented in EXPERIMENTS.md).
 */
void
writeRunSummary(const std::string &path, const CliOptions &options,
                std::size_t threads,
                const std::vector<ExperimentSummary> &summaries)
{
    std::error_code ec;
    std::filesystem::create_directories(options.run.outDir, ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open '%s' for writing", path.c_str());
    out << "{\n"
        << "  \"schema\": \"accordion-run-summary-v1\",\n"
        << "  \"seed\": " << options.run.seed << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"format\": \"" << formatName(options.run.format)
        << "\",\n"
        << "  \"trace\": "
        << (options.trace.empty()
                ? std::string("null")
                : "\"" + jsonEscape(options.trace) + "\"")
        << ",\n"
        << "  \"experiments\": [";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const ExperimentSummary &s = summaries[i];
        out << (i ? ",\n" : "\n")
            << "    {\"name\": \"" << jsonEscape(s.name)
            << "\", \"elapsed_ns\": " << s.elapsedNs
            << ", \"stats\": " << obs::jsonObject(s.stats) << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out.good())
        util::fatal("failed writing '%s'", path.c_str());
}

/**
 * The end-of-run human stats table: counters summed and
 * distributions merged across experiments, utilization recomputed
 * over the whole run's wall time.
 */
std::string
statsTable(const std::vector<ExperimentSummary> &summaries,
           std::uint64_t total_elapsed_ns)
{
    std::map<std::string, obs::StatEntry> merged;
    for (const ExperimentSummary &s : summaries) {
        for (const obs::StatEntry &e : s.stats) {
            auto it = merged.find(e.name);
            if (it == merged.end()) {
                merged.emplace(e.name, e);
                continue;
            }
            obs::StatEntry &m = it->second;
            switch (e.kind) {
            case obs::StatKind::Counter:
                m.count += e.count;
                break;
            case obs::StatKind::Gauge:
                m.value = e.value; // level: keep the latest
                break;
            case obs::StatKind::Distribution:
                if (e.count) {
                    m.min = m.count ? std::min(m.min, e.min) : e.min;
                    m.max = m.count ? std::max(m.max, e.max) : e.max;
                    m.count += e.count;
                    m.sum += e.sum;
                }
                break;
            }
        }
    }
    // Whole-run utilization from the summed busy counters.
    if (total_elapsed_ns > 0) {
        double busy_total = 0.0;
        std::size_t workers = 0;
        for (auto &[name, e] : merged) {
            if (e.kind != obs::StatKind::Counter ||
                name.compare(0, 11, "pool.worker") != 0 ||
                name.size() <= 19 ||
                name.compare(name.size() - 8, 8, ".busy_ns") != 0)
                continue;
            const std::string worker =
                name.substr(5, name.size() - 5 - 8);
            obs::StatEntry &util_entry =
                merged["pool.utilization." + worker];
            util_entry.name = "pool.utilization." + worker;
            util_entry.kind = obs::StatKind::Gauge;
            util_entry.value = static_cast<double>(e.count) /
                static_cast<double>(total_elapsed_ns);
            busy_total += static_cast<double>(e.count);
            ++workers;
        }
        if (workers > 0) {
            obs::StatEntry &mean = merged["pool.utilization.mean"];
            mean.name = "pool.utilization.mean";
            mean.kind = obs::StatKind::Gauge;
            mean.value = busy_total /
                (static_cast<double>(workers) *
                 static_cast<double>(total_elapsed_ns));
        }
    }

    util::Table table({"stat", "kind", "value"});
    for (const auto &[name, e] : merged) {
        switch (e.kind) {
        case obs::StatKind::Counter:
            table.addRow({name, "counter",
                          util::format("%llu",
                                       static_cast<unsigned long long>(
                                           e.count))});
            break;
        case obs::StatKind::Gauge:
            table.addRow({name, "gauge",
                          util::format("%.4g", e.value)});
            break;
        case obs::StatKind::Distribution:
            table.addRow(
                {name, "distribution",
                 util::format("n=%llu total=%.3f ms mean=%.3f ms "
                              "min=%.3f ms max=%.3f ms",
                              static_cast<unsigned long long>(e.count),
                              e.sum / 1e6, e.mean() / 1e6, e.min / 1e6,
                              e.max / 1e6)});
            break;
        }
    }
    return util::format("\nrun stats (%zu experiments, %.2f s "
                        "wall):\n",
                        summaries.size(), total_elapsed_ns * 1e-9) +
        table.render();
}

} // namespace

int
runCli(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);

    std::string error;
    const auto options = parseCli(args, &error);
    if (!options)
        util::fatal("%s", error.c_str());

    switch (options->command) {
    case CliOptions::Command::Help:
        std::printf("%s", usage().c_str());
        return 0;

    case CliOptions::Command::List: {
        util::Table table({"experiment", "artifact", "description"});
        for (const Experiment *e : Registry::instance().all())
            table.addRow({e->name(), e->artifact(), e->description()});
        std::printf("%s", table.render().c_str());
        std::printf("\n%zu experiments; run with: accordion run "
                    "<name>... | all\n",
                    Registry::instance().size());
        return 0;
    }

    case CliOptions::Command::Run:
        break;
    }

    const auto experiments = resolveExperiments(*options, &error);
    if (experiments.empty())
        util::fatal("%s", error.c_str());

    // Instrumentation on for the whole run; the pool binds its
    // counters when RunContext (re)creates it below.
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    if (!options->trace.empty() &&
        !obs::TraceWriter::openGlobal(options->trace))
        util::fatal("--trace: cannot open '%s' for writing",
                    options->trace.c_str());

    RunContext ctx(options->run);
    const std::size_t threads = util::ThreadPool::global().size();
    std::vector<ExperimentSummary> summaries;
    summaries.reserve(experiments.size());
    std::uint64_t total_ns = 0;
    for (std::size_t i = 0; i < experiments.size(); ++i) {
        const Experiment *e = experiments[i];
        registry.reset();
        const std::uint64_t t0 = obs::nowNs();
        {
            obs::ScopedSpan span("experiment", e->name());
            e->run(ctx);
        }
        const std::uint64_t elapsed = obs::nowNs() - t0;
        total_ns += elapsed;
        deriveUtilization(registry, elapsed);
        summaries.push_back({e->name(), elapsed, registry.snapshot()});
        // Progress to stderr: stdout stays reserved for the stats
        // table / machine output.
        std::fprintf(stderr, "[%zu/%zu] %s: %.2f s\n", i + 1,
                     experiments.size(), e->name().c_str(),
                     elapsed * 1e-9);
    }

    if (obs::TraceWriter::global()) {
        // Recreate the pool so every worker exits and flushes its
        // lifetime span before the trace file is sealed.
        util::ThreadPool::setGlobalThreads(
            util::ThreadPool::global().size());
        obs::TraceWriter::closeGlobal();
    }
    writeRunSummary(options->run.outDir + "/run_summary.json",
                    *options, threads, summaries);
    if (options->run.format != OutputFormat::Json)
        std::printf("%s", statsTable(summaries, total_ns).c_str());
    return 0;
}

int
runLegacy(const std::string &name)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e)
        util::fatal("no experiment named '%s' is registered",
                    name.c_str());
    RunContext ctx;
    e->run(ctx);
    return 0;
}

} // namespace accordion::harness
