#include "cli.hpp"

#include <cstdio>
#include <optional>

#include "args.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "stats_report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

std::string
usage()
{
    return "usage: accordion <command> [options]\n"
           "\n"
           "commands:\n"
           "  list                     enumerate the experiments\n"
           "  run <name>... | run all  run experiments\n"
           "  perf                     record a performance snapshot\n"
           "  perf compare BASE NEW    compare two snapshots\n"
           "  profile <scenario>       sample one perf scenario\n"
           "  help                     this text\n"
           "\n"
           "run options:\n"
           "  --threads N    thread-pool size (default: "
           "ACCORDION_THREADS or hardware concurrency)\n"
           "  --seed S       manufacturing seed (default: 12345)\n"
           "  --out-dir DIR  series output directory (default: "
           "bench_out)\n"
           "  --format F     csv | json | both (default: csv)\n"
           "  --stats M      auto | on | off: end-of-run stats table "
           "(auto: stdout for csv, stderr for json)\n"
           "  --trace FILE   write a Chrome-trace (Perfetto-"
           "loadable) JSON of the run\n"
           "  --metrics-out FILE      live Prometheus text "
           "exposition, rewritten atomically\n"
           "  --metrics-interval MS   exposition flush period "
           "(default: 500)\n"
           "  --events       collect hardware PMU counters "
           "(perf_event_open; degrades gracefully)\n"
           "\n"
           "perf options:\n"
           "  --reps R         recorded repetitions per scenario "
           "(default: 3)\n"
           "  --warmup W       unrecorded warmup repetitions "
           "(default: 1)\n"
           "  --scale X        scenario size multiplier (default: 1)\n"
           "  --out FILE       snapshot path (default: next free "
           "BENCH_<n>.json)\n"
           "  --scenario NAME  run only NAME (repeatable)\n"
           "  --list           print the scenario suite and exit\n"
           "  --events         per-scenario hardware PMU counters in "
           "the snapshot's hw section\n"
           "  --threads N, --seed S  as for run\n"
           "\n"
           "perf compare options:\n"
           "  --threshold PCT  relative noise threshold (default: 5)\n"
           "  --warn-only      report regressions but exit 0\n"
           "\n"
           "profile options:\n"
           "  --folded FILE    write flamegraph-compatible folded "
           "stacks\n"
           "  --reps R         profiled repetitions (default: 10; "
           "one unprofiled warmup first)\n"
           "  --interval US    sampling period in microseconds of "
           "process CPU time (default: 1000)\n"
           "  --top N          self-time table rows (default: 20)\n"
           "  --list           print the scenario suite and exit\n"
           "  --events         per-scope hardware counter table next "
           "to self time\n"
           "  --scale X, --threads N, --seed S  as for perf\n"
           "  --trace FILE, --metrics-out FILE, --metrics-interval "
           "MS  as for run\n"
           "\n"
           "perf compare prints the verdict table on stderr and the "
           "verdict JSON on stdout;\nexit 1 = regression or missing "
           "scenario, exit 2 = snapshots not comparable.\n";
}

namespace {

/** Fetch the value of `--flag value`; false + *error when missing. */
bool
flagValue(const std::vector<std::string> &args, std::size_t *i,
          std::string *value, std::string *error)
{
    if (*i + 1 >= args.size()) {
        *error = args[*i] + " wants a value";
        return false;
    }
    *value = args[++*i];
    return true;
}

/** Parse the `perf` subcommand's argument tail. */
std::optional<CliOptions>
parsePerf(const std::vector<std::string> &args, std::string *error)
{
    CliOptions options;
    options.command = CliOptions::Command::Perf;

    if (args.size() > 1 && args[1] == "compare") {
        options.command = CliOptions::Command::PerfCompare;
        std::string value;
        std::vector<std::string> paths;
        for (std::size_t i = 2; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "--threshold") {
                if (!flagValue(args, &i, &value, error))
                    return std::nullopt;
                if (!parseNonNegativeReal(
                        value, &options.compare.thresholdPct)) {
                    *error = "--threshold wants a non-negative "
                             "number, got '" +
                             value + "'";
                    return std::nullopt;
                }
            } else if (arg == "--warn-only") {
                options.compare.warnOnly = true;
            } else if (!arg.empty() && arg[0] == '-') {
                *error = "unknown option '" + arg + "'";
                return std::nullopt;
            } else {
                paths.push_back(arg);
            }
        }
        if (paths.size() != 2) {
            *error = "perf compare wants exactly two snapshot paths "
                     "(BASE.json NEW.json)";
            return std::nullopt;
        }
        options.compare.basePath = paths[0];
        options.compare.newPath = paths[1];
        return options;
    }

    std::string value;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--reps") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.perf.reps)) {
                *error = "--reps wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--warmup") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            std::uint64_t warmup = 0;
            if (!parseSeed(value, &warmup)) {
                *error = "--warmup wants a non-negative integer, "
                         "got '" +
                         value + "'";
                return std::nullopt;
            }
            options.perf.warmup = static_cast<std::size_t>(warmup);
        } else if (arg == "--scale") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveReal(value, &options.perf.scale)) {
                *error = "--scale wants a positive number, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parseSeed(value, &options.perf.seed)) {
                *error = "--seed wants a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--threads") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.perf.threads)) {
                *error = "--threads wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--out") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.perf.out = value;
        } else if (arg == "--scenario") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.perf.only.push_back(value);
        } else if (arg == "--list") {
            options.perf.list = true;
        } else if (arg == "--events") {
            options.perf.events = true;
        } else {
            *error = "unknown perf argument '" + arg +
                     "' (try: accordion help)";
            return std::nullopt;
        }
    }
    return options;
}

/** Parse the `profile` subcommand's argument tail. */
std::optional<CliOptions>
parseProfile(const std::vector<std::string> &args, std::string *error)
{
    CliOptions options;
    options.command = CliOptions::Command::Profile;

    std::string value;
    std::vector<std::string> names;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--folded") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.profile.folded = value;
        } else if (arg == "--interval") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            std::size_t us = 0;
            if (!parsePositiveCount(value, &us)) {
                *error = "--interval wants a positive integer "
                         "(microseconds), got '" +
                         value + "'";
                return std::nullopt;
            }
            options.profile.intervalUs = us;
        } else if (arg == "--reps") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.profile.reps)) {
                *error = "--reps wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--scale") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveReal(value, &options.profile.scale)) {
                *error = "--scale wants a positive number, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--threads") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value,
                                    &options.profile.threads)) {
                *error = "--threads wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parseSeed(value, &options.profile.seed)) {
                *error = "--seed wants a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--top") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.profile.top)) {
                *error = "--top wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--trace") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.profile.trace = value;
        } else if (arg == "--metrics-out") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.profile.metricsOut = value;
        } else if (arg == "--metrics-interval") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            std::size_t ms = 0;
            if (!parsePositiveCount(value, &ms)) {
                *error = "--metrics-interval wants a positive "
                         "integer (milliseconds), got '" +
                         value + "'";
                return std::nullopt;
            }
            options.profile.metricsIntervalMs = ms;
        } else if (arg == "--list") {
            options.profile.list = true;
        } else if (arg == "--events") {
            options.profile.events = true;
        } else if (!arg.empty() && arg[0] == '-') {
            *error = "unknown option '" + arg + "'";
            return std::nullopt;
        } else {
            names.push_back(arg);
        }
    }
    if (options.profile.list) {
        if (!names.empty()) {
            *error = "profile --list takes no scenario name";
            return std::nullopt;
        }
        return options;
    }
    if (names.size() != 1) {
        *error = "profile wants exactly one scenario name (see: "
                 "accordion profile --list)";
        return std::nullopt;
    }
    options.profile.scenario = names[0];
    return options;
}

} // namespace

std::optional<CliOptions>
parseCli(const std::vector<std::string> &args, std::string *error)
{
    CliOptions options;
    if (args.empty()) {
        options.command = CliOptions::Command::Help;
        return options;
    }

    const std::string &command = args[0];
    if (command == "help" || command == "--help" || command == "-h") {
        options.command = CliOptions::Command::Help;
        return options;
    }
    if (command == "list") {
        options.command = CliOptions::Command::List;
        if (args.size() > 1) {
            *error = "list takes no arguments";
            return std::nullopt;
        }
        return options;
    }
    if (command == "perf")
        return parsePerf(args, error);
    if (command == "profile")
        return parseProfile(args, error);
    if (command != "run") {
        *error = "unknown command '" + command +
                 "' (try: accordion help)";
        return std::nullopt;
    }

    options.command = CliOptions::Command::Run;
    std::string value;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--threads") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.run.threads)) {
                *error = "--threads wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parseSeed(value, &options.run.seed)) {
                *error = "--seed wants a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--out-dir") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.run.outDir = value;
        } else if (arg == "--trace") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.trace = value;
        } else if (arg == "--metrics-out") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.metricsOut = value;
        } else if (arg == "--metrics-interval") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            std::size_t ms = 0;
            if (!parsePositiveCount(value, &ms)) {
                *error = "--metrics-interval wants a positive "
                         "integer (milliseconds), got '" +
                         value + "'";
                return std::nullopt;
            }
            options.metricsIntervalMs = ms;
        } else if (arg == "--events") {
            options.events = true;
        } else if (arg == "--format") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            const auto format = parseFormat(value);
            if (!format) {
                *error = "--format wants csv, json or both, got '" +
                         value + "'";
                return std::nullopt;
            }
            options.run.format = *format;
        } else if (arg == "--stats") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (value == "auto")
                options.stats = StatsMode::Auto;
            else if (value == "on")
                options.stats = StatsMode::On;
            else if (value == "off")
                options.stats = StatsMode::Off;
            else {
                *error = "--stats wants auto, on or off, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            *error = "unknown option '" + arg + "'";
            return std::nullopt;
        } else if (arg == "all") {
            options.runAll = true;
        } else {
            options.experiments.push_back(arg);
        }
    }
    if (!options.runAll && options.experiments.empty()) {
        *error = "run wants at least one experiment name (or 'all'; "
                 "see: accordion list)";
        return std::nullopt;
    }
    if (options.runAll && !options.experiments.empty()) {
        *error = "run takes either 'all' or explicit names, not both";
        return std::nullopt;
    }
    return options;
}

std::vector<const Experiment *>
resolveExperiments(const CliOptions &options, std::string *error)
{
    if (options.runAll)
        return Registry::instance().all();
    std::vector<const Experiment *> experiments;
    for (const std::string &name : options.experiments) {
        const Experiment *e = Registry::instance().find(name);
        if (!e) {
            *error = "unknown experiment '" + name +
                     "' (see: accordion list)";
            return {};
        }
        experiments.push_back(e);
    }
    return experiments;
}

int
runCli(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);

    std::string error;
    const auto options = parseCli(args, &error);
    if (!options)
        util::fatal("%s", error.c_str());

    switch (options->command) {
    case CliOptions::Command::Help:
        std::printf("%s", usage().c_str());
        return 0;

    case CliOptions::Command::List: {
        util::Table table({"experiment", "artifact", "description"});
        for (const Experiment *e : Registry::instance().all())
            table.addRow({e->name(), e->artifact(), e->description()});
        std::printf("%s", table.render().c_str());
        std::printf("\n%zu experiments; run with: accordion run "
                    "<name>... | all\n",
                    Registry::instance().size());
        return 0;
    }

    case CliOptions::Command::Perf:
        return runPerfRecord(options->perf);

    case CliOptions::Command::PerfCompare:
        return runPerfCompare(options->compare);

    case CliOptions::Command::Profile:
        return runProfile(options->profile);

    case CliOptions::Command::Run:
        break;
    }

    const auto experiments = resolveExperiments(*options, &error);
    if (experiments.empty())
        util::fatal("%s", error.c_str());

    // Instrumentation on for the whole run; the pool binds its
    // counters when RunContext (re)creates it below. Hardware
    // counters engage before the pool spawns so every worker opens
    // its per-thread fds on the way in.
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    if (options->events)
        obs::hwEngage();
    else
        obs::hwDisengage();
    if (!options->trace.empty() &&
        !obs::TraceWriter::openGlobal(options->trace))
        util::fatal("--trace: cannot open '%s' for writing",
                    options->trace.c_str());

    RunContext ctx(options->run);
    const std::size_t threads = util::ThreadPool::global().size();

    // Live telemetry: the Prometheus exposition file when asked
    // for, and — whenever a trace is open — periodic "C" counter
    // events so the trace shows stats evolving over the run. Built
    // after RunContext so the (possibly resized) pool's counters
    // are live. Read-only: it cannot perturb results.
    std::optional<obs::MetricsExporter> exporter;
    if (!options->metricsOut.empty() || obs::TraceWriter::global()) {
        obs::MetricsExporter::Options metrics;
        metrics.path = options->metricsOut;
        metrics.intervalMs = options->metricsIntervalMs;
        exporter.emplace(registry, metrics);
        if (!exporter->ok())
            util::fatal("--metrics-out: cannot write '%s'",
                        options->metricsOut.c_str());
    }

    std::vector<ExperimentSummary> summaries;
    summaries.reserve(experiments.size());
    std::uint64_t total_ns = 0;
    for (std::size_t i = 0; i < experiments.size(); ++i) {
        const Experiment *e = experiments[i];
        registry.reset();
        const std::uint64_t t0 = obs::nowNs();
        {
            obs::ScopedSpan span("experiment", e->name());
            // Main-thread counters for the whole experiment; worker
            // scopes (pool.task, manycore.*) publish on their own.
            obs::ScopedHwRegion hw_region("experiment");
            e->run(ctx);
        }
        const std::uint64_t elapsed = obs::nowNs() - t0;
        total_ns += elapsed;
        deriveUtilization(registry, elapsed);
        summaries.push_back({e->name(), elapsed, registry.snapshot()});
        // Progress to stderr: stdout stays reserved for the stats
        // table / machine output.
        std::fprintf(stderr, "[%zu/%zu] %s: %.2f s\n", i + 1,
                     experiments.size(), e->name().c_str(),
                     elapsed * 1e-9);
    }

    // Stop the exporter before the trace seals so no counter event
    // races the close (and the exposition file gets a final flush).
    if (exporter)
        exporter->stopAndFlush();
    if (obs::TraceWriter::global()) {
        // Recreate the pool so every worker exits and flushes its
        // lifetime span before the trace file is sealed.
        util::ThreadPool::setGlobalThreads(
            util::ThreadPool::global().size());
        obs::TraceWriter::closeGlobal();
    }
    writeRunSummary(options->run.outDir + "/run_summary.json",
                    options->run, options->trace, threads, summaries);

    // --stats routing: `auto` keeps the legacy stdout bytes for csv
    // runs and moves the table to stderr under --format json, where
    // stdout must stay machine-parseable; `on` always uses stderr.
    const bool json_out = options->run.format == OutputFormat::Json;
    if (options->stats != StatsMode::Off) {
        const std::string table = statsTable(summaries, total_ns);
        if (options->stats == StatsMode::Auto && !json_out)
            std::printf("%s", table.c_str());
        else
            std::fprintf(stderr, "%s", table.c_str());
    }
    return 0;
}

int
runLegacy(const std::string &name)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e)
        util::fatal("no experiment named '%s' is registered",
                    name.c_str());
    RunContext ctx;
    e->run(ctx);
    return 0;
}

} // namespace accordion::harness
