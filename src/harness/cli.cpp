#include "cli.hpp"

#include <cstdio>

#include "args.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {

std::string
usage()
{
    return "usage: accordion <command> [options]\n"
           "\n"
           "commands:\n"
           "  list                     enumerate the experiments\n"
           "  run <name>... | run all  run experiments\n"
           "  help                     this text\n"
           "\n"
           "run options:\n"
           "  --threads N    thread-pool size (default: "
           "ACCORDION_THREADS or hardware concurrency)\n"
           "  --seed S       manufacturing seed (default: 12345)\n"
           "  --out-dir DIR  series output directory (default: "
           "bench_out)\n"
           "  --format F     csv | json | both (default: csv)\n";
}

namespace {

/** Fetch the value of `--flag value`; false + *error when missing. */
bool
flagValue(const std::vector<std::string> &args, std::size_t *i,
          std::string *value, std::string *error)
{
    if (*i + 1 >= args.size()) {
        *error = args[*i] + " wants a value";
        return false;
    }
    *value = args[++*i];
    return true;
}

} // namespace

std::optional<CliOptions>
parseCli(const std::vector<std::string> &args, std::string *error)
{
    CliOptions options;
    if (args.empty()) {
        options.command = CliOptions::Command::Help;
        return options;
    }

    const std::string &command = args[0];
    if (command == "help" || command == "--help" || command == "-h") {
        options.command = CliOptions::Command::Help;
        return options;
    }
    if (command == "list") {
        options.command = CliOptions::Command::List;
        if (args.size() > 1) {
            *error = "list takes no arguments";
            return std::nullopt;
        }
        return options;
    }
    if (command != "run") {
        *error = "unknown command '" + command +
                 "' (try: accordion help)";
        return std::nullopt;
    }

    options.command = CliOptions::Command::Run;
    std::string value;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--threads") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parsePositiveCount(value, &options.run.threads)) {
                *error = "--threads wants a positive integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            if (!parseSeed(value, &options.run.seed)) {
                *error = "--seed wants a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else if (arg == "--out-dir") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            options.run.outDir = value;
        } else if (arg == "--format") {
            if (!flagValue(args, &i, &value, error))
                return std::nullopt;
            const auto format = parseFormat(value);
            if (!format) {
                *error = "--format wants csv, json or both, got '" +
                         value + "'";
                return std::nullopt;
            }
            options.run.format = *format;
        } else if (!arg.empty() && arg[0] == '-') {
            *error = "unknown option '" + arg + "'";
            return std::nullopt;
        } else if (arg == "all") {
            options.runAll = true;
        } else {
            options.experiments.push_back(arg);
        }
    }
    if (!options.runAll && options.experiments.empty()) {
        *error = "run wants at least one experiment name (or 'all'; "
                 "see: accordion list)";
        return std::nullopt;
    }
    if (options.runAll && !options.experiments.empty()) {
        *error = "run takes either 'all' or explicit names, not both";
        return std::nullopt;
    }
    return options;
}

std::vector<const Experiment *>
resolveExperiments(const CliOptions &options, std::string *error)
{
    if (options.runAll)
        return Registry::instance().all();
    std::vector<const Experiment *> experiments;
    for (const std::string &name : options.experiments) {
        const Experiment *e = Registry::instance().find(name);
        if (!e) {
            *error = "unknown experiment '" + name +
                     "' (see: accordion list)";
            return {};
        }
        experiments.push_back(e);
    }
    return experiments;
}

int
runCli(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);

    std::string error;
    const auto options = parseCli(args, &error);
    if (!options)
        util::fatal("%s", error.c_str());

    switch (options->command) {
    case CliOptions::Command::Help:
        std::printf("%s", usage().c_str());
        return 0;

    case CliOptions::Command::List: {
        util::Table table({"experiment", "artifact", "description"});
        for (const Experiment *e : Registry::instance().all())
            table.addRow({e->name(), e->artifact(), e->description()});
        std::printf("%s", table.render().c_str());
        std::printf("\n%zu experiments; run with: accordion run "
                    "<name>... | all\n",
                    Registry::instance().size());
        return 0;
    }

    case CliOptions::Command::Run:
        break;
    }

    const auto experiments = resolveExperiments(*options, &error);
    if (experiments.empty())
        util::fatal("%s", error.c_str());

    RunContext ctx(options->run);
    for (const Experiment *e : experiments)
        e->run(ctx);
    return 0;
}

int
runLegacy(const std::string &name)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e)
        util::fatal("no experiment named '%s' is registered",
                    name.c_str());
    RunContext ctx;
    e->run(ctx);
    return 0;
}

} // namespace accordion::harness
