/**
 * @file
 * The experiment-harness core: an Experiment is one paper artifact
 * reproduction (a figure, table, section number, ablation or
 * extension), and the Registry is the process-wide catalog the
 * `accordion` CLI and the legacy bench shims dispatch through.
 *
 * Experiments self-register at static-initialization time via
 * ACCORDION_REGISTER_EXPERIMENT; the harness is built as a CMake
 * OBJECT library so no registration TU is dropped by the archive
 * linker.
 */

#ifndef ACCORDION_HARNESS_EXPERIMENT_HPP
#define ACCORDION_HARNESS_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <vector>

namespace accordion::harness {

class RunContext;

/**
 * One reproducible evaluation artifact. Implementations are
 * stateless: everything mutable (the shared AccordionSystem cache,
 * the output sink, the seed) lives in the RunContext, so one
 * Experiment instance can serve any number of runs.
 */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    /** Unique CLI name, e.g. "fig6_pareto_parsec". */
    virtual std::string name() const = 0;

    /** Paper artifact this regenerates, e.g. "Fig. 6". */
    virtual std::string artifact() const = 0;

    /** One-line description for `accordion list`. */
    virtual std::string description() const = 0;

    /** Produce the artifact: tables to stdout, series to the sink. */
    virtual void run(RunContext &ctx) const = 0;
};

/** Process-wide experiment catalog. */
class Registry
{
  public:
    /** The singleton the self-registration hooks populate. */
    static Registry &instance();

    /** Register an experiment; fatal()s on a duplicate name. */
    void add(std::unique_ptr<Experiment> experiment);

    /** Look up by CLI name; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

    /** Every registered experiment, sorted by name. */
    std::vector<const Experiment *> all() const;

    std::size_t size() const { return experiments_.size(); }

  private:
    std::vector<std::unique_ptr<Experiment>> experiments_;
};

/** Static-initialization hook used by the registration macro. */
template <typename E> struct Registrar
{
    Registrar()
    {
        Registry::instance().add(std::make_unique<E>());
    }
};

/**
 * Print the standard experiment banner (artifact + the paper's
 * reported behavior) — byte-identical to the legacy bench banner.
 */
void banner(const std::string &artifact, const std::string &paper_claim);

} // namespace accordion::harness

/** Register an Experiment subclass with the global Registry. */
#define ACCORDION_REGISTER_EXPERIMENT(cls)                               \
    static const ::accordion::harness::Registrar<cls>                    \
        accordionRegistrar_##cls;

#endif // ACCORDION_HARNESS_EXPERIMENT_HPP
