#include "experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "util/log.hpp"

namespace accordion::harness {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(std::unique_ptr<Experiment> experiment)
{
    if (find(experiment->name()))
        util::fatal("Registry: duplicate experiment name '%s'",
                    experiment->name().c_str());
    experiments_.push_back(std::move(experiment));
}

const Experiment *
Registry::find(const std::string &name) const
{
    for (const auto &e : experiments_)
        if (e->name() == name)
            return e.get();
    return nullptr;
}

std::vector<const Experiment *>
Registry::all() const
{
    std::vector<const Experiment *> sorted;
    sorted.reserve(experiments_.size());
    for (const auto &e : experiments_)
        sorted.push_back(e.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const Experiment *a, const Experiment *b) {
                  return a->name() < b->name();
              });
    return sorted;
}

void
banner(const std::string &artifact, const std::string &paper_claim)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("---------------------------------------------------"
                "-----------\n");
}

} // namespace accordion::harness
