#include "perf.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli.hpp"
#include "core/montecarlo.hpp"
#include "core/quality_profile.hpp"
#include "manycore/bsp_engine.hpp"
#include "obs/clock.hpp"
#include "obs/perf_events.hpp"
#include "perf_kernels.hpp"
#include "run_context.hpp"
#include "silencer.hpp"
#include "stats_report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

std::size_t
PerfRun::scaled(std::size_t base) const
{
    const double n = std::floor(static_cast<double>(base) * scale + 0.5);
    return n < 1.0 ? 1 : static_cast<std::size_t>(n);
}

namespace {

/**
 * The work counter every scenario bumps: substrate scenarios count
 * their iterations, experiment scenarios count one end-to-end run.
 * Keeping it non-zero everywhere guarantees harvestStats can always
 * derive a throughput rate (the snapshot invariant CI asserts).
 */
void
countItems(std::size_t n)
{
    obs::StatsRegistry::global().counter("perf.items").add(n);
}

/** Sink for values the optimizer must not elide. */
volatile double perfSink = 0.0;

/** Run one experiment through the run's shared context, silenced. */
void
runExperiment(PerfRun &run, const std::string &name)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e)
        util::fatal("perf scenario references unknown experiment '%s'",
                    name.c_str());
    StdoutSilencer silence;
    e->run(run.ctx);
    // Experiments that only touch the warmed system cache leave no
    // domain counters behind; the run itself is the work item.
    countItems(1);
}

std::vector<PerfScenario>
buildScenarios()
{
    std::vector<PerfScenario> suite;

    suite.push_back(
        {"substrate.chip_manufacture",
         "manufacture full variation chips (correlated VT/Leff maps)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(8);
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::manufactureOne(run.fixtures.factory,
                                                1 + i);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.safe_frequency",
         "safe-frequency queries against one core (batch of 1)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(5000);
             const auto &chip = run.fixtures.chip;
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::safeFrequencyOnce(chip);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.safe_frequency_batch",
         "whole-chip safe-frequency batches (288 cores per call)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(200);
             const auto &chip = run.fixtures.chip;
             std::vector<double> out(chip.numCores());
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::safeFrequenciesBatch(chip, out);
             perfSink = acc;
             countItems(n * chip.numCores());
         }});

    suite.push_back(
        {"substrate.error_rate",
         "timing-error-rate queries at the NTV operating point",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(400000);
             const auto &chip = run.fixtures.chip;
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::errorRateOnce(chip);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.error_rate_batch",
         "whole-chip timing-error-rate batches (288 cores per call)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(4000);
             const auto &chip = run.fixtures.chip;
             std::vector<double> out(chip.numCores());
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::errorRatesBatch(chip, out);
             perfSink = acc;
             countItems(n * chip.numCores());
         }});

    suite.push_back(
        {"substrate.spec_frequency_batch",
         "whole-chip speculative-frequency batches (error-rate "
         "inversion, 288 cores per call)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(4000);
             const auto &chip = run.fixtures.chip;
             std::vector<double> out(chip.numCores());
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc +=
                     kernels::speculativeFrequenciesBatch(chip, out);
             perfSink = acc;
             countItems(n * chip.numCores());
         }});

    suite.push_back(
        {"substrate.perf_model_analytic",
         "analytic execution-time estimates for a 64-core task set",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(100000);
             const manycore::AnalyticPerfModel model;
             const kernels::PerfModelInput input;
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::estimateOnce(model, run.fixtures.chip,
                                              input);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.perf_model_event",
         "event-driven execution-time estimates (same task set)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(100);
             const manycore::EventDrivenPerfModel model;
             const kernels::PerfModelInput input;
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::estimateOnce(model, run.fixtures.chip,
                                              input);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.perf_model_event_288",
         "serial event-driven estimates for the full 288-core chip",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(20);
             const manycore::EventDrivenPerfModel model;
             const kernels::PerfModelInput input(288);
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::estimateOnce(model, run.fixtures.chip,
                                              input);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.perf_model_event_parallel",
         "BSP partitioned event-driven estimates (288 cores, pooled "
         "workers)",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(20);
             // An explicit team request sized to the pool: auto
             // would bow to hardware_concurrency(), quietly turning
             // this into the serial scenario on one-core CI boxes.
             const manycore::BspPerfModel model(
                 {}, util::ThreadPool::global().size());
             const kernels::PerfModelInput input(288);
             double acc = 0.0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::estimateOnce(model, run.fixtures.chip,
                                              input);
             perfSink = acc;
             countItems(n);
         }});

    suite.push_back(
        {"substrate.core_selection",
         "variation-aware core selections over the manufactured chip",
         [](PerfRun &run) {
             const std::size_t n = run.scaled(10000);
             const manycore::PowerModel power(run.fixtures.tech);
             std::size_t acc = 0;
             for (std::size_t i = 0; i < n; ++i)
                 acc += kernels::selectOnce(run.fixtures.chip, power);
             perfSink = static_cast<double>(acc);
             countItems(n);
         }});

    suite.push_back(
        {"substrate.montecarlo",
         "Monte Carlo metric sweep over a chip sample (thread pool)",
         [](PerfRun &run) {
             const std::size_t chips = run.scaled(12);
             const core::MonteCarloEvaluator mc(run.fixtures.factory,
                                                chips);
             const std::vector<double> values = mc.values(
                 [](const vartech::VariationChip &chip) {
                     return chip.vddNtv();
                 });
             perfSink = values.empty() ? 0.0 : values.front();
             countItems(values.size());
         }});

    suite.push_back(
        {"substrate.quality_profile",
         "quality-profile measurement of the hotspot kernel",
         [](PerfRun &run) {
             const core::QualityProfile profile =
                 core::QualityProfile::measure(
                     rms::findWorkload("hotspot"));
             perfSink = profile.defaultQuality();
             countItems(1);
             (void)run;
         }});

    suite.push_back({"experiment.fig1a_operating_point",
                     "the fig1a_operating_point experiment, end to end",
                     [](PerfRun &run) {
                         runExperiment(run, "fig1a_operating_point");
                     }});

    suite.push_back({"experiment.table1_modes",
                     "the table1_modes experiment, end to end",
                     [](PerfRun &run) {
                         runExperiment(run, "table1_modes");
                     }});

    suite.push_back({"experiment.fig5_variation",
                     "the fig5_variation experiment, end to end",
                     [](PerfRun &run) {
                         runExperiment(run, "fig5_variation");
                     }});

    std::sort(suite.begin(), suite.end(),
              [](const PerfScenario &a, const PerfScenario &b) {
                  return a.name < b.name;
              });
    return suite;
}

/** True when @p name starts with @p prefix. */
bool
hasPrefix(const std::string &name, const char *prefix)
{
    const std::size_t len = std::char_traits<char>::length(prefix);
    return name.size() >= len && name.compare(0, len, prefix) == 0;
}

/**
 * Harvest the registry into a scenario record after the final
 * repetition: work counters (the pool/cache internals stay out —
 * they are plumbing, not work items), time.* phase-timer summaries,
 * the derived pool.utilization.* gauges, and — when hardware
 * counters were engaged — the hw.* PMU counters and derived
 * IPC/MPKI gauges into the record's hw section. hw.* stays out of
 * the work counters so throughput rates keep meaning items/s, not
 * cycles/s.
 */
void
harvestStats(const std::vector<obs::StatEntry> &stats,
             obs::ScenarioRecord *record)
{
    for (const obs::StatEntry &e : stats) {
        // Zero-count entries are stats other scenarios registered;
        // reset() keeps the registration, so skip them here.
        switch (e.kind) {
        case obs::StatKind::Counter:
            if (e.count > 0 && hasPrefix(e.name, "hw."))
                record->hwCounters[e.name] = e.count;
            else if (e.count > 0 && !hasPrefix(e.name, "pool.") &&
                     !hasPrefix(e.name, "syscache."))
                record->counters[e.name] = e.count;
            break;
        case obs::StatKind::Gauge:
            if (hasPrefix(e.name, "hw."))
                record->hwDerived[e.name] = e.value;
            else if (hasPrefix(e.name, "pool.utilization."))
                record->gauges[e.name] = e.value;
            break;
        case obs::StatKind::Distribution:
            if (e.count > 0 && hasPrefix(e.name, "time."))
                record->timers[e.name] = obs::summarize(e);
            break;
        }
    }
    const double best_s = record->minWallNs() * 1e-9;
    if (best_s > 0.0)
        for (const auto &[name, count] : record->counters)
            record->throughput[name] =
                static_cast<double>(count) / best_s;
}

/** Human spelling of one delta row's wall times. */
std::string
formatMs(double ns)
{
    return util::format("%.3f ms", ns * 1e-6);
}

} // namespace

const std::vector<PerfScenario> &
perfScenarios()
{
    static const std::vector<PerfScenario> suite = buildScenarios();
    return suite;
}

std::string
scenarioSuiteTable()
{
    util::Table table({"scenario", "description"});
    for (const PerfScenario &s : perfScenarios())
        table.addRow({s.name, s.description});
    return table.render();
}

std::size_t
CompareReport::count(DeltaStatus status) const
{
    std::size_t n = 0;
    for (const ScenarioDelta &d : deltas)
        if (d.status == status)
            ++n;
    return n;
}

const char *
deltaStatusName(DeltaStatus status)
{
    switch (status) {
    case DeltaStatus::WithinNoise:
        return "within_noise";
    case DeltaStatus::Improvement:
        return "improvement";
    case DeltaStatus::Regression:
        return "regression";
    case DeltaStatus::MissingInNew:
        return "missing_in_new";
    case DeltaStatus::OnlyInNew:
        return "only_in_new";
    }
    return "unknown";
}

CompareReport
compareSnapshots(const obs::PerfSnapshot &base,
                 const obs::PerfSnapshot &next, double threshold_pct)
{
    CompareReport report;
    report.thresholdPct = threshold_pct;
    // v1 and v2 interoperate (v2 only *added* the hw section); only
    // a schema this build cannot parse at all is an error. The
    // parser normally rejects those first — this guards snapshots
    // constructed in-process.
    if (!obs::perfSnapshotSchemaSupported(base.schema) ||
        !obs::perfSnapshotSchemaSupported(next.schema)) {
        std::string message = "unsupported schema: base '";
        message += base.schema;
        message += "' vs new '";
        message += next.schema;
        message += "'";
        report.error = message;
        return report;
    }
    if (base.scale != next.scale) {
        report.error = util::format(
            "scale mismatch: base %g vs new %g (re-record both "
            "snapshots at one --scale)",
            base.scale, next.scale);
        return report;
    }

    for (const obs::ScenarioRecord &b : base.scenarios) {
        ScenarioDelta delta;
        delta.name = b.name;
        delta.baseNs = b.minWallNs();
        const obs::ScenarioRecord *n = next.find(b.name);
        if (!n) {
            delta.status = DeltaStatus::MissingInNew;
            report.deltas.push_back(delta);
            continue;
        }
        delta.newNs = n->minWallNs();
        // Derived hardware metrics present in both snapshots ride
        // along as warn-only context (IPC drop, MPKI jump) for the
        // wall-time verdict; they never gate on their own.
        for (const auto &[key, base_value] : b.hwDerived) {
            auto it = n->hwDerived.find(key);
            if (it != n->hwDerived.end())
                delta.hwDeltas.push_back(
                    {key, base_value, it->second});
        }
        const double diff = delta.newNs - delta.baseNs;
        delta.deltaPct =
            delta.baseNs > 0.0 ? diff / delta.baseNs * 100.0 : 0.0;
        if (std::abs(diff) <= kAbsNoiseFloorNs ||
            std::abs(delta.deltaPct) <= threshold_pct)
            delta.status = DeltaStatus::WithinNoise;
        else
            delta.status = diff > 0.0 ? DeltaStatus::Regression
                                      : DeltaStatus::Improvement;
        report.deltas.push_back(delta);
    }
    for (const obs::ScenarioRecord &n : next.scenarios) {
        if (base.find(n.name))
            continue;
        ScenarioDelta delta;
        delta.name = n.name;
        delta.newNs = n.minWallNs();
        delta.status = DeltaStatus::OnlyInNew;
        report.deltas.push_back(delta);
    }
    return report;
}

std::string
compareTable(const CompareReport &report)
{
    if (!report.error.empty())
        return "perf compare error: " + report.error + "\n";

    util::Table table({"scenario", "base", "new", "delta", "status"});
    for (const ScenarioDelta &d : report.deltas) {
        const bool comparable = d.status == DeltaStatus::WithinNoise ||
            d.status == DeltaStatus::Improvement ||
            d.status == DeltaStatus::Regression;
        table.addRow(
            {d.name,
             d.status == DeltaStatus::OnlyInNew ? "-"
                                                : formatMs(d.baseNs),
             d.status == DeltaStatus::MissingInNew
                 ? "-"
                 : formatMs(d.newNs),
             comparable ? util::format("%+.1f%%", d.deltaPct) : "-",
             deltaStatusName(d.status)});
    }
    std::string hw_lines;
    for (const ScenarioDelta &d : report.deltas)
        for (const HwDelta &h : d.hwDeltas) {
            const double pct =
                h.base != 0.0
                    ? (h.next - h.base) / h.base * 100.0
                    : 0.0;
            hw_lines += util::format(
                "hw (warn-only): %-32s %s %.4g -> %.4g (%+.1f%%)\n",
                d.name.c_str(), h.name.c_str(), h.base, h.next, pct);
        }
    return table.render() +
        util::format("\n%zu scenarios: %zu regression(s), %zu "
                     "improvement(s), %zu within noise (threshold "
                     "%.1f%%, floor %.1f ms), %zu missing, %zu new\n",
                     report.deltas.size(), report.regressions(),
                     report.count(DeltaStatus::Improvement),
                     report.count(DeltaStatus::WithinNoise),
                     report.thresholdPct, kAbsNoiseFloorNs * 1e-6,
                     report.missing(),
                     report.count(DeltaStatus::OnlyInNew)) +
        hw_lines;
}

std::string
verdictJson(const CompareReport &report)
{
    std::string error_json = "null";
    if (!report.error.empty()) {
        error_json = "\"";
        error_json += obs::jsonEscape(report.error);
        error_json += "\"";
    }
    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"accordion-perf-compare-v1\",\n"
        << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n"
        << "  \"error\": " << error_json << ",\n"
        << "  \"threshold_pct\": "
        << obs::jsonNumber(report.thresholdPct) << ",\n"
        << "  \"abs_noise_floor_ns\": "
        << obs::jsonNumber(kAbsNoiseFloorNs) << ",\n"
        << "  \"regressions\": " << report.regressions() << ",\n"
        << "  \"missing\": " << report.missing() << ",\n"
        << "  \"scenarios\": [";
    for (std::size_t i = 0; i < report.deltas.size(); ++i) {
        const ScenarioDelta &d = report.deltas[i];
        out << (i ? ",\n" : "\n") << "    {\"name\": \""
            << obs::jsonEscape(d.name)
            << "\", \"base_ns\": " << obs::jsonNumber(d.baseNs)
            << ", \"new_ns\": " << obs::jsonNumber(d.newNs)
            << ", \"delta_pct\": " << obs::jsonNumber(d.deltaPct)
            << ", \"status\": \"" << deltaStatusName(d.status)
            << "\"}";
    }
    out << (report.deltas.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::optional<obs::PerfSnapshot>
recordSnapshot(const PerfOptions &options, std::string *error)
{
    std::vector<const PerfScenario *> selected;
    for (const PerfScenario &s : perfScenarios()) {
        if (options.only.empty() ||
            std::find(options.only.begin(), options.only.end(),
                      s.name) != options.only.end())
            selected.push_back(&s);
    }
    for (const std::string &name : options.only) {
        const bool known = std::any_of(
            selected.begin(), selected.end(),
            [&](const PerfScenario *s) { return s->name == name; });
        if (!known) {
            *error = "unknown perf scenario '" + name +
                     "'; the suite is:\n" + scenarioSuiteTable();
            return std::nullopt;
        }
    }

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    const bool was_enabled = registry.enabled();
    registry.setEnabled(true);

    // Hardware counters are strictly opt-in per record call: engage
    // on --events, and drop any engagement a previous caller left
    // behind otherwise, so an eventless snapshot can never pick up
    // hw stats (the degradation tests assert exactly this).
    if (options.events)
        obs::hwEngage();
    else
        obs::hwDisengage();

    // Experiment scenarios run against a throwaway output directory;
    // the CSVs they write are a side effect, not the product.
    const std::string out_dir =
        (std::filesystem::temp_directory_path() /
         util::format("accordion-perf-%d", static_cast<int>(getpid())))
            .string();
    RunContext::Options run_options;
    run_options.seed = options.seed;
    run_options.threads = options.threads;
    run_options.outDir = out_dir;
    RunContext ctx(run_options);
    kernels::SubstrateFixtures fixtures(options.seed);
    PerfRun run{ctx, fixtures, options.scale};

    obs::PerfSnapshot snapshot;
    snapshot.environment = obs::captureEnvironment();
    snapshot.seed = options.seed;
    snapshot.threads = util::ThreadPool::global().size();
    snapshot.reps = options.reps;
    snapshot.scale = options.scale;

    for (const PerfScenario *scenario : selected) {
        obs::ScenarioRecord record;
        record.name = scenario->name;
        record.warmup = options.warmup;
        const std::size_t total = options.warmup + options.reps;
        for (std::size_t rep = 0; rep < total; ++rep) {
            registry.reset();
            // Sample hw before t0 and publish after the wall read:
            // the timed section stays exactly what v1 measured even
            // with counters engaged.
            obs::HwSample hw0;
            const bool hw_on =
                options.events && obs::hwSampleNow(&hw0);
            const std::uint64_t t0 = obs::nowNs();
            scenario->body(run);
            const std::uint64_t wall = obs::nowNs() - t0;
            if (hw_on) {
                obs::HwSample hw1;
                if (obs::hwSampleNow(&hw1))
                    obs::hwPublishDelta("scenario", hw0, hw1);
            }
            deriveUtilization(registry, wall);
            if (rep >= options.warmup)
                record.wallNs.push_back(static_cast<double>(wall));
        }
        harvestStats(registry.snapshot(), &record);
        std::fprintf(stderr, "perf: %-32s min %s over %zu rep(s)\n",
                     scenario->name.c_str(),
                     formatMs(record.minWallNs()).c_str(),
                     record.wallNs.size());
        snapshot.scenarios.push_back(std::move(record));
    }

    registry.reset();
    registry.setEnabled(was_enabled);
    std::error_code ec;
    std::filesystem::remove_all(out_dir, ec);
    return snapshot;
}

std::string
defaultSnapshotPath()
{
    for (std::size_t n = 0;; ++n) {
        const std::string path =
            util::format("BENCH_%zu.json", n);
        if (!std::filesystem::exists(path))
            return path;
    }
}

int
runPerfRecord(const PerfOptions &options)
{
    if (options.list) {
        std::printf("%s", scenarioSuiteTable().c_str());
        std::printf("\n%zu scenarios; record with: accordion perf "
                    "[--scenario NAME]...\n",
                    perfScenarios().size());
        return 0;
    }

    std::string error;
    const auto snapshot = recordSnapshot(options, &error);
    if (!snapshot)
        util::fatal("%s", error.c_str());

    const std::string path =
        options.out.empty() ? defaultSnapshotPath() : options.out;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open '%s' for writing", path.c_str());
    out << obs::toJson(*snapshot);
    out.flush();
    if (!out.good())
        util::fatal("failed writing '%s'", path.c_str());
    std::printf("wrote %s (%zu scenarios, %zu reps, scale %g)\n",
                path.c_str(), snapshot->scenarios.size(),
                snapshot->reps, snapshot->scale);
    return 0;
}

namespace {

/** Load + parse one snapshot file; exits 2-style via *error. */
bool
loadSnapshot(const std::string &path, obs::PerfSnapshot *out,
             std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!parsePerfSnapshot(text.str(), out, error)) {
        *error = path + ": " + *error;
        return false;
    }
    return true;
}

} // namespace

int
runPerfCompare(const CompareOptions &options)
{
    obs::PerfSnapshot base;
    obs::PerfSnapshot next;
    std::string error;
    if (!loadSnapshot(options.basePath, &base, &error) ||
        !loadSnapshot(options.newPath, &next, &error)) {
        std::fprintf(stderr, "perf compare: %s\n", error.c_str());
        return 2;
    }

    const CompareReport report =
        compareSnapshots(base, next, options.thresholdPct);
    // Humans read the table on stderr; stdout carries the verdict
    // JSON so `accordion perf compare ... | python3 -m json.tool`
    // just works.
    std::fprintf(stderr, "%s", compareTable(report).c_str());
    std::printf("%s", verdictJson(report).c_str());
    if (!report.error.empty())
        return 2;
    if (!report.ok())
        return options.warnOnly ? 0 : 1;
    return 0;
}

} // namespace accordion::harness
