/**
 * @file
 * Per-invocation state shared by every experiment of a run: the
 * seed, the thread-pool size, the output sink, and — the expensive
 * part — a lazily-built cache of AccordionSystem instances keyed by
 * their full Config. `accordion run all` manufactures the chip and
 * measures each kernel's quality profile once, not once per
 * experiment.
 */

#ifndef ACCORDION_HARNESS_RUN_CONTEXT_HPP
#define ACCORDION_HARNESS_RUN_CONTEXT_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/accordion.hpp"
#include "result_sink.hpp"

namespace accordion::harness {

/** One experiment run's shared state. */
class RunContext
{
  public:
    struct Options
    {
        std::uint64_t seed = 12345; //!< manufacturing seed
        /** Thread-pool size; 0 leaves the global pool untouched
         *  (ACCORDION_THREADS / hardware_concurrency). */
        std::size_t threads = 0;
        std::string outDir = "bench_out";
        OutputFormat format = OutputFormat::Csv;
    };

    /** Legacy-compatible defaults (seed 12345, bench_out/, csv). */
    RunContext();
    explicit RunContext(Options options);

    const Options &options() const { return options_; }
    std::uint64_t seed() const { return options_.seed; }
    const ResultSink &sink() const { return sink_; }

    /** Open an output series under this run's dir and format. */
    Series series(const std::string &name,
                  std::vector<std::string> header) const
    {
        return sink_.series(name, std::move(header));
    }

    /**
     * The shared default-config system of this run (the run's seed,
     * chip 0 — what every legacy bench built for itself). Built on
     * first use, cached for the rest of the run.
     */
    core::AccordionSystem &system();

    /** A shared system for an arbitrary config, cached by key(). */
    core::AccordionSystem &system(const core::AccordionSystem::Config &config);

    /** How many distinct systems this context has built so far. */
    std::size_t systemBuilds() const { return systems_.size(); }

  private:
    Options options_;
    ResultSink sink_;
    std::map<std::string, std::unique_ptr<core::AccordionSystem>>
        systems_;
};

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_RUN_CONTEXT_HPP
