#include "run_context.hpp"

#include "util/thread_pool.hpp"

namespace accordion::harness {

RunContext::RunContext() : RunContext(Options{}) {}

RunContext::RunContext(Options options)
    : options_(std::move(options)),
      sink_(options_.outDir, options_.format)
{
    if (options_.threads != 0)
        util::ThreadPool::setGlobalThreads(options_.threads);
}

core::AccordionSystem &
RunContext::system()
{
    core::AccordionSystem::Config config;
    config.seed = options_.seed;
    return system(config);
}

core::AccordionSystem &
RunContext::system(const core::AccordionSystem::Config &config)
{
    const std::string key = config.key();
    auto it = systems_.find(key);
    if (it == systems_.end())
        it = systems_
                 .emplace(key,
                          std::make_unique<core::AccordionSystem>(
                              config))
                 .first;
    return *it->second;
}

} // namespace accordion::harness
