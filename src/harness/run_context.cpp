#include "run_context.hpp"

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/thread_pool.hpp"

namespace accordion::harness {

RunContext::RunContext() : RunContext(Options{}) {}

RunContext::RunContext(Options options)
    : options_(std::move(options)),
      sink_(options_.outDir, options_.format)
{
    if (options_.threads != 0)
        util::ThreadPool::setGlobalThreads(options_.threads);
}

core::AccordionSystem &
RunContext::system()
{
    core::AccordionSystem::Config config;
    config.seed = options_.seed;
    return system(config);
}

core::AccordionSystem &
RunContext::system(const core::AccordionSystem::Config &config)
{
    const std::string key = config.key();
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    auto it = systems_.find(key);
    if (it == systems_.end()) {
        registry.counter("syscache.misses").inc();
        std::unique_ptr<core::AccordionSystem> built;
        {
            // One phase span per cache miss: `run all` should show
            // exactly one expensive build, then hits.
            obs::ScopedTimer timer("syscache.build");
            built = std::make_unique<core::AccordionSystem>(config);
        }
        it = systems_.emplace(key, std::move(built)).first;
    } else {
        registry.counter("syscache.hits").inc();
    }
    return *it->second;
}

} // namespace accordion::harness
