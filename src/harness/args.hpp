/**
 * @file
 * Strict numeric argument parsing for the CLI layer. The legacy
 * strtol(..., nullptr, 10) pattern silently accepted trailing
 * garbage ("--threads 4x" ran with 4 threads); these helpers
 * validate with an end pointer and reject any non-integer suffix,
 * empty strings, signs where a count is expected, and overflow.
 */

#ifndef ACCORDION_HARNESS_ARGS_HPP
#define ACCORDION_HARNESS_ARGS_HPP

#include <cstdint>
#include <string>

namespace accordion::harness {

/**
 * Parse a strictly positive decimal integer (a thread count).
 * Returns false — leaving *out untouched — on empty input, any
 * non-digit character, a leading sign, zero, or overflow.
 */
bool parsePositiveCount(const std::string &text, std::size_t *out);

/**
 * Parse a non-negative decimal integer (a seed). Same strictness
 * as parsePositiveCount, but zero is allowed.
 */
bool parseSeed(const std::string &text, std::uint64_t *out);

/**
 * Parse a non-negative real number (a regression threshold in
 * percent). Plain decimal or scientific notation; rejects signs,
 * trailing garbage, inf/nan spellings and overflow.
 */
bool parseNonNegativeReal(const std::string &text, double *out);

/** Same strictness, but zero is rejected (a scale factor). */
bool parsePositiveReal(const std::string &text, double *out);

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_ARGS_HPP
