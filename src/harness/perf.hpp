/**
 * @file
 * The `accordion perf` subcommand: longitudinal performance
 * telemetry over a curated scenario suite.
 *
 *   accordion perf [--reps R] [--warmup W] [--scale X]
 *                  [--out FILE] [--scenario NAME]... [--list]
 *                  [--threads N] [--seed S] [--events]
 *   accordion perf compare BASE.json NEW.json [--threshold PCT]
 *                  [--warn-only]
 *
 * Record mode runs every scenario — in-process reruns of the
 * substrate hot paths shared with bench/micro_substrates.cpp
 * (perf_kernels.hpp) plus a representative subset of the harness
 * experiments — with W unrecorded warmup repetitions and R timed
 * repetitions, and writes an "accordion-perf-snapshot-v2" JSON
 * (obs/snapshot.hpp) to --out, defaulting to the next free
 * BENCH_<n>.json in the working directory. With --events each
 * scenario additionally carries hardware PMU counters (instructions,
 * cycles, IPC, MPKI via obs/perf_events.hpp) in its "hw" section;
 * without it — or when perf_event_open is unavailable — "hw" is
 * null and nothing else changes.
 *
 * Compare mode diffs two snapshots scenario-by-scenario on
 * min-of-reps wall time with a relative threshold plus an absolute
 * noise floor, prints a human verdict table and a machine-readable
 * verdict JSON, and exits non-zero on a regression (or a scenario
 * missing from the new snapshot) unless --warn-only. v1 snapshots
 * compare against v2 transparently; hardware IPC/MPKI deltas are
 * reported as warn-only lines and never gate.
 *
 * The compare engine is exposed as plain functions over parsed
 * snapshots so tests drive every verdict path in-process.
 */

#ifndef ACCORDION_HARNESS_PERF_HPP
#define ACCORDION_HARNESS_PERF_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/snapshot.hpp"

namespace accordion::harness {

class RunContext;
namespace kernels {
struct SubstrateFixtures;
}

/** Shared state a scenario body measures against. */
struct PerfRun
{
    RunContext &ctx; //!< experiment scenarios run through this
    kernels::SubstrateFixtures &fixtures; //!< substrate scenarios
    double scale = 1.0;

    /** @p base iterations scaled by --scale, never below one. */
    std::size_t scaled(std::size_t base) const;
};

/** One curated perf scenario. */
struct PerfScenario
{
    std::string name;
    std::string description;
    std::function<void(PerfRun &)> body;
};

/** The curated suite, sorted by name. */
const std::vector<PerfScenario> &perfScenarios();

/**
 * The rendered scenario table (name + description rows): the one
 * source `perf --list`, `profile --list`, and the unknown-scenario
 * error messages all print, so they can never drift apart.
 */
std::string scenarioSuiteTable();

/** `accordion perf` record-mode options. */
struct PerfOptions
{
    std::size_t reps = 3;
    std::size_t warmup = 1;
    double scale = 1.0; //!< scenario size multiplier (CI uses < 1)
    std::uint64_t seed = 12345;
    std::size_t threads = 0; //!< 0 = leave the global pool alone
    std::string out; //!< empty = next free BENCH_<n>.json
    std::vector<std::string> only; //!< scenario filter (empty = all)
    bool list = false; //!< print the suite instead of running
    bool events = false; //!< collect hardware PMU counters (--events)
};

/** `accordion perf compare` options. */
struct CompareOptions
{
    std::string basePath;
    std::string newPath;
    double thresholdPct = 5.0; //!< relative noise floor, percent
    bool warnOnly = false; //!< report but exit 0 on regression
};

/** Verdict of one scenario's base-vs-new wall-time delta. */
enum class DeltaStatus
{
    WithinNoise, //!< |delta| inside the threshold / noise floor
    Improvement, //!< faster beyond the noise band
    Regression,  //!< slower beyond the noise band
    MissingInNew, //!< present in base, absent in new (a failure)
    OnlyInNew,   //!< new scenario, nothing to compare (informational)
};

/** CLI spelling of a status ("regression", "within_noise", ...). */
const char *deltaStatusName(DeltaStatus status);

/** One derived hardware metric present in both snapshots. */
struct HwDelta
{
    std::string name; //!< full gauge name ("hw.scenario.ipc")
    double base = 0.0;
    double next = 0.0;
};

/** One scenario's comparison outcome. */
struct ScenarioDelta
{
    std::string name;
    double baseNs = 0.0; //!< min-of-reps wall in the base snapshot
    double newNs = 0.0;  //!< min-of-reps wall in the new snapshot
    double deltaPct = 0.0;
    DeltaStatus status = DeltaStatus::WithinNoise;
    /** IPC/MPKI deltas, warn-only: informational lines in the
     *  human table, never part of the gate verdict. Empty unless
     *  both snapshots carry the same derived hw gauges. */
    std::vector<HwDelta> hwDeltas;
};

/** The full comparison outcome. */
struct CompareReport
{
    /** Non-empty = the snapshots are not comparable (unsupported
     *  schema or scale mismatch); deltas are empty then. */
    std::string error;
    double thresholdPct = 0.0;
    std::vector<ScenarioDelta> deltas;

    std::size_t count(DeltaStatus status) const;
    std::size_t regressions() const
    {
        return count(DeltaStatus::Regression);
    }
    std::size_t missing() const
    {
        return count(DeltaStatus::MissingInNew);
    }

    /** Gate verdict: comparable, no regression, nothing missing. */
    bool ok() const
    {
        return error.empty() && regressions() == 0 && missing() == 0;
    }
};

/**
 * Deltas below this absolute wall-time difference are always
 * within noise, whatever the relative threshold says — sub-0.2 ms
 * scenario timings are scheduler jitter, not signal.
 */
inline constexpr double kAbsNoiseFloorNs = 2e5;

/**
 * Compare two parsed snapshots on min-of-reps wall time per
 * scenario. Regression/improvement requires the delta to exceed
 * both @p threshold_pct relatively and kAbsNoiseFloorNs
 * absolutely.
 */
CompareReport compareSnapshots(const obs::PerfSnapshot &base,
                               const obs::PerfSnapshot &next,
                               double threshold_pct);

/** The human verdict table (one row per scenario). */
std::string compareTable(const CompareReport &report);

/** The machine verdict ("accordion-perf-compare-v1" JSON). */
std::string verdictJson(const CompareReport &report);

/**
 * Run the (possibly filtered) suite and build a snapshot. Returns
 * nullopt — with a message in *error — on an unknown --scenario
 * name. Enables the global stats registry for the duration.
 */
std::optional<obs::PerfSnapshot>
recordSnapshot(const PerfOptions &options, std::string *error);

/** First BENCH_<n>.json (n = 0, 1, ...) not yet present in cwd. */
std::string defaultSnapshotPath();

/** Record-mode entry point: run, write, report. */
int runPerfRecord(const PerfOptions &options);

/** Compare-mode entry point: load, compare, print, gate. */
int runPerfCompare(const CompareOptions &options);

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_PERF_HPP
