#include "result_sink.hpp"

#include <filesystem>

#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {

const char *
formatName(OutputFormat format)
{
    switch (format) {
    case OutputFormat::Csv:
        return "csv";
    case OutputFormat::Json:
        return "json";
    case OutputFormat::Both:
        return "both";
    }
    util::panic("formatName: bad format %d", static_cast<int>(format));
}

std::optional<OutputFormat>
parseFormat(const std::string &text)
{
    if (text == "csv")
        return OutputFormat::Csv;
    if (text == "json")
        return OutputFormat::Json;
    if (text == "both")
        return OutputFormat::Both;
    return std::nullopt;
}

namespace {

/** Is the cell a valid JSON number literal as-is? */
bool
isJsonNumber(const std::string &cell)
{
    std::size_t i = 0;
    if (i < cell.size() && cell[i] == '-')
        ++i;
    std::size_t digits = 0;
    while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') {
        ++i;
        ++digits;
    }
    if (digits == 0)
        return false;
    if (i < cell.size() && cell[i] == '.') {
        ++i;
        digits = 0;
        while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') {
            ++i;
            ++digits;
        }
        if (digits == 0)
            return false;
    }
    if (i < cell.size() && (cell[i] == 'e' || cell[i] == 'E')) {
        ++i;
        if (i < cell.size() && (cell[i] == '+' || cell[i] == '-'))
            ++i;
        digits = 0;
        while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') {
            ++i;
            ++digits;
        }
        if (digits == 0)
            return false;
    }
    return i == cell.size();
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += util::format("\\u%04x", ch);
            else
                out += ch;
        }
    }
    out += '"';
    return out;
}

} // namespace

Series::Series(const std::string &dir, const std::string &name,
               std::vector<std::string> header, OutputFormat format)
    : header_(std::move(header))
{
    std::filesystem::create_directories(dir);
    if (format == OutputFormat::Csv || format == OutputFormat::Both)
        csv_.emplace(dir + "/" + name + ".csv", header_);
    if (format == OutputFormat::Json || format == OutputFormat::Both) {
        jsonPath_ = dir + "/" + name + ".jsonl";
        json_.emplace(jsonPath_);
        if (!*json_)
            util::fatal("Series: cannot open '%s' for writing",
                        jsonPath_.c_str());
    }
}

void
Series::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != header_.size())
        util::panic("Series::addRow: %zu cells, expected %zu",
                    cells.size(), header_.size());
    if (csv_)
        csv_->addRow(cells);
    if (json_) {
        std::string line = "{";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                line += ',';
            line += jsonString(header_[i]);
            line += ':';
            line += isJsonNumber(cells[i]) ? cells[i]
                                           : jsonString(cells[i]);
        }
        line += "}\n";
        *json_ << line;
        if (!*json_)
            util::fatal("Series: write error on '%s' (disk full?)",
                        jsonPath_.c_str());
    }
}

void
Series::addRow(const std::vector<double> &cells)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double v : cells)
        formatted.push_back(util::format("%.8g", v));
    addRow(formatted);
}

ResultSink::ResultSink(std::string out_dir, OutputFormat format)
    : outDir_(std::move(out_dir)), format_(format)
{
}

Series
ResultSink::series(const std::string &name,
                   std::vector<std::string> header) const
{
    return Series(outDir_, name, std::move(header), format_);
}

} // namespace accordion::harness
