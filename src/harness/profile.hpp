/**
 * @file
 * The `accordion profile` subcommand: run one perf scenario under
 * the sampling profiler (obs/profiler.hpp) and report where the
 * time went.
 *
 *   accordion profile <scenario> [--folded FILE] [--reps R]
 *                     [--interval US] [--scale X] [--top N]
 *                     [--threads N] [--seed S] [--trace FILE]
 *                     [--metrics-out FILE] [--metrics-interval MS]
 *                     [--events] [--list]
 *
 * The scenario names are the perf suite's (accordion perf --list);
 * profiling reuses the exact same bodies and fixtures, so a hot
 * spot found here is a hot spot of the tracked perf scenario, not
 * of a profiling-only approximation.
 *
 * Output: a top-N self-time table on stdout, a per-scope hardware
 * counter table next to it under --events (instructions, cycles,
 * IPC, MPKI per instrumented scope via obs/perf_events.hpp; silently
 * absent when perf_event_open is unavailable), the run's stats table
 * (wait-state attribution included) below it, an optional
 * flamegraph-compatible folded-stacks file (--folded), an optional
 * Chrome trace with the samples injected as instant events
 * (--trace), and optional live Prometheus telemetry while the run
 * is in flight (--metrics-out).
 */

#ifndef ACCORDION_HARNESS_PROFILE_HPP
#define ACCORDION_HARNESS_PROFILE_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace accordion::harness {

/** `accordion profile` options. */
struct ProfileOptions
{
    std::string scenario; //!< a perf suite scenario name
    std::string folded; //!< folded-stacks output path; empty = none
    std::uint64_t intervalUs = 1000; //!< sampling period (CPU time)
    std::size_t reps = 10; //!< profiled repetitions (1 warmup first)
    double scale = 1.0; //!< scenario size multiplier
    std::size_t threads = 0; //!< 0 = leave the global pool alone
    std::uint64_t seed = 12345;
    std::size_t top = 20; //!< self-time table rows
    std::string trace; //!< Chrome-trace path; empty = off
    std::string metricsOut; //!< Prometheus file; empty = off
    std::uint64_t metricsIntervalMs = 500;
    bool list = false; //!< print the scenario suite and exit
    bool events = false; //!< collect hardware PMU counters (--events)
};

/** Entry point: run, sample, symbolize, report. */
int runProfile(const ProfileOptions &options);

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_PROFILE_HPP
