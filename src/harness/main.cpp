/**
 * @file
 * The `accordion` binary: one CLI over every registered experiment.
 */

#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    return accordion::harness::runCli(argc, argv);
}
