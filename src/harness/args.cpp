#include "args.hpp"

#include <cerrno>
#include <cstdlib>

namespace accordion::harness {

namespace {

bool
parseDecimal(const std::string &text, unsigned long long *out)
{
    if (text.empty() || text[0] < '0' || text[0] > '9')
        return false; // no signs, no leading whitespace
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

} // namespace

bool
parsePositiveCount(const std::string &text, std::size_t *out)
{
    unsigned long long value = 0;
    if (!parseDecimal(text, &value) || value == 0 ||
        value > SIZE_MAX)
        return false;
    *out = static_cast<std::size_t>(value);
    return true;
}

bool
parseSeed(const std::string &text, std::uint64_t *out)
{
    unsigned long long value = 0;
    if (!parseDecimal(text, &value))
        return false;
    *out = value;
    return true;
}

bool
parseNonNegativeReal(const std::string &text, double *out)
{
    if (text.empty() ||
        !((text[0] >= '0' && text[0] <= '9') || text[0] == '.'))
        return false; // no signs, no leading whitespace, no inf/nan
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        value < 0.0)
        return false;
    *out = value;
    return true;
}

bool
parsePositiveReal(const std::string &text, double *out)
{
    double value = 0.0;
    if (!parseNonNegativeReal(text, &value) || value <= 0.0)
        return false;
    *out = value;
    return true;
}

} // namespace accordion::harness
