#include "stats_report.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/snapshot.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {

void
deriveUtilization(obs::StatsRegistry &registry,
                  std::uint64_t elapsed_ns)
{
    if (elapsed_ns == 0)
        return;
    const std::string prefix = "pool.worker";
    const std::string suffix = ".busy_ns";
    double busy_total = 0.0;
    std::size_t workers = 0;
    for (const obs::StatEntry &e : registry.snapshot()) {
        if (e.kind != obs::StatKind::Counter ||
            e.name.size() <= prefix.size() + suffix.size() ||
            e.name.compare(0, prefix.size(), prefix) != 0 ||
            e.name.compare(e.name.size() - suffix.size(),
                           suffix.size(), suffix) != 0)
            continue;
        // "pool.worker3.busy_ns" -> "worker3"
        const std::string worker = e.name.substr(
            5, e.name.size() - 5 - suffix.size());
        registry.gauge("pool.utilization." + worker)
            .set(static_cast<double>(e.count) /
                 static_cast<double>(elapsed_ns));
        busy_total += static_cast<double>(e.count);
        ++workers;
    }
    if (workers > 0)
        registry.gauge("pool.utilization.mean")
            .set(busy_total / (static_cast<double>(workers) *
                               static_cast<double>(elapsed_ns)));
}

void
writeRunSummary(const std::string &path,
                const RunContext::Options &run,
                const std::string &trace, std::size_t threads,
                const std::vector<ExperimentSummary> &summaries)
{
    std::error_code ec;
    std::filesystem::create_directories(run.outDir, ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open '%s' for writing", path.c_str());
    std::string trace_json = "null";
    if (!trace.empty()) {
        trace_json = "\"";
        trace_json += obs::jsonEscape(trace);
        trace_json += "\"";
    }
    out << "{\n"
        << "  \"schema\": \"accordion-run-summary-v1\",\n"
        << "  \"seed\": " << run.seed << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"format\": \"" << formatName(run.format) << "\",\n"
        << "  \"trace\": " << trace_json << ",\n"
        << "  \"environment\": {";
    // Environment metadata makes summary entries joinable with perf
    // snapshots (same keys as accordion-perf-snapshot-v1).
    bool first = true;
    for (const auto &[key, value] : obs::captureEnvironment()) {
        out << (first ? "\n" : ",\n") << "    \""
            << obs::jsonEscape(key) << "\": \""
            << obs::jsonEscape(value) << "\"";
        first = false;
    }
    out << "\n  },\n"
        << "  \"experiments\": [";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const ExperimentSummary &s = summaries[i];
        out << (i ? ",\n" : "\n")
            << "    {\"name\": \"" << obs::jsonEscape(s.name)
            << "\", \"elapsed_ns\": " << s.elapsedNs
            << ", \"stats\": " << obs::jsonObject(s.stats) << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out.good())
        util::fatal("failed writing '%s'", path.c_str());
}

namespace {

/**
 * Thin an ascending-sorted reservoir so each kept sample stands for
 * `ratio` times as many raw samples as before: keep every ratio-th
 * element (offset-centred), which preserves the empirical quantile
 * function. Never thins a non-empty reservoir to empty.
 */
void
thinSamples(std::vector<double> *samples, std::uint64_t ratio)
{
    if (ratio <= 1 || samples->empty())
        return;
    std::size_t out = 0;
    for (std::size_t i = static_cast<std::size_t>(ratio / 2);
         i < samples->size(); i += static_cast<std::size_t>(ratio))
        (*samples)[out++] = (*samples)[i];
    if (out == 0) {
        // Fewer samples than the ratio: keep the median.
        (*samples)[0] = (*samples)[samples->size() / 2];
        out = 1;
    }
    samples->resize(out);
}

} // namespace

std::map<std::string, obs::StatEntry>
mergedStats(const std::vector<ExperimentSummary> &summaries)
{
    std::map<std::string, obs::StatEntry> merged;
    for (const ExperimentSummary &s : summaries) {
        for (const obs::StatEntry &e : s.stats) {
            auto it = merged.find(e.name);
            if (it == merged.end()) {
                merged.emplace(e.name, e);
                continue;
            }
            obs::StatEntry &m = it->second;
            switch (e.kind) {
            case obs::StatKind::Counter:
                m.count += e.count;
                break;
            case obs::StatKind::Gauge:
                m.value = e.value; // level: keep the latest
                break;
            case obs::StatKind::Distribution:
                if (!e.count)
                    break;
                if (!m.count) {
                    m = e;
                    break;
                }
                m.min = std::min(m.min, e.min);
                m.max = std::max(m.max, e.max);
                m.count += e.count;
                m.sum += e.sum;
                {
                    // Sources decimated at different strides weight
                    // their retained samples differently; thin both
                    // to the common (coarser) stride before pooling
                    // so merged quantiles stay unbiased.
                    const std::uint64_t target =
                        std::max(m.stride, e.stride);
                    std::vector<double> other = e.samples;
                    thinSamples(&m.samples, target / m.stride);
                    thinSamples(&other, target / e.stride);
                    m.stride = target;
                    m.samples.insert(m.samples.end(), other.begin(),
                                     other.end());
                    // Keep the invariant: reservoirs stay sorted so
                    // quantile reads (and later thinning) are valid.
                    std::sort(m.samples.begin(), m.samples.end());
                }
                break;
            }
        }
    }
    return merged;
}

std::string
statsTable(const std::vector<ExperimentSummary> &summaries,
           std::uint64_t total_elapsed_ns)
{
    std::map<std::string, obs::StatEntry> merged =
        mergedStats(summaries);
    // Whole-run utilization from the summed busy counters.
    if (total_elapsed_ns > 0) {
        double busy_total = 0.0;
        std::size_t workers = 0;
        for (auto &[name, e] : merged) {
            if (e.kind != obs::StatKind::Counter ||
                name.compare(0, 11, "pool.worker") != 0 ||
                name.size() <= 19 ||
                name.compare(name.size() - 8, 8, ".busy_ns") != 0)
                continue;
            const std::string worker =
                name.substr(5, name.size() - 5 - 8);
            obs::StatEntry &util_entry =
                merged["pool.utilization." + worker];
            util_entry.name = "pool.utilization." + worker;
            util_entry.kind = obs::StatKind::Gauge;
            util_entry.value = static_cast<double>(e.count) /
                static_cast<double>(total_elapsed_ns);
            busy_total += static_cast<double>(e.count);
            ++workers;
        }
        if (workers > 0) {
            obs::StatEntry &mean = merged["pool.utilization.mean"];
            mean.name = "pool.utilization.mean";
            mean.kind = obs::StatKind::Gauge;
            mean.value = busy_total /
                (static_cast<double>(workers) *
                 static_cast<double>(total_elapsed_ns));
        }
    }

    util::Table table({"stat", "kind", "value"});
    for (const auto &[name, e] : merged) {
        switch (e.kind) {
        case obs::StatKind::Counter:
            table.addRow({name, "counter",
                          util::format("%llu",
                                       static_cast<unsigned long long>(
                                           e.count))});
            break;
        case obs::StatKind::Gauge:
            table.addRow({name, "gauge",
                          util::format("%.4g", e.value)});
            break;
        case obs::StatKind::Distribution:
            table.addRow(
                {name, "distribution",
                 util::format("n=%llu total=%.3f ms mean=%.3f ms "
                              "min=%.3f ms p50=%.3f ms p95=%.3f ms "
                              "p99=%.3f ms max=%.3f ms",
                              static_cast<unsigned long long>(e.count),
                              e.sum / 1e6, e.mean() / 1e6, e.min / 1e6,
                              e.p50() / 1e6, e.p95() / 1e6,
                              e.p99() / 1e6, e.max / 1e6)});
            break;
        }
    }
    return util::format("\nrun stats (%zu experiments, %.2f s "
                        "wall):\n",
                        summaries.size(), total_elapsed_ns * 1e-9) +
        table.render();
}

} // namespace accordion::harness
