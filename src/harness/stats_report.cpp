#include "stats_report.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/perf_events.hpp"
#include "obs/snapshot.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::harness {

void
deriveUtilization(obs::StatsRegistry &registry,
                  std::uint64_t elapsed_ns)
{
    if (elapsed_ns == 0)
        return;
    const std::string prefix = "pool.worker";
    const std::string suffix = ".busy_ns";
    double busy_total = 0.0;
    std::size_t workers = 0;
    for (const obs::StatEntry &e : registry.snapshot()) {
        if (e.kind != obs::StatKind::Counter ||
            e.name.size() <= prefix.size() + suffix.size() ||
            e.name.compare(0, prefix.size(), prefix) != 0 ||
            e.name.compare(e.name.size() - suffix.size(),
                           suffix.size(), suffix) != 0)
            continue;
        // "pool.worker3.busy_ns" -> "worker3"
        const std::string worker = e.name.substr(
            5, e.name.size() - 5 - suffix.size());
        registry.gauge("pool.utilization." + worker)
            .set(static_cast<double>(e.count) /
                 static_cast<double>(elapsed_ns));
        busy_total += static_cast<double>(e.count);
        ++workers;
    }
    if (workers > 0)
        registry.gauge("pool.utilization.mean")
            .set(busy_total / (static_cast<double>(workers) *
                               static_cast<double>(elapsed_ns)));
}

void
writeRunSummary(const std::string &path,
                const RunContext::Options &run,
                const std::string &trace, std::size_t threads,
                const std::vector<ExperimentSummary> &summaries)
{
    std::error_code ec;
    std::filesystem::create_directories(run.outDir, ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open '%s' for writing", path.c_str());
    std::string trace_json = "null";
    if (!trace.empty()) {
        trace_json = "\"";
        trace_json += obs::jsonEscape(trace);
        trace_json += "\"";
    }
    out << "{\n"
        << "  \"schema\": \"accordion-run-summary-v1\",\n"
        << "  \"seed\": " << run.seed << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"format\": \"" << formatName(run.format) << "\",\n"
        << "  \"trace\": " << trace_json << ",\n"
        << "  \"environment\": {";
    // Environment metadata makes summary entries joinable with perf
    // snapshots (same keys as accordion-perf-snapshot-v1).
    bool first = true;
    for (const auto &[key, value] : obs::captureEnvironment()) {
        out << (first ? "\n" : ",\n") << "    \""
            << obs::jsonEscape(key) << "\": \""
            << obs::jsonEscape(value) << "\"";
        first = false;
    }
    // Hardware-counter availability: always present so a summary
    // says whether hw.* stats are real counts, degraded, or off.
    out << (first ? "\n" : ",\n")
        << "    \"perf_events\": " << obs::hwAvailabilityJson();
    out << "\n  },\n"
        << "  \"experiments\": [";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const ExperimentSummary &s = summaries[i];
        out << (i ? ",\n" : "\n")
            << "    {\"name\": \"" << obs::jsonEscape(s.name)
            << "\", \"elapsed_ns\": " << s.elapsedNs
            << ", \"stats\": " << obs::jsonObject(s.stats) << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out.good())
        util::fatal("failed writing '%s'", path.c_str());
}

std::map<std::string, obs::StatEntry>
mergedStats(const std::vector<ExperimentSummary> &summaries)
{
    std::map<std::string, obs::StatEntry> merged;
    for (const ExperimentSummary &s : summaries) {
        for (const obs::StatEntry &e : s.stats) {
            auto it = merged.find(e.name);
            if (it == merged.end())
                merged.emplace(e.name, e);
            else
                obs::mergeStatEntry(&it->second, e);
        }
    }
    return merged;
}

namespace {

/** True for "pool.workerN<suffix>" (N = one or more digits). */
bool
isPerWorkerName(const std::string &name, const char *suffix)
{
    const std::string prefix = "pool.worker";
    const std::size_t suffix_len =
        std::char_traits<char>::length(suffix);
    if (name.size() <= prefix.size() + suffix_len ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, suffix) !=
            0)
        return false;
    for (std::size_t i = prefix.size();
         i < name.size() - suffix_len; ++i)
        if (name[i] < '0' || name[i] > '9')
            return false;
    return true;
}

/**
 * Rows the table folds into the one-line worker summary; the JSON
 * outputs keep the full per-worker detail.
 */
bool
isPerWorkerRow(const std::string &name, const obs::StatEntry &e)
{
    if (e.kind == obs::StatKind::Counter)
        return isPerWorkerName(name, ".busy_ns") ||
            isPerWorkerName(name, ".idle_ns");
    if (e.kind == obs::StatKind::Gauge)
        return name.compare(0, 23, "pool.utilization.worker") == 0;
    return false;
}

} // namespace

std::string
statsTable(const std::vector<ExperimentSummary> &summaries,
           std::uint64_t total_elapsed_ns)
{
    std::map<std::string, obs::StatEntry> merged =
        mergedStats(summaries);
    // Whole-run utilization from the summed busy counters. The
    // per-worker fan-out collapses to one summary row below; wide
    // pools would otherwise drown the table in near-identical rows.
    std::vector<double> worker_util;
    if (total_elapsed_ns > 0) {
        double busy_total = 0.0;
        for (auto &[name, e] : merged) {
            if (e.kind != obs::StatKind::Counter ||
                !isPerWorkerName(name, ".busy_ns"))
                continue;
            worker_util.push_back(
                static_cast<double>(e.count) /
                static_cast<double>(total_elapsed_ns));
            busy_total += static_cast<double>(e.count);
        }
        if (!worker_util.empty()) {
            obs::StatEntry &mean = merged["pool.utilization.mean"];
            mean.name = "pool.utilization.mean";
            mean.kind = obs::StatKind::Gauge;
            mean.value = busy_total /
                (static_cast<double>(worker_util.size()) *
                 static_cast<double>(total_elapsed_ns));
        }
    }
    std::sort(worker_util.begin(), worker_util.end());

    util::Table table({"stat", "kind", "value"});
    if (!worker_util.empty())
        table.addRow(
            {"pool.utilization.workers", "summary",
             util::format("n=%zu min=%.4g p50=%.4g max=%.4g",
                          worker_util.size(), worker_util.front(),
                          worker_util[worker_util.size() / 2],
                          worker_util.back())});
    for (const auto &[name, e] : merged) {
        if (isPerWorkerRow(name, e))
            continue;
        switch (e.kind) {
        case obs::StatKind::Counter:
            table.addRow({name, "counter",
                          util::format("%llu",
                                       static_cast<unsigned long long>(
                                           e.count))});
            break;
        case obs::StatKind::Gauge:
            table.addRow({name, "gauge",
                          util::format("%.4g", e.value)});
            break;
        case obs::StatKind::Distribution:
            table.addRow(
                {name, "distribution",
                 util::format("n=%llu total=%.3f ms mean=%.3f ms "
                              "min=%.3f ms p50=%.3f ms p95=%.3f ms "
                              "p99=%.3f ms max=%.3f ms",
                              static_cast<unsigned long long>(e.count),
                              e.sum / 1e6, e.mean() / 1e6, e.min / 1e6,
                              e.p50() / 1e6, e.p95() / 1e6,
                              e.p99() / 1e6, e.max / 1e6)});
            break;
        }
    }
    return util::format("\nrun stats (%zu experiments, %.2f s "
                        "wall):\n",
                        summaries.size(), total_elapsed_ns * 1e-9) +
        table.render();
}

} // namespace accordion::harness
