/**
 * @file
 * The `accordion` command line: one driver for every experiment.
 *
 *   accordion list
 *   accordion run <name>... [--threads N] [--seed S]
 *                           [--out-dir DIR] [--format csv|json|both]
 *                           [--stats auto|on|off] [--trace FILE]
 *                           [--metrics-out FILE]
 *                           [--metrics-interval MS] [--events]
 *   accordion run all [...]
 *   accordion perf [--reps R] [--warmup W] [--scale X] [--out FILE]
 *                  [--scenario NAME]... [--list]
 *   accordion perf compare BASE.json NEW.json [--threshold PCT]
 *                  [--warn-only]
 *   accordion profile <scenario> [--folded FILE] [--reps R] [...]
 *
 * Parsing is separated from execution (and from fatal()) so the
 * test suite can exercise every error path in-process.
 */

#ifndef ACCORDION_HARNESS_CLI_HPP
#define ACCORDION_HARNESS_CLI_HPP

#include <optional>
#include <string>
#include <vector>

#include "experiment.hpp"
#include "perf.hpp"
#include "profile.hpp"
#include "run_context.hpp"

namespace accordion::harness {

/** Where the end-of-run stats table goes (`--stats`). */
enum class StatsMode
{
    /** csv/both runs print it to stdout (the legacy bytes); json
     *  runs move it to stderr so stdout stays machine-parseable. */
    Auto,
    On,  //!< always, to stderr
    Off, //!< never
};

/** A parsed command line. */
struct CliOptions
{
    enum class Command
    {
        Help, //!< print usage
        List, //!< enumerate registered experiments
        Run,  //!< run the named experiments (or all)
        Perf, //!< record a performance snapshot
        PerfCompare, //!< compare two snapshots
        Profile, //!< sample one perf scenario
    };

    Command command = Command::Help;
    bool runAll = false;
    std::vector<std::string> experiments;
    RunContext::Options run;
    StatsMode stats = StatsMode::Auto;
    /** Chrome-trace output path (`--trace`); empty = tracing off. */
    std::string trace;
    /** Prometheus exposition path (`--metrics-out`); empty = off. */
    std::string metricsOut;
    std::uint64_t metricsIntervalMs = 500; //!< `--metrics-interval`
    /** Collect hardware PMU counters during run (`--events`). */
    bool events = false;

    PerfOptions perf; //!< Command::Perf
    CompareOptions compare; //!< Command::PerfCompare
    ProfileOptions profile; //!< Command::Profile
};

/** The usage text `accordion help` prints. */
std::string usage();

/**
 * Parse an argument vector (without argv[0]). On error returns
 * nullopt and stores a one-line message in *error.
 */
std::optional<CliOptions> parseCli(const std::vector<std::string> &args,
                                   std::string *error);

/**
 * Resolve the parsed experiment names against the Registry, in
 * registry (sorted) order for `run all` and in command-line order
 * otherwise. On an unknown name returns an empty vector and stores
 * a message in *error.
 */
std::vector<const Experiment *>
resolveExperiments(const CliOptions &options, std::string *error);

/** Full CLI entry point (the accordion binary's main). */
int runCli(int argc, char **argv);

/**
 * Entry point of the legacy one-binary-per-figure shims: run one
 * experiment with legacy-compatible defaults (the global thread
 * pool as already sized by bench::initThreads, seed 12345, CSVs
 * under bench_out/). Output is byte-identical to the pre-harness
 * binaries.
 */
int runLegacy(const std::string &name);

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_CLI_HPP
