/**
 * @file
 * The substrate hot-path micro-scenario bodies, shared between the
 * google-benchmark microbenchmarks (bench/micro_substrates.cpp) and
 * the `accordion perf` suite (perf.cpp): chip manufacture, timing-
 * model queries, the performance models, core selection and the RMS
 * kernels. Keeping one definition per body guarantees the two
 * harnesses measure the same code — a perf snapshot regression is
 * reproducible under google-benchmark and vice versa.
 *
 * Everything here is header-only and stateless; the fixtures struct
 * bundles the expensive shared state (technology + factory + one
 * manufactured chip) so it is built once, outside any timed region.
 */

#ifndef ACCORDION_HARNESS_PERF_KERNELS_HPP
#define ACCORDION_HARNESS_PERF_KERNELS_HPP

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/core_selection.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "rms/workload.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::harness::kernels {

/** The core / operating point the timing-query bodies probe. */
inline constexpr std::size_t kTimingCore = 17;
inline constexpr double kTimingVdd = 0.55;
inline constexpr double kTimingFreqHz = 0.7e9;

/**
 * Shared expensive state of the substrate scenarios. Non-copyable:
 * the factory holds a reference to the technology member.
 */
struct SubstrateFixtures
{
    explicit SubstrateFixtures(std::uint64_t seed = 12345)
        : tech(vartech::Technology::makeItrs11nm()),
          factory(tech, vartech::ChipFactory::Params{}, seed),
          chip(factory.make(0))
    {
    }

    SubstrateFixtures(const SubstrateFixtures &) = delete;
    SubstrateFixtures &operator=(const SubstrateFixtures &) = delete;

    vartech::Technology tech;
    vartech::ChipFactory factory;
    vartech::VariationChip chip;
};

/** Manufacture one chip; returns its NTV supply point. */
inline double
manufactureOne(const vartech::ChipFactory &factory, std::uint64_t id)
{
    return factory.make(id).vddNtv();
}

/**
 * One safe-frequency query at the probe operating point, routed
 * through the production batch API (batch of 1) so the perf
 * scenarios exercise the same code path the consumers use.
 */
inline double
safeFrequencyOnce(const vartech::VariationChip &chip)
{
    double out = 0.0;
    chip.safeFrequencies(kTimingVdd, std::span<double>(&out, 1),
                         kTimingCore);
    return out;
}

/**
 * One timing-error-rate query at the NTV operating point, the way
 * the pareto / speculative scans issue it: against the chip's
 * hoisted per-core delay statistics, so only the CDF math is
 * measured (batch of 1 through the production batch API).
 */
inline double
errorRateOnce(const vartech::VariationChip &chip)
{
    double out = 0.0;
    chip.errorRates(kTimingFreqHz, std::span<double>(&out, 1),
                    kTimingCore);
    return out;
}

/**
 * Whole-chip batch bodies: one call answers the query for every
 * core. @p out must be sized chip.numCores(); reused across
 * iterations so the timed region measures the kernel, not the
 * allocator. Each returns a value derived from the batch so the
 * compiler cannot discard the work.
 */
inline double
errorRatesBatch(const vartech::VariationChip &chip,
                std::span<double> out)
{
    chip.errorRates(kTimingFreqHz, out);
    return out[kTimingCore];
}

inline double
safeFrequenciesBatch(const vartech::VariationChip &chip,
                     std::span<double> out)
{
    chip.safeFrequencies(kTimingVdd, out);
    return out[kTimingCore];
}

inline double
speculativeFrequenciesBatch(const vartech::VariationChip &chip,
                            std::span<double> out)
{
    chip.frequenciesForErrorRate(1e-8, out);
    return out[kTimingCore];
}

/**
 * The n-core / 50k-instruction task set both harnesses model (64
 * cores by default; the event-engine scenarios use the full 288).
 */
struct PerfModelInput
{
    explicit PerfModelInput(std::size_t n = 64)
    {
        cores.resize(n);
        std::iota(cores.begin(), cores.end(), std::size_t{0});
        tasks.numTasks = n;
        tasks.instrPerTask = 50000;
    }

    std::vector<std::size_t> cores;
    manycore::TaskSet tasks;
    manycore::WorkloadTraits traits;
};

/** One execution-time estimate; returns the predicted seconds. */
inline double
estimateOnce(const manycore::PerfModel &model,
             const vartech::VariationChip &chip,
             const PerfModelInput &input)
{
    return model
        .estimate(chip.geometry(), input.cores, 0.5e9, input.tasks,
                  input.traits)
        .seconds;
}

/** One variation-aware core selection; returns the chosen count. */
inline std::size_t
selectOnce(const vartech::VariationChip &chip,
           const manycore::PowerModel &power)
{
    core::CoreSelector selector(chip, power);
    return selector.selectCores(128).size();
}

/** One RMS kernel run at its default input; returns problem size. */
inline double
kernelOnce(const rms::Workload &workload)
{
    rms::RunConfig config;
    config.input = workload.defaultInput();
    config.threads = workload.defaultThreads();
    return workload.run(config).problemSize;
}

} // namespace accordion::harness::kernels

#endif // ACCORDION_HARNESS_PERF_KERNELS_HPP
