/**
 * @file
 * Structured result emission for experiments. A ResultSink owns the
 * output directory and format policy; each named Series an
 * experiment opens mirrors one row-emission API into the formats
 * the run asked for:
 *
 *  - csv  — `<out-dir>/<name>.csv`, byte-identical to the legacy
 *           bench CSVs (the golden suite depends on this),
 *  - json — `<out-dir>/<name>.jsonl`, one JSON object per row with
 *           the header cells as keys (numeric-looking cells are
 *           emitted as JSON numbers),
 *  - both — both files.
 *
 * Human-readable ASCII tables remain the experiment's own stdout
 * (util::Table), exactly as the legacy benches printed them.
 */

#ifndef ACCORDION_HARNESS_RESULT_SINK_HPP
#define ACCORDION_HARNESS_RESULT_SINK_HPP

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace accordion::harness {

/** File formats a run can emit. */
enum class OutputFormat
{
    Csv,  //!< legacy-compatible CSV only (the default)
    Json, //!< newline-delimited JSON only
    Both, //!< CSV and NDJSON side by side
};

/** CLI spelling of a format. */
const char *formatName(OutputFormat format);

/** Parse a --format value; nullopt on anything unknown. */
std::optional<OutputFormat> parseFormat(const std::string &text);

/**
 * One named output series. Movable; the files are flushed, checked
 * and closed on destruction (CsvWriter fatal()s on write errors).
 */
class Series
{
  public:
    Series(const std::string &dir, const std::string &name,
           std::vector<std::string> header, OutputFormat format);

    /** Append one row of preformatted cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Append one row of doubles (formatted with %.8g). */
    void addRow(const std::vector<double> &cells);

    Series(Series &&) = default;
    Series &operator=(Series &&) = default;

  private:
    std::vector<std::string> header_;
    std::string jsonPath_;
    std::optional<util::CsvWriter> csv_;
    std::optional<std::ofstream> json_;
};

/** Factory for Series under one (out-dir, format) policy. */
class ResultSink
{
  public:
    ResultSink(std::string out_dir, OutputFormat format);

    /** Open `<out-dir>/<name>.{csv,jsonl}`, creating directories. */
    Series series(const std::string &name,
                  std::vector<std::string> header) const;

    const std::string &outDir() const { return outDir_; }
    OutputFormat format() const { return format_; }

  private:
    std::string outDir_;
    OutputFormat format_;
};

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_RESULT_SINK_HPP
