/**
 * @file
 * Redirect stdout to /dev/null for a scope. The perf and profile
 * subcommands rerun experiment bodies that print their figures to
 * stdout; both must keep stdout clean for their own reports.
 */

#ifndef ACCORDION_HARNESS_SILENCER_HPP
#define ACCORDION_HARNESS_SILENCER_HPP

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace accordion::harness {

/** RAII stdout silencer (fd-level, so child printf is caught too). */
class StdoutSilencer
{
  public:
    StdoutSilencer()
    {
        std::fflush(stdout);
        saved_ = ::dup(1);
        const int null = ::open("/dev/null", O_WRONLY);
        if (saved_ >= 0 && null >= 0)
            ::dup2(null, 1);
        if (null >= 0)
            ::close(null);
    }

    StdoutSilencer(const StdoutSilencer &) = delete;
    StdoutSilencer &operator=(const StdoutSilencer &) = delete;

    ~StdoutSilencer()
    {
        std::fflush(stdout);
        if (saved_ >= 0) {
            ::dup2(saved_, 1);
            ::close(saved_);
        }
    }

  private:
    int saved_ = -1;
};

} // namespace accordion::harness

#endif // ACCORDION_HARNESS_SILENCER_HPP
