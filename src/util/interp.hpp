/**
 * @file
 * Piecewise-linear interpolation over sampled curves. Quality
 * profiles (Q vs. problem size) and error-rate curves (Perr vs. f)
 * are sampled at discrete points and interrogated at arbitrary
 * abscissae during pareto-front extraction.
 */

#ifndef ACCORDION_UTIL_INTERP_HPP
#define ACCORDION_UTIL_INTERP_HPP

#include <cstddef>
#include <vector>

namespace accordion::util {

/**
 * Piecewise-linear curve y(x) over strictly increasing knots.
 * Evaluation clamps outside the knot range (flat extrapolation).
 */
class PiecewiseLinear
{
  public:
    PiecewiseLinear() = default;

    /**
     * Construct from paired samples.
     * @pre xs strictly increasing, xs.size() == ys.size() >= 1.
     */
    PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

    /** Evaluate at x with clamping extrapolation. */
    double operator()(double x) const;

    /** Number of knots. */
    std::size_t size() const { return xs_.size(); }

    /** True if the curve has no knots. */
    bool empty() const { return xs_.empty(); }

    /** Smallest knot abscissa. @pre !empty(). */
    double minX() const { return xs_.front(); }

    /** Largest knot abscissa. @pre !empty(). */
    double maxX() const { return xs_.back(); }

    /**
     * Solve y(x) = target for x on a monotonically increasing curve
     * by bisection over the knot span; clamps to the span if the
     * target lies outside the curve's range.
     */
    double inverse(double target) const;

    const std::vector<double> &xs() const { return xs_; }
    const std::vector<double> &ys() const { return ys_; }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

} // namespace accordion::util

#endif // ACCORDION_UTIL_INTERP_HPP
