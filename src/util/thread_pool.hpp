/**
 * @file
 * Fixed-size thread pool for the embarrassingly parallel sweep
 * layer: Monte Carlo chip samples, per-problem-size operating-point
 * searches, and design-space ablations.
 *
 * Design rules (all in service of bit-identical results at any
 * thread count):
 *  - No work stealing and no per-thread accumulation: parallelFor()
 *    hands out index ranges from a shared counter and every
 *    iteration writes only to its own pre-sized output slot, so
 *    aggregation order never depends on thread scheduling.
 *  - Randomness inside an iteration must come from a stream keyed
 *    by the iteration index (Rng::streamAt), never from a shared
 *    generator.
 *  - Nested parallelFor() calls from inside a worker run the inner
 *    range serially inline — the pool never deadlocks on itself and
 *    the iteration set is identical either way.
 *
 * The global pool is sized by the ACCORDION_THREADS environment
 * variable (or std::thread::hardware_concurrency() when unset);
 * benches additionally expose a --threads flag via
 * bench::initThreads().
 */

#ifndef ACCORDION_UTIL_THREAD_POOL_HPP
#define ACCORDION_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/stats.hpp"

namespace accordion::util {

/**
 * A reusable spinning barrier for small fixed-size worker teams
 * whose phases are far shorter than a mutex/condvar round trip
 * (the BSP engine's epochs, microseconds apiece).
 *
 * Phase-counter design: arrivals increment a counter; the last
 * arrival resets it and bumps the phase, releasing the spinners.
 * The release/acquire pair on the phase word makes every write
 * before arriveAndWait() visible to every thread after it. Spinners
 * yield after a short burst so oversubscribed teams (more parties
 * than hardware threads) still make progress.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block (spin) until all parties have arrived. */
    void
    arriveAndWait()
    {
        waitImpl(nullptr);
    }

    /**
     * arriveAndWait() that also reports how long this party spent
     * waiting for the stragglers, in obs::nowNs() nanoseconds (0
     * for the last arrival). The wait-state attribution path: only
     * call it when instrumentation is on — it pays clock reads the
     * plain overload never does.
     */
    std::uint64_t
    arriveAndWaitTimed()
    {
        std::uint64_t waited = 0;
        waitImpl(&waited);
        return waited;
    }

    /** Team size this barrier synchronizes. */
    std::size_t parties() const { return parties_; }

  private:
    void
    waitImpl(std::uint64_t *waited_ns)
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            const std::uint64_t t0 =
                waited_ns ? obs::nowNs() : 0;
            std::size_t spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase) {
                if (++spins > 128) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
            if (waited_ns)
                *waited_ns = obs::nowNs() - t0;
        }
    }

    const std::size_t parties_;
    std::atomic<std::size_t> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
};

/**
 * Fixed-size pool of worker threads with a FIFO task queue.
 *
 * Threads are spawned once at construction and joined at
 * destruction; there is no dynamic resizing and no work stealing.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 is clamped to 1. A pool of
     *        size 1 still spawns one worker for submit(), but
     *        parallelFor() short-circuits to an inline serial loop.
     */
    explicit ThreadPool(std::size_t threads);

    /** Drains nothing: pending tasks are completed before join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue one task; the future reports completion and
     * propagates any exception the task throws.
     *
     * Submitting from inside a worker thread is allowed (the task
     * is queued normally), but blocking on the returned future from
     * a worker of the *same* pool can deadlock once all workers
     * wait on each other — prefer parallelFor(), which runs nested
     * work inline instead.
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Apply @p fn to every index of [begin, end), spread across the
     * pool; the calling thread participates. Blocks until the whole
     * range is done.
     *
     * Exception policy: the first exception thrown by any iteration
     * is captured and rethrown on the calling thread; remaining
     * un-started iterations are abandoned (the range is not
     * guaranteed to be fully visited on failure).
     *
     * Determinism: iterations may run in any order and on any
     * thread, so @p fn must write only to state owned by its index
     * (e.g. `out[i] = ...` into a pre-sized vector). Under that
     * contract results are bit-identical for every pool size.
     *
     * Called from inside a worker thread (a nested parallelFor), the
     * range runs serially inline on that worker.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

    /** True when the calling thread is one of this pool's workers. */
    static bool inWorker();

    /**
     * Pool size requested by the environment: ACCORDION_THREADS if
     * set to a positive integer, else hardware_concurrency(), else 1.
     */
    static std::size_t defaultThreads();

    /**
     * The process-wide pool used by the sweep layer. Created on
     * first use with defaultThreads() workers.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p threads workers (the
     * bench --threads knob and the determinism tests). Must not be
     * called while work is in flight on the global pool.
     */
    static void setGlobalThreads(std::size_t threads);

  private:
    void workerLoop(std::size_t index);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool shutdown_ = false;

    // Instrumentation handles, bound at construction: disengaged
    // (single-branch no-ops) unless the global stats registry was
    // enabled when the pool was built. Workers additionally emit
    // per-task and lifetime spans whenever the global trace writer
    // is open. None of it feeds back into scheduling or results.
    obs::Counter tasks_; //!< pool.tasks
    obs::Counter parallelFors_; //!< pool.parallel_fors
    std::vector<obs::Counter> workerBusyNs_; //!< pool.workerN.busy_ns
    std::vector<obs::Counter> workerIdleNs_; //!< pool.workerN.idle_ns
};

/**
 * parallelFor on the global pool — the entry point the sweep loops
 * use. Serial when the global pool has one worker.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn);

} // namespace accordion::util

#endif // ACCORDION_UTIL_THREAD_POOL_HPP
