#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "log.hpp"
#include "obs/clock.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"

namespace accordion::util {

namespace {

/** Set while the thread is executing inside a worker loop. */
thread_local bool t_in_worker = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = std::max<std::size_t>(1, threads);
    // Registration is get-or-create, so the pool recreated by
    // setGlobalThreads lands on the same cells (disengaged no-op
    // handles when the registry is disabled).
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    tasks_ = registry.counter("pool.tasks");
    parallelFors_ = registry.counter("pool.parallel_fors");
    registry.gauge("pool.workers").set(static_cast<double>(n));
    workerBusyNs_.reserve(n);
    workerIdleNs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workerBusyNs_.push_back(registry.counter(
            "pool.worker" + std::to_string(i) + ".busy_ns"));
        workerIdleNs_.push_back(registry.counter(
            "pool.worker" + std::to_string(i) + ".idle_ns"));
    }
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_in_worker = true;
    obs::setCurrentThreadName("worker-" + std::to_string(index));
    // Open this worker's hardware-counter set up front (no-op when
    // counters are disengaged) so even its first task is counted.
    obs::hwAttachCurrentThread();
    const std::uint64_t born_ns = obs::nowNs();
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            // The busy/idle split: time spent parked on the queue
            // is this worker's idle (wait-state) share. Clock reads
            // only when the counters are live, so an uninstrumented
            // pool pays nothing.
            if (workerIdleNs_[index] &&
                !(shutdown_ || !queue_.empty())) {
                const std::uint64_t w0 = obs::nowNs();
                cv_.wait(lock, [this] {
                    return shutdown_ || !queue_.empty();
                });
                workerIdleNs_[index].add(obs::nowNs() - w0);
            } else {
                cv_.wait(lock, [this] {
                    return shutdown_ || !queue_.empty();
                });
            }
            if (queue_.empty())
                break; // shutdown with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        obs::TraceWriter *trace = obs::TraceWriter::global();
        if (tasks_ || trace) {
            // Hardware-event delta per task (two branches when the
            // counters are disengaged). Tasks are chunky — whole
            // parallelFor chunk bodies — so the per-endpoint read
            // cost stays far off the hot path.
            ACC_SCOPED_HW("pool.task");
            const std::uint64_t t0 = obs::nowNs();
            task();
            const std::uint64_t t1 = obs::nowNs();
            tasks_.inc();
            workerBusyNs_[index].add(t1 > t0 ? t1 - t0 : 0);
            if (trace)
                trace->span("pool", "task", t0, t1);
        } else {
            ACC_SCOPED_HW("pool.task");
            task();
        }
    }
    // A lifetime span per worker guarantees every lane appears in
    // the trace even when a worker never won a task. Workers exit
    // at pool destruction/recreation; the CLI recreates the pool
    // before closing the trace to flush these.
    if (obs::TraceWriter *trace = obs::TraceWriter::global())
        trace->span("pool", "worker", born_ns, obs::nowNs());
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::move(fn));
    std::future<void> future = task->get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_)
            panic("ThreadPool::submit: pool is shutting down");
        queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    if (end <= begin)
        return;
    parallelFors_.inc();
    const std::size_t count = end - begin;
    // Serial fast paths: trivial ranges, a one-worker pool, and
    // nested calls from inside a worker (running inline avoids
    // deadlocking the pool on itself). The iteration set is the
    // same either way, so results do not change.
    if (count == 1 || size() <= 1 || inWorker()) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
        std::size_t grain = 1;
        const std::function<void(std::size_t)> *fn = nullptr;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
        std::atomic<std::size_t> pending{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
    };
    auto shared = std::make_shared<Shared>();
    shared->next = begin;
    shared->end = end;
    shared->fn = &fn;

    const std::size_t helpers = std::min(size(), count) - 1;
    // Chunked claiming bounds the shared-counter traffic; the chunk
    // size only affects scheduling, never results (each index still
    // writes its own slot).
    shared->grain =
        std::max<std::size_t>(1, count / ((helpers + 1) * 8));
    shared->pending = helpers;

    auto body = [](const std::shared_ptr<Shared> &s) {
        while (!s->failed.load(std::memory_order_relaxed)) {
            const std::size_t lo =
                s->next.fetch_add(s->grain, std::memory_order_relaxed);
            if (lo >= s->end)
                break;
            const std::size_t hi = std::min(s->end, lo + s->grain);
            try {
                for (std::size_t i = lo; i < hi; ++i) {
                    if (s->failed.load(std::memory_order_relaxed))
                        break;
                    (*s->fn)(i);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(s->errorMutex);
                if (!s->error)
                    s->error = std::current_exception();
                s->failed = true;
            }
        }
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_)
            panic("ThreadPool::parallelFor: pool is shutting down");
        for (std::size_t h = 0; h < helpers; ++h)
            queue_.emplace_back([shared, body] {
                body(shared);
                if (shared->pending.fetch_sub(1) == 1) {
                    std::lock_guard<std::mutex> done(shared->doneMutex);
                    shared->doneCv.notify_all();
                }
            });
    }
    cv_.notify_all();

    // The caller works the range too, then waits for the helpers.
    body(shared);
    {
        std::unique_lock<std::mutex> done(shared->doneMutex);
        shared->doneCv.wait(done,
                            [&] { return shared->pending == 0; });
    }
    if (shared->error)
        std::rethrow_exception(shared->error);
}

bool
ThreadPool::inWorker()
{
    return t_in_worker;
}

std::size_t
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("ACCORDION_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
        warn("ACCORDION_THREADS='%s' is not a positive integer; "
             "ignoring", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultThreads());
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(std::size_t threads)
{
    std::unique_ptr<ThreadPool> fresh =
        std::make_unique<ThreadPool>(threads);
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool = std::move(fresh);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &fn)
{
    ThreadPool::global().parallelFor(begin, end, fn);
}

} // namespace accordion::util
