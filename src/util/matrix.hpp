/**
 * @file
 * Minimal dense linear algebra: a row-major matrix plus the Cholesky
 * factorization used to sample correlated Gaussian variation fields
 * (VARIUS methodology, Section 3.2 of DESIGN.md).
 */

#ifndef ACCORDION_UTIL_MATRIX_HPP
#define ACCORDION_UTIL_MATRIX_HPP

#include <cstddef>
#include <vector>

namespace accordion::util {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (unchecked in release builds). */
    double &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Matrix-vector product. @pre v.size() == cols(). */
    std::vector<double> multiply(const std::vector<double> &v) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Cholesky factorization A = L L^T of a symmetric positive
 * (semi-)definite matrix.
 *
 * A tiny jitter is added to the diagonal when a pivot dips slightly
 * negative from rounding — correlation matrices built from the
 * spherical model are PSD but can lose definiteness numerically.
 *
 * @param a Symmetric input matrix (only the lower triangle is read).
 * @return Lower-triangular factor L.
 */
Matrix choleskyFactor(const Matrix &a);

} // namespace accordion::util

#endif // ACCORDION_UTIL_MATRIX_HPP
