/**
 * @file
 * Minimal dense linear algebra: a row-major matrix plus the Cholesky
 * factorization used to sample correlated Gaussian variation fields
 * (VARIUS methodology, Section 3.2 of DESIGN.md).
 */

#ifndef ACCORDION_UTIL_MATRIX_HPP
#define ACCORDION_UTIL_MATRIX_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accordion::util {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (unchecked in release builds). */
    double &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Matrix-vector product. @pre v.size() == cols(). */
    std::vector<double> multiply(const std::vector<double> &v) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Structure-aware packed storage of a lower-triangular factor.
 *
 * A Cholesky factor of a short-range correlation matrix (the
 * spherical model with phi = 0.1 zeroes most site pairs) is sparse:
 * each row holds a handful of nonzeros between its first coupled
 * column and the diagonal. This class packs exactly the nonzero
 * entries per row (CSR layout, columns ascending), so a
 * matrix-vector product skips both the all-zero upper triangle and
 * the structural zeros of the lower one.
 *
 * Bit-compatibility: multiplyInto() accumulates the surviving terms
 * in the same ascending-column order as the dense matvec, and the
 * skipped terms are exact +0.0 contributions, so the result is
 * bit-identical to Matrix::multiply on the unpacked factor — golden
 * chip realizations do not move.
 */
class TriangularFactor
{
  public:
    /** Empty factor (size 0); assign from a packed one. */
    TriangularFactor() = default;

    /**
     * Pack a dense lower-triangular matrix. Entries above the
     * diagonal are ignored; entries that are exactly 0.0 are
     * dropped from storage.
     */
    explicit TriangularFactor(const Matrix &lower);

    /** Dimension n of the n x n factor. */
    std::size_t size() const { return n_; }

    /** Stored nonzeros (diagonal included). */
    std::size_t nonZeros() const { return values_.size(); }

    /** Stored share of the full dense n x n matrix, in [0, 1]. */
    double density() const;

    /**
     * y = L v into a caller-owned buffer (resized to n); @p v and
     * @p out must not alias. @pre v.size() == size().
     */
    void multiplyInto(const std::vector<double> &v,
                      std::vector<double> &out) const;

    /** Allocating convenience wrapper over multiplyInto(). */
    std::vector<double> multiply(const std::vector<double> &v) const;

  private:
    std::size_t n_ = 0;
    std::vector<std::size_t> rowOffset_; //!< n+1 offsets into values_
    std::vector<std::uint32_t> cols_; //!< column of each stored entry
    std::vector<double> values_;
};

/**
 * Cholesky factorization A = L L^T of a symmetric positive
 * (semi-)definite matrix.
 *
 * A tiny jitter is added to the diagonal when a pivot dips slightly
 * negative from rounding — correlation matrices built from the
 * spherical model are PSD but can lose definiteness numerically.
 *
 * @param a Symmetric input matrix (only the lower triangle is read).
 * @return Lower-triangular factor L.
 */
Matrix choleskyFactor(const Matrix &a);

} // namespace accordion::util

#endif // ACCORDION_UTIL_MATRIX_HPP
