#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "log.hpp"

namespace accordion::util {

void
OnlineStats::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        fatal("percentile: empty sample set");
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 100.0)
        return values.back();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    OnlineStats s;
    for (double v : values)
        s.add(v);
    return s.stddev();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum_log = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean: non-positive value %g", v);
        sum_log += std::log(v);
    }
    return std::exp(sum_log / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (hi <= lo)
        fatal("Histogram: hi (%g) must exceed lo (%g)", hi, lo);
    if (bins == 0)
        fatal("Histogram: need at least one bin");
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    double t = (x - lo_) / span * static_cast<double>(counts_.size());
    auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "[%6.3f,%6.3f) %4zu ",
                      binLo(i), binHi(i), counts_[i]);
        out << label;
        const auto bar = counts_[i] * width / peak;
        for (std::size_t j = 0; j < bar; ++j)
            out << '#';
        out << '\n';
    }
    return out.str();
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        fatal("fitLinear: need >= 2 paired samples");
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (std::abs(denom) < 1e-300) {
        fit.intercept = sy / n;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    double ss_res = 0.0;
    const double ybar = sy / n;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double pred = fit.intercept + fit.slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

LinearFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    std::vector<double> lx, ly;
    lx.reserve(xs.size());
    ly.reserve(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0 || ys[i] <= 0.0)
            fatal("fitPowerLaw: non-positive sample at index %zu", i);
        lx.push_back(std::log(xs[i]));
        ly.push_back(std::log(ys[i]));
    }
    return fitLinear(lx, ly);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal("normalQuantile: p (%g) must lie in (0, 1)", p);
    // Acklam's rational approximation, |error| < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1.0 - plow;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > phigh) {
        q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double
normalInvCdfUpper(double q)
{
    if (q <= 0.0 || q >= 1.0)
        fatal("normalInvCdfUpper: q (%g) must lie in (0, 1)", q);
    if (q > 0.5)
        return -normalInvCdfUpper(1.0 - q);

    // Acklam seed. For q below his tail split the tail branch takes
    // q directly — no 1 - q cancellation — so the seed keeps ~1e-9
    // *absolute* accuracy even for q ~ 1e-300.
    double z;
    if (q < 0.02425) {
        static const double c[] = {-7.784894002430293e-03,
                                   -3.223964580411365e-01,
                                   -2.400758277161838e+00,
                                   -2.549732539343734e+00,
                                   4.374664141464968e+00,
                                   2.938163982698783e+00};
        static const double d[] = {7.784695709041462e-03,
                                   3.224671290700398e-01,
                                   2.445134137142996e+00,
                                   3.754408661907416e+00};
        const double u = std::sqrt(-2.0 * std::log(q));
        z = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u +
               c[4]) *
                  u +
              c[5]) /
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
    } else {
        z = -normalQuantile(q);
    }

    // Newton in log space on Q(z) = 0.5 erfc(z/sqrt(2)), which is
    // relatively accurate for every representable q: two steps take
    // the ~1e-9 seed to full double precision. Guard the extreme
    // tail where erfc underflows (q < ~1e-308 cannot reach here,
    // but z drifting past ~37.5 during iteration can).
    const double log_q = std::log(q);
    for (int step = 0; step < 2; ++step) {
        const double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
        if (tail <= 0.0)
            break;
        const double pdf =
            std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
        z += (std::log(tail) - log_q) * tail / pdf;
    }
    return z;
}

double
normalInvCdf(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal("normalInvCdf: p (%g) must lie in (0, 1)", p);
    // Phi(z) = p  <=>  Q(-z) = p.
    return -normalInvCdfUpper(p);
}

double
logNormalCdf(double x)
{
    if (x >= 0.0) {
        // log(1 - Q(x)) via log1p: Q(x) = erfc(x/sqrt(2))/2 is tiny
        // and exact for positive x, where Phi(x) = 1 - Q(x) would
        // cancel catastrophically.
        const double q = 0.5 * std::erfc(x / std::sqrt(2.0));
        return std::log1p(-q);
    }
    if (x > -8.0)
        return std::log(normalCdf(x));
    // Asymptotic expansion of the Mills ratio:
    // Phi(x) ~ phi(x)/|x| * (1 - 1/x^2 + 3/x^4 - ...), x -> -inf.
    const double x2 = x * x;
    const double series = 1.0 - 1.0 / x2 + 3.0 / (x2 * x2);
    return -0.5 * x2 - 0.5 * std::log(2.0 * M_PI) - std::log(-x) +
        std::log(series);
}

} // namespace accordion::util
