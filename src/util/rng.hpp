/**
 * @file
 * Deterministic pseudo-random number generation for all stochastic
 * components of the Accordion stack.
 *
 * Every model in the repository draws randomness through Rng so that
 * experiments are reproducible bit-for-bit. Streams are keyed by
 * (seed, stream id) pairs; distinct structures (chips, cores, memory
 * blocks, workload threads) derive independent streams.
 */

#ifndef ACCORDION_UTIL_RNG_HPP
#define ACCORDION_UTIL_RNG_HPP

#include <array>
#include <cstdint>

namespace accordion::util {

/**
 * SplitMix64 mixer used to expand seeds into xoshiro state.
 *
 * @param x State to advance and mix (advanced in place).
 * @return A well-mixed 64-bit value.
 */
std::uint64_t splitMix64(std::uint64_t &x);

/**
 * xoshiro256** generator.
 *
 * Small, fast, high-quality, and trivially seedable from a (seed,
 * stream) pair. Not cryptographic; plenty for Monte Carlo.
 */
class Rng
{
  public:
    /** Construct from a master seed and a stream identifier. */
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal draw (Box-Muller with caching). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive a child generator for a named substructure.
     *
     * The child stream is a deterministic function of this
     * generator's identity and the key; it does not perturb the
     * parent state.
     */
    Rng fork(std::uint64_t key) const;

    /**
     * Counter-based stream split: the @p index-th parallel stream
     * of a master @p seed.
     *
     * A pure function of (seed, index) — no shared state, no
     * sequencing — so parallel sweeps can draw per-element
     * randomness from any thread and still be bit-identical at any
     * thread count: iteration i of a parallelFor uses
     * streamAt(seed, i) regardless of which worker runs it.
     * Distinct indices yield uncorrelated streams (the index is
     * SplitMix64-mixed before keying the stream).
     */
    static Rng streamAt(std::uint64_t seed, std::uint64_t index);

  private:
    std::array<std::uint64_t, 4> state_;
    std::uint64_t seed_;
    std::uint64_t stream_;
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace accordion::util

#endif // ACCORDION_UTIL_RNG_HPP
