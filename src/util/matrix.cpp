#include "matrix.hpp"

#include <cmath>

#include "log.hpp"

namespace accordion::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    if (v.size() != cols_)
        panic("Matrix::multiply: dimension mismatch (%zu vs %zu)", v.size(),
              cols_);
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double *row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

TriangularFactor::TriangularFactor(const Matrix &lower)
{
    if (lower.rows() != lower.cols())
        panic("TriangularFactor: matrix must be square");
    n_ = lower.rows();
    rowOffset_.assign(n_ + 1, 0);
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            const double v = lower.at(r, c);
            if (v == 0.0)
                continue;
            cols_.push_back(static_cast<std::uint32_t>(c));
            values_.push_back(v);
        }
        rowOffset_[r + 1] = values_.size();
    }
}

double
TriangularFactor::density() const
{
    if (n_ == 0)
        return 0.0;
    return static_cast<double>(values_.size()) /
        (static_cast<double>(n_) * static_cast<double>(n_));
}

void
TriangularFactor::multiplyInto(const std::vector<double> &v,
                               std::vector<double> &out) const
{
    if (v.size() != n_)
        panic("TriangularFactor::multiplyInto: dimension mismatch "
              "(%zu vs %zu)", v.size(), n_);
    if (&v == &out)
        panic("TriangularFactor::multiplyInto: aliased buffers");
    out.resize(n_);
    for (std::size_t r = 0; r < n_; ++r) {
        double acc = 0.0;
        const std::size_t end = rowOffset_[r + 1];
        for (std::size_t k = rowOffset_[r]; k < end; ++k)
            acc += values_[k] * v[cols_[k]];
        out[r] = acc;
    }
}

std::vector<double>
TriangularFactor::multiply(const std::vector<double> &v) const
{
    std::vector<double> out;
    multiplyInto(v, out);
    return out;
}

Matrix
choleskyFactor(const Matrix &a)
{
    if (a.rows() != a.cols())
        panic("choleskyFactor: matrix must be square");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a.at(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l.at(j, k) * l.at(j, k);
        if (diag < -1e-6)
            panic("choleskyFactor: matrix not PSD (pivot %g at %zu)", diag,
                  j);
        // PSD inputs can produce tiny negative pivots from rounding.
        diag = std::max(diag, 1e-12);
        const double ljj = std::sqrt(diag);
        l.at(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            l.at(i, j) = sum / ljj;
        }
    }
    return l;
}

} // namespace accordion::util
