#include "interp.hpp"

#include <algorithm>

#include "log.hpp"

namespace accordion::util {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    if (xs_.size() != ys_.size())
        panic("PiecewiseLinear: %zu xs vs %zu ys", xs_.size(), ys_.size());
    if (xs_.empty())
        panic("PiecewiseLinear: need at least one knot");
    for (std::size_t i = 1; i < xs_.size(); ++i)
        if (xs_[i] <= xs_[i - 1])
            panic("PiecewiseLinear: knots must strictly increase "
                  "(x[%zu]=%g, x[%zu]=%g)",
                  i - 1, xs_[i - 1], i, xs_[i]);
}

double
PiecewiseLinear::operator()(double x) const
{
    if (x <= xs_.front())
        return ys_.front();
    if (x >= xs_.back())
        return ys_.back();
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const auto hi = static_cast<std::size_t>(it - xs_.begin());
    const auto lo = hi - 1;
    const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
    return ys_[lo] * (1.0 - t) + ys_[hi] * t;
}

double
PiecewiseLinear::inverse(double target) const
{
    double lo = xs_.front();
    double hi = xs_.back();
    if (target <= (*this)(lo))
        return lo;
    if (target >= (*this)(hi))
        return hi;
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if ((*this)(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace accordion::util
