#include "rng.hpp"

#include <cmath>

namespace accordion::util {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream), cachedNormal_(0.0),
      hasCachedNormal_(false)
{
    // Mix seed and stream so nearby (seed, stream) pairs yield
    // uncorrelated state.
    std::uint64_t sm = seed ^ (stream * 0xda942042e4dd58b5ULL);
    for (auto &word : state_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 0x853c49e6748fea9bULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Rejection sampling to kill modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::streamAt(std::uint64_t seed, std::uint64_t index)
{
    // Mix the counter so that consecutive indices land on
    // uncorrelated streams; the seed half stays untouched, keeping
    // streamAt(seed, i) disjoint from the Rng(seed, stream)
    // constructor's plain-stream keying only through the mix.
    std::uint64_t x = index ^ 0x6a09e667f3bcc908ULL;
    const std::uint64_t stream = splitMix64(x);
    return Rng(seed, stream);
}

Rng
Rng::fork(std::uint64_t key) const
{
    // Children are keyed off the parent identity, not its state, so
    // forking is order-independent.
    std::uint64_t mix = seed_;
    (void)splitMix64(mix);
    return Rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_ + 1)),
               key ^ (stream_ * 0xd1342543de82ef95ULL) ^ 0x2545f4914f6cdd1dULL);
}

} // namespace accordion::util
