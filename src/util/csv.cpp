#include "csv.hpp"

#include "log.hpp"
#include "table.hpp"

namespace accordion::util {

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size())
{
    if (!out_)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
    addRow(header);
}

std::string
CsvWriter::quote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != columns_)
        panic("CsvWriter::addRow: %zu cells, expected %zu", cells.size(),
              columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out_ << quote(cells[i]);
        if (i + 1 < cells.size())
            out_ << ',';
    }
    out_ << '\n';
}

void
CsvWriter::addRow(const std::vector<double> &cells)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double v : cells)
        formatted.push_back(format("%.8g", v));
    addRow(formatted);
}

} // namespace accordion::util
