#include "csv.hpp"

#include "log.hpp"
#include "table.hpp"

namespace accordion::util {

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out_(path), path_(path), columns_(header.size())
{
    if (!out_)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
    addRow(header);
}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::close()
{
    if (!out_.is_open())
        return;
    out_.flush();
    if (!out_)
        fatal("CsvWriter: write error on '%s' (disk full?); the file "
              "is truncated",
              path_.c_str());
    out_.close();
    if (out_.fail())
        fatal("CsvWriter: closing '%s' failed; the file may be "
              "truncated",
              path_.c_str());
}

std::string
CsvWriter::quote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != columns_)
        panic("CsvWriter::addRow: %zu cells, expected %zu", cells.size(),
              columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out_ << quote(cells[i]);
        if (i + 1 < cells.size())
            out_ << ',';
    }
    out_ << '\n';
}

void
CsvWriter::addRow(const std::vector<double> &cells)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double v : cells)
        formatted.push_back(format("%.8g", v));
    addRow(formatted);
}

std::size_t
CsvFile::column(const std::string &name) const
{
    std::size_t found = header.size();
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] != name)
            continue;
        if (found != header.size())
            fatal("CsvFile: duplicate column '%s' (positions %zu and "
                  "%zu); lookup is ambiguous",
                  name.c_str(), found, i);
        found = i;
    }
    if (found == header.size())
        fatal("CsvFile: no column named '%s'", name.c_str());
    return found;
}

namespace {

std::vector<std::string>
parseCsvLine(const std::string &line, const std::string &path)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += ch;
        }
    }
    if (quoted)
        fatal("readCsv: unterminated quote in '%s'", path.c_str());
    cells.push_back(std::move(cell));
    return cells;
}

} // namespace

CsvFile
readCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("readCsv: cannot open '%s'", path.c_str());
    CsvFile file;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() && in.peek() == EOF)
            break; // trailing newline
        auto cells = parseCsvLine(line, path);
        if (first) {
            file.header = std::move(cells);
            first = false;
        } else {
            file.rows.push_back(std::move(cells));
        }
    }
    return file;
}

} // namespace accordion::util
