#include "log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace accordion::util {

namespace {
bool verboseFlag = true;
std::mutex logMutex;

void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    // Pool workers warn() concurrently: render the whole line into
    // one buffer first, then emit it with a single locked fwrite so
    // lines never interleave mid-byte on stderr.
    std::va_list sizing;
    va_copy(sizing, args);
    const int body = std::vsnprintf(nullptr, 0, fmt, sizing);
    va_end(sizing);

    std::string line(tag);
    line += ": ";
    if (body > 0) {
        const std::size_t prefix = line.size();
        line.resize(prefix + static_cast<std::size_t>(body) + 1);
        std::vsnprintf(&line[prefix],
                       static_cast<std::size_t>(body) + 1, fmt, args);
        line.resize(prefix + static_cast<std::size_t>(body));
    }
    line += '\n';

    std::lock_guard<std::mutex> lock(logMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}
} // namespace

void
setVerbose(bool v)
{
    verboseFlag = v;
}

bool
verbose()
{
    return verboseFlag;
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace accordion::util
