#include "log.hpp"

#include <cstdio>
#include <cstdlib>

namespace accordion::util {

namespace {
bool verboseFlag = true;

void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setVerbose(bool v)
{
    verboseFlag = v;
}

bool
verbose()
{
    return verboseFlag;
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace accordion::util
