/**
 * @file
 * ASCII table rendering for bench harness output. Every figure/table
 * reproduction prints its rows through this so that bench output is
 * uniform and diffable.
 */

#ifndef ACCORDION_UTIL_TABLE_HPP
#define ACCORDION_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace accordion::util {

/**
 * Column-aligned ASCII table with a header row.
 *
 * Usage:
 * @code
 *   Table t({"Vdd (V)", "f (GHz)", "Power (W)"});
 *   t.addRow({format("%.2f", vdd), ...});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header cells. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row. @pre cells.size() == header size. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render the table, ready to print. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a double with %.4g — the bench harness default. */
std::string formatG(double v);

} // namespace accordion::util

#endif // ACCORDION_UTIL_TABLE_HPP
