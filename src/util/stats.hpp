/**
 * @file
 * Streaming and batch statistics helpers used throughout the
 * Accordion evaluation stack: online moments, percentiles,
 * histograms, and simple linear/log-log fits for the Table 3
 * dependency-class characterization.
 */

#ifndef ACCORDION_UTIL_STATS_HPP
#define ACCORDION_UTIL_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace accordion::util {

/**
 * Numerically stable online mean/variance accumulator (Welford).
 */
class OnlineStats
{
  public:
    OnlineStats() = default;

    /** Add one sample. */
    void add(double x);

    /** Number of samples accumulated. */
    std::size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e308;
    double max_ = -1e308;
};

/**
 * Percentile of a sample set using linear interpolation between
 * order statistics.
 *
 * @param values Sample set (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &values);

/** Sample standard deviation of a vector; 0 with < 2 elements. */
double stddev(const std::vector<double> &values);

/** Geometric mean of strictly positive values; 0 when empty. */
double geomean(const std::vector<double> &values);

/**
 * Fixed-bin histogram over [lo, hi); values outside the range clamp
 * into the first/last bin. Used for the Fig. 5a VddMIN histogram.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin. @pre hi > lo.
     * @param bins Number of bins. @pre bins > 0.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Count in bin i. */
    std::size_t countAt(std::size_t i) const { return counts_.at(i); }

    /** Lower edge of bin i. */
    double binLo(std::size_t i) const;

    /** Upper edge of bin i. */
    double binHi(std::size_t i) const;

    /** Total samples added. */
    std::size_t total() const { return total_; }

    /** Render a simple ASCII bar chart, one line per bin. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/** Result of an ordinary least-squares fit y = a + b x. */
struct LinearFit
{
    double intercept = 0.0; //!< a
    double slope = 0.0; //!< b
    double r2 = 0.0; //!< coefficient of determination
};

/**
 * Ordinary least-squares fit of y against x.
 *
 * @pre xs.size() == ys.size() and xs.size() >= 2.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Fit y = c * x^k via OLS in log-log space; used to classify
 * problem-size and quality dependencies as linear vs. complex
 * (Table 3). @pre all xs, ys strictly positive.
 */
LinearFit fitPowerLaw(const std::vector<double> &xs,
                      const std::vector<double> &ys);

/** Standard normal CDF. */
double normalCdf(double x);

/** Inverse standard normal CDF (Acklam's rational approximation). */
double normalQuantile(double p);

/**
 * High-precision inverse of the standard normal *upper-tail*
 * probability: returns z such that Q(z) = 1 - Phi(z) = q.
 *
 * Taking the complement q directly (instead of p = 1 - q) is what
 * makes the timing-model inversion possible: the error-rate model
 * needs z at survival probabilities down to ~1e-18, where p = 1 - q
 * rounds to exactly 1.0 in double precision. An Acklam seed is
 * polished with Newton steps on erfc, which is accurate in
 * *relative* terms arbitrarily far into the tail, so the result
 * matches a bisection of the forward CDF to < 1e-12 relative.
 *
 * @param q Upper-tail probability in (0, 1).
 */
double normalInvCdfUpper(double q);

/**
 * High-precision inverse standard normal CDF: z with Phi(z) = p.
 * Same accuracy as normalInvCdfUpper (it is the lower-tail
 * reflection of it); prefer normalInvCdfUpper when the tail
 * probability itself is the quantity you hold.
 */
double normalInvCdf(double p);

/**
 * log(Phi(x)) evaluated accurately for very negative x, where
 * Phi(x) underflows double precision. Needed by the timing-error
 * model which multiplies millions of per-path survival
 * probabilities (Perr down to 1e-16 and far below).
 */
double logNormalCdf(double x);

} // namespace accordion::util

#endif // ACCORDION_UTIL_STATS_HPP
