/**
 * @file
 * Status-message and error-handling helpers in the gem5 tradition:
 * inform() for status, warn() for suspicious-but-survivable
 * conditions, fatal() for user errors (clean exit), panic() for
 * internal invariant violations (abort).
 */

#ifndef ACCORDION_UTIL_LOG_HPP
#define ACCORDION_UTIL_LOG_HPP

#include <cstdarg>

namespace accordion::util {

/** Global verbosity control; inform() is silent when false. */
void setVerbose(bool verbose);

/** Whether inform() currently prints. */
bool verbose();

/** Print an informational printf-style message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning printf-style message to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and exit(1).
 * Use for bad configuration or invalid arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace accordion::util

/**
 * Invariant check that compiles away in optimized builds (NDEBUG).
 * Use on hot accessors where a bounds check per call is measurable:
 * debug builds still panic with a useful message, release builds
 * index unchecked.
 */
#ifndef NDEBUG
#define ACC_DEBUG_ASSERT(cond, ...)                                  \
    do {                                                             \
        if (!(cond))                                                 \
            ::accordion::util::panic(__VA_ARGS__);                   \
    } while (0)
#else
#define ACC_DEBUG_ASSERT(cond, ...) ((void)0)
#endif

#endif // ACCORDION_UTIL_LOG_HPP
