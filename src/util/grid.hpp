/**
 * @file
 * A small 2D grid container shared by the variation-field sampler,
 * the hotspot thermal solver, and the srad image kernel.
 */

#ifndef ACCORDION_UTIL_GRID_HPP
#define ACCORDION_UTIL_GRID_HPP

#include <cstddef>
#include <vector>

namespace accordion::util {

/** Row-major 2D grid of T. */
template <typename T>
class Grid2D
{
  public:
    Grid2D() : rows_(0), cols_(0) {}

    /** Construct a rows x cols grid filled with `fill`. */
    Grid2D(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    T &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    const T &at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Flat element access in row-major order. */
    T &flat(std::size_t i) { return data_[i]; }
    const T &flat(std::size_t i) const { return data_[i]; }

    /** Underlying storage, row-major. */
    std::vector<T> &data() { return data_; }
    const std::vector<T> &data() const { return data_; }

    bool operator==(const Grid2D &other) const = default;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

} // namespace accordion::util

#endif // ACCORDION_UTIL_GRID_HPP
