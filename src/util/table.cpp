#include "table.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "log.hpp"

namespace accordion::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        panic("Table: header must not be empty");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        panic("Table::addRow: %zu cells, expected %zu", cells.size(),
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string result(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(result.data(), result.size() + 1, fmt, args);
    va_end(args);
    return result;
}

std::string
formatG(double v)
{
    return format("%.4g", v);
}

} // namespace accordion::util
