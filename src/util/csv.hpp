/**
 * @file
 * CSV emission for bench harnesses. Each figure reproduction can dump
 * its series to a CSV file next to the human-readable table so the
 * figures can be re-plotted externally.
 */

#ifndef ACCORDION_UTIL_CSV_HPP
#define ACCORDION_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace accordion::util {

/** Streaming CSV writer with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /**
     * Open `path` for writing and emit the header row.
     * fatal()s if the file cannot be opened.
     */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /**
     * Flushes and verifies the stream (via close()) if still open:
     * a CSV silently truncated by a full disk or I/O error is a
     * fatal() condition, not a quiet success.
     */
    ~CsvWriter();

    CsvWriter(CsvWriter &&) = default;
    CsvWriter &operator=(CsvWriter &&) = default;

    /** Append a row of preformatted cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of doubles (formatted with %.8g). */
    void addRow(const std::vector<double> &cells);

    /**
     * Flush, check the stream state, and close the file. fatal()s
     * when any buffered write failed to reach the file system.
     * Idempotent; also invoked by the destructor.
     */
    void close();

  private:
    static std::string quote(const std::string &cell);

    std::ofstream out_;
    std::string path_;
    std::size_t columns_;
};

/** A parsed CSV file: header row plus data rows. */
struct CsvFile
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /**
     * Index of a header column; fatal()s when absent or when the
     * header carries the name more than once (an ambiguous lookup
     * would silently bind to an arbitrary column).
     */
    std::size_t column(const std::string &name) const;
};

/**
 * Read a CSV written by CsvWriter (RFC-4180 quoting, first row is
 * the header). fatal()s if the file cannot be opened or a quoted
 * cell is left unterminated. Used by the golden-value regression
 * tests to load checked-in reference series.
 */
CsvFile readCsv(const std::string &path);

} // namespace accordion::util

#endif // ACCORDION_UTIL_CSV_HPP
