/**
 * @file
 * Variation-mitigation baselines from the paper's related work
 * (Section 8), implemented so Accordion can be compared against
 * them on the same chip and workloads:
 *
 *  - Booster [25]: two independent Vdd rails; an on-chip governor
 *    time-multiplexes each core between the rails so every core
 *    presents the same *effective* frequency — applications never
 *    perceive variation-induced speed differences. The achievable
 *    common frequency is capped by the slowest core on the high
 *    rail, and the governor's rail switching costs a small power
 *    overhead.
 *
 *  - EnergySmart [21]: a single Vdd rail with per-cluster frequency
 *    domains; a variation-aware scheduler load-balances tasks in
 *    proportion to each cluster's speed. Aggregate throughput is
 *    the sum of cluster throughputs, discounted by a straggler/
 *    synchronization penalty — the overhead Accordion avoids by
 *    clocking every engaged core at one frequency.
 *
 * Neither baseline has Accordion's problem-size knob, so both are
 * evaluated at the default problem size (Still semantics): find
 * the smallest core count that matches the STV execution time and
 * report power and MIPS/W.
 */

#ifndef ACCORDION_CORE_BASELINES_HPP
#define ACCORDION_CORE_BASELINES_HPP

#include <string>

#include "core_selection.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "pareto.hpp"
#include "quality_profile.hpp"

namespace accordion::core {

/** Outcome of one baseline's iso-execution-time search. */
struct BaselineResult
{
    std::string scheme;
    std::size_t n = 0;
    double fHz = 0.0; //!< common/average core frequency
    double execSeconds = 0.0;
    double powerW = 0.0;
    double mipsPerWatt = 0.0;
    bool feasible = false;
    bool withinBudget = false;

    double
    efficiencyRatio(const StvBaseline &base) const
    {
        return mipsPerWatt / base.mipsPerWatt;
    }
};

/** Evaluates the baselines on one chip. */
class BaselineEvaluator
{
  public:
    /** Baseline knobs. */
    struct Params
    {
        /** Booster's high rail sits this much above VddNTV [V]. */
        double boosterRailGap = 0.05;
        /** Booster governor, level shifters, and dual power-grid
         *  overhead. Reference [14] of the paper (Reevaluating Fast
         *  Dual-Voltage Power Rail Switching) found rail switching
         *  substantially more costly at NTV than at STV. */
        double boosterPowerOverhead = 0.15;
        /** EnergySmart straggler/synchronization efficiency: the
         *  fraction of the speed-proportional ideal throughput the
         *  scheduler actually extracts. */
        double energySmartEfficiency = 0.88;
    };

    BaselineEvaluator(const vartech::VariationChip &chip,
                      const manycore::PowerModel &power,
                      const manycore::PerfModel &perf);

    BaselineEvaluator(const vartech::VariationChip &chip,
                      const manycore::PowerModel &power,
                      const manycore::PerfModel &perf, Params params);

    /** Booster at the default problem size. */
    BaselineResult booster(const rms::Workload &workload,
                           const QualityProfile &profile,
                           const StvBaseline &base) const;

    /** EnergySmart at the default problem size. */
    BaselineResult energySmart(const rms::Workload &workload,
                               const QualityProfile &profile,
                               const StvBaseline &base) const;

    const Params &params() const { return params_; }

  private:
    const vartech::VariationChip *chip_;
    const manycore::PowerModel *power_;
    const manycore::PerfModel *perf_;
    Params params_;
    CoreSelector selector_;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_BASELINES_HPP
