/**
 * @file
 * Iso-execution-time pareto-front extraction (Section 6.3, Figures
 * 6 and 7). For every problem size of a kernel's sweep, find how
 * many NTV cores — and which operating frequency — it takes to
 * match the STV execution time, then report energy efficiency
 * (MIPS/W), power, problem size and quality, all normalized to the
 * STV baseline:
 *
 *  - The STV baseline runs the default problem size on N_STV cores
 *    (the most that fit the 100 W budget at the STV supply) at the
 *    nominal STV frequency, neglecting variation — the paper
 *    deliberately favors STV this way.
 *  - At NTV, Accordion picks the most energy-efficient N cores at
 *    cluster granularity; the slowest selected core sets the
 *    common clock. Safe flavors cap the clock at the safe
 *    frequency; Speculative flavors instead budget one timing
 *    error per infected task (Perr = 1/e for a task of e cycles)
 *    and clock the cores at the frequency that error rate buys.
 */

#ifndef ACCORDION_CORE_PARETO_HPP
#define ACCORDION_CORE_PARETO_HPP

#include <optional>
#include <vector>

#include "core_selection.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "modes.hpp"
#include "quality_profile.hpp"
#include "rms/workload.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::core {

/** The STV reference execution. */
struct StvBaseline
{
    std::size_t n = 0; //!< N_STV
    double fHz = 0.0; //!< nominal STV clock
    double seconds = 0.0; //!< Execution Time_STV at default size
    double mips = 0.0;
    double powerW = 0.0;
    double mipsPerWatt = 0.0;
};

/** One point of an iso-execution-time front. */
struct OperatingPoint
{
    double psRatio = 0.0; //!< problem size / default
    std::size_t n = 0; //!< NNTV
    double fHz = 0.0; //!< common NTV clock
    double perr = 0.0; //!< per-cycle error-rate target (Spec only)
    double dropFraction = 0.0; //!< assumed dropped-task share (Spec)
    double execSeconds = 0.0;
    double powerW = 0.0;
    bool withinBudget = true;
    double mips = 0.0;
    double mipsPerWatt = 0.0;
    double qualityRatio = 0.0; //!< Q_NTV / Q_STV
    Flavor flavor = Flavor::Safe;
    SizeMode sizeMode = SizeMode::Still;
    bool feasible = true; //!< iso-execution time attainable

    /** Normalized coordinates against a baseline. */
    double nRatio(const StvBaseline &b) const
    {
        return static_cast<double>(n) / static_cast<double>(b.n);
    }
    double powerRatio(const StvBaseline &b) const
    {
        return powerW / b.powerW;
    }
    double efficiencyRatio(const StvBaseline &b) const
    {
        return mipsPerWatt / b.mipsPerWatt;
    }
};

/** Extractor over one chip instance. */
class ParetoExtractor
{
  public:
    /** Tunables. */
    struct Params
    {
        /** Effective CPI used to convert task instructions into the
         *  cycle count that sets the Speculative error-rate budget. */
        double cpiForErrorBudget = 1.3;
        /** Slack accepted on iso-execution time. */
        double isoTolerance = 0.02;
        /** Clamp range for the Speculative per-cycle error rate. */
        double perrMin = 1e-15;
        double perrMax = 1e-2;
    };

    ParetoExtractor(const vartech::VariationChip &chip,
                    const manycore::PowerModel &power,
                    const manycore::PerfModel &perf);

    ParetoExtractor(const vartech::VariationChip &chip,
                    const manycore::PowerModel &power,
                    const manycore::PerfModel &perf, Params params);

    /** Measure the STV baseline of a kernel. */
    StvBaseline baseline(const rms::Workload &workload,
                         const QualityProfile &profile) const;

    /**
     * Extract the iso-execution-time front of a kernel under a
     * flavor: one operating point per problem size of the profile's
     * sweep (points that cannot reach iso-execution time with all
     * 288 cores are marked infeasible and reported at the full core
     * count).
     */
    std::vector<OperatingPoint> extract(const rms::Workload &workload,
                                        const QualityProfile &profile,
                                        Flavor flavor) const;

    /** Evaluate a single problem-size ratio. */
    OperatingPoint evaluateAt(const rms::Workload &workload,
                              const QualityProfile &profile,
                              Flavor flavor, double ps_ratio,
                              const StvBaseline &baseline) const;

    const CoreSelector &selector() const { return selector_; }
    const Params &params() const { return params_; }

  private:
    const vartech::VariationChip *chip_;
    const manycore::PowerModel *power_;
    const manycore::PerfModel *perf_;
    Params params_;
    CoreSelector selector_;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_PARETO_HPP
