/**
 * @file
 * Monte Carlo evaluation over the manufactured-chip sample. The
 * paper evaluates on a sample of 100 chips (Table 2); this module
 * runs any per-chip metric across the sample and aggregates the
 * distribution, so results can be reported as "mean +/- sigma over
 * the sample" instead of a single representative die.
 */

#ifndef ACCORDION_CORE_MONTECARLO_HPP
#define ACCORDION_CORE_MONTECARLO_HPP

#include <functional>
#include <string>
#include <vector>

#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "pareto.hpp"
#include "quality_profile.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::core {

/** Distribution summary of a per-chip metric. */
struct SampleStatistics
{
    std::string metric;
    std::size_t chips = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p10 = 0.0;
    double p90 = 0.0;
};

/**
 * Runs per-chip metrics over a chip sample.
 */
class MonteCarloEvaluator
{
  public:
    /**
     * @param factory Chip factory (shared Cholesky).
     * @param chips Sample size (the paper uses 100).
     */
    MonteCarloEvaluator(const vartech::ChipFactory &factory,
                        std::size_t chips = 100);

    /**
     * Metric evaluated on one manufactured chip. Each worker gets a
     * chip whose whole-chip reliability tables are precomputed, so
     * metrics should reduce over the span views (coreSafeFs,
     * clusterSafeFs, clusterVddMins) or the batch queries instead of
     * issuing per-core accessor calls.
     */
    using ChipMetric =
        std::function<double(const vartech::VariationChip &)>;

    /** A metric plus the name it is reported under. */
    struct NamedMetric
    {
        std::string name;
        ChipMetric metric;
    };

    /** Evaluate @p metric on every chip of the sample. */
    SampleStatistics evaluate(const std::string &name,
                              const ChipMetric &metric) const;

    /** Raw per-chip values of a metric, in chip-id order. */
    std::vector<double> values(const ChipMetric &metric) const;

    /**
     * Raw per-chip values of several metrics from ONE manufacturing
     * pass: each chip of the sample is manufactured once and every
     * metric is evaluated on it before it is dropped. Chip
     * manufacture dominates the sweep cost, so this is ~Mx cheaper
     * than M values() calls.
     *
     * Determinism contract (same as values()): chips are pure
     * functions of (seed, id), metrics are evaluated on the
     * identical chip object in metric order, and every result lands
     * in its own pre-sized slot — so out[m] is bit-identical to
     * values(metrics[m]) at any thread count.
     *
     * @return out[m][id] = metrics[m] evaluated on chip id.
     */
    std::vector<std::vector<double>> valuesMany(
        const std::vector<ChipMetric> &metrics) const;

    /**
     * evaluate() for several metrics from one manufacturing pass;
     * statistics are bit-identical to per-metric evaluate() calls.
     */
    std::vector<SampleStatistics> evaluateMany(
        const std::vector<NamedMetric> &metrics) const;

    /**
     * Distribution of the best feasible, within-budget, iso-quality
     * (Q >= @p quality_floor) energy-efficiency gain of a kernel
     * across the sample — the headline number per chip.
     *
     * @param profile Quality profile (chip-independent).
     */
    SampleStatistics efficiencyGainDistribution(
        const rms::Workload &workload, const QualityProfile &profile,
        const manycore::PowerModel &power,
        const manycore::PerfModel &perf, Flavor flavor,
        double quality_floor = 0.0) const;

    std::size_t sampleSize() const { return chips_; }

  private:
    const vartech::ChipFactory *factory_;
    std::size_t chips_;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_MONTECARLO_HPP
