#include "montecarlo.hpp"

#include <algorithm>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace accordion::core {

MonteCarloEvaluator::MonteCarloEvaluator(
    const vartech::ChipFactory &factory, std::size_t chips)
    : factory_(&factory), chips_(chips)
{
    if (chips == 0)
        util::fatal("MonteCarloEvaluator: empty sample");
}

std::vector<std::vector<double>>
MonteCarloEvaluator::valuesMany(
    const std::vector<ChipMetric> &metrics) const
{
    ACC_SCOPED_TIMER("montecarlo.values");
    if (metrics.empty())
        util::fatal("MonteCarloEvaluator::valuesMany: no metrics");
    obs::StatsRegistry::global().counter("montecarlo.samples")
        .add(chips_);
    obs::StatsRegistry::global().counter("montecarlo.metric_evals")
        .add(chips_ * metrics.size());
    // Chips are independent (the factory derives each chip's
    // randomness from its id alone) and every evaluation writes
    // only its own slot, so the sample parallelizes with
    // bit-identical results at any thread count. Manufacturing once
    // and fanning the metrics over the same chip object cannot
    // change any value: make(id) is a pure function of (seed, id).
    std::vector<std::vector<double>> out(metrics.size());
    for (auto &per_metric : out)
        per_metric.resize(chips_);
    util::parallelFor(0, chips_, [&](std::size_t id) {
        const vartech::VariationChip chip =
            factory_->make(static_cast<std::uint64_t>(id));
        for (std::size_t m = 0; m < metrics.size(); ++m)
            out[m][id] = metrics[m](chip);
    });
    return out;
}

std::vector<double>
MonteCarloEvaluator::values(const ChipMetric &metric) const
{
    return valuesMany({metric}).front();
}

namespace {

SampleStatistics
summarize(const std::string &name, std::size_t chips,
          const std::vector<double> &vals)
{
    util::OnlineStats stats;
    for (double v : vals)
        stats.add(v);
    SampleStatistics out;
    out.metric = name;
    out.chips = chips;
    out.mean = stats.mean();
    out.stddev = stats.stddev();
    out.min = stats.min();
    out.max = stats.max();
    out.p10 = util::percentile(vals, 10.0);
    out.p90 = util::percentile(vals, 90.0);
    return out;
}

} // namespace

SampleStatistics
MonteCarloEvaluator::evaluate(const std::string &name,
                              const ChipMetric &metric) const
{
    return summarize(name, chips_, values(metric));
}

std::vector<SampleStatistics>
MonteCarloEvaluator::evaluateMany(
    const std::vector<NamedMetric> &metrics) const
{
    std::vector<ChipMetric> fns;
    fns.reserve(metrics.size());
    for (const NamedMetric &m : metrics)
        fns.push_back(m.metric);
    const std::vector<std::vector<double>> vals = valuesMany(fns);
    std::vector<SampleStatistics> out;
    out.reserve(metrics.size());
    for (std::size_t m = 0; m < metrics.size(); ++m)
        out.push_back(summarize(metrics[m].name, chips_, vals[m]));
    return out;
}

SampleStatistics
MonteCarloEvaluator::efficiencyGainDistribution(
    const rms::Workload &workload, const QualityProfile &profile,
    const manycore::PowerModel &power, const manycore::PerfModel &perf,
    Flavor flavor, double quality_floor) const
{
    return evaluate(
        workload.name() + " best MIPS/W gain",
        [&](const vartech::VariationChip &chip) {
            const ParetoExtractor extractor(chip, power, perf);
            const StvBaseline base =
                extractor.baseline(workload, profile);
            double best = 0.0;
            for (const OperatingPoint &p :
                 extractor.extract(workload, profile, flavor)) {
                if (!p.feasible || !p.withinBudget ||
                    p.qualityRatio < quality_floor)
                    continue;
                best = std::max(best, p.efficiencyRatio(base));
            }
            return best;
        });
}

} // namespace accordion::core
