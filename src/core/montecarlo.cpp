#include "montecarlo.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace accordion::core {

MonteCarloEvaluator::MonteCarloEvaluator(
    const vartech::ChipFactory &factory, std::size_t chips)
    : factory_(&factory), chips_(chips)
{
    if (chips == 0)
        util::fatal("MonteCarloEvaluator: empty sample");
}

std::vector<double>
MonteCarloEvaluator::values(const ChipMetric &metric) const
{
    std::vector<double> out;
    out.reserve(chips_);
    for (std::uint64_t id = 0; id < chips_; ++id) {
        const vartech::VariationChip chip = factory_->make(id);
        out.push_back(metric(chip));
    }
    return out;
}

SampleStatistics
MonteCarloEvaluator::evaluate(const std::string &name,
                              const ChipMetric &metric) const
{
    const std::vector<double> vals = values(metric);
    util::OnlineStats stats;
    for (double v : vals)
        stats.add(v);
    SampleStatistics out;
    out.metric = name;
    out.chips = chips_;
    out.mean = stats.mean();
    out.stddev = stats.stddev();
    out.min = stats.min();
    out.max = stats.max();
    out.p10 = util::percentile(vals, 10.0);
    out.p90 = util::percentile(vals, 90.0);
    return out;
}

SampleStatistics
MonteCarloEvaluator::efficiencyGainDistribution(
    const rms::Workload &workload, const QualityProfile &profile,
    const manycore::PowerModel &power, const manycore::PerfModel &perf,
    Flavor flavor, double quality_floor) const
{
    return evaluate(
        workload.name() + " best MIPS/W gain",
        [&](const vartech::VariationChip &chip) {
            const ParetoExtractor extractor(chip, power, perf);
            const StvBaseline base =
                extractor.baseline(workload, profile);
            double best = 0.0;
            for (const OperatingPoint &p :
                 extractor.extract(workload, profile, flavor)) {
                if (!p.feasible || !p.withinBudget ||
                    p.qualityRatio < quality_floor)
                    continue;
                best = std::max(best, p.efficiencyRatio(base));
            }
            return best;
        });
}

} // namespace accordion::core
