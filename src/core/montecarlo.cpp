#include "montecarlo.hpp"

#include <algorithm>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace accordion::core {

MonteCarloEvaluator::MonteCarloEvaluator(
    const vartech::ChipFactory &factory, std::size_t chips)
    : factory_(&factory), chips_(chips)
{
    if (chips == 0)
        util::fatal("MonteCarloEvaluator: empty sample");
}

std::vector<double>
MonteCarloEvaluator::values(const ChipMetric &metric) const
{
    ACC_SCOPED_TIMER("montecarlo.values");
    obs::StatsRegistry::global().counter("montecarlo.samples")
        .add(chips_);
    // Chips are independent (the factory derives each chip's
    // randomness from its id alone) and every evaluation writes
    // only its own slot, so the sample parallelizes with
    // bit-identical results at any thread count.
    std::vector<double> out(chips_);
    util::parallelFor(0, chips_, [&](std::size_t id) {
        const vartech::VariationChip chip =
            factory_->make(static_cast<std::uint64_t>(id));
        out[id] = metric(chip);
    });
    return out;
}

SampleStatistics
MonteCarloEvaluator::evaluate(const std::string &name,
                              const ChipMetric &metric) const
{
    const std::vector<double> vals = values(metric);
    util::OnlineStats stats;
    for (double v : vals)
        stats.add(v);
    SampleStatistics out;
    out.metric = name;
    out.chips = chips_;
    out.mean = stats.mean();
    out.stddev = stats.stddev();
    out.min = stats.min();
    out.max = stats.max();
    out.p10 = util::percentile(vals, 10.0);
    out.p90 = util::percentile(vals, 90.0);
    return out;
}

SampleStatistics
MonteCarloEvaluator::efficiencyGainDistribution(
    const rms::Workload &workload, const QualityProfile &profile,
    const manycore::PowerModel &power, const manycore::PerfModel &perf,
    Flavor flavor, double quality_floor) const
{
    return evaluate(
        workload.name() + " best MIPS/W gain",
        [&](const vartech::VariationChip &chip) {
            const ParetoExtractor extractor(chip, power, perf);
            const StvBaseline base =
                extractor.baseline(workload, profile);
            double best = 0.0;
            for (const OperatingPoint &p :
                 extractor.extract(workload, profile, flavor)) {
                if (!p.feasible || !p.withinBudget ||
                    p.qualityRatio < quality_floor)
                    continue;
                best = std::max(best, p.efficiencyRatio(base));
            }
            return best;
        });
}

} // namespace accordion::core
