/**
 * @file
 * Accordion modes of operation (Table 1 of the paper).
 *
 * Size modes — how the problem size accords with the core count:
 *  - Still: problem size fixed; N grows by >= fSTV/fNTV.
 *  - Compress: smaller problem, fewer cores, higher f; quality is
 *    lost to the compressed problem size.
 *  - Expand: larger problem; N must grow faster than the problem
 *    size so per-core work still shrinks by fNTV/fSTV.
 *
 * Frequency flavors:
 *  - Safe: f <= fNTV,Safe — no variation-induced timing errors.
 *  - Speculative: f > fNTV,Safe — timing errors are embraced and
 *    surface as dropped tasks; the expanded problem size makes up
 *    the quality.
 */

#ifndef ACCORDION_CORE_MODES_HPP
#define ACCORDION_CORE_MODES_HPP

#include <string>

namespace accordion::core {

/** Problem-size mode (Table 1 rows). */
enum class SizeMode
{
    Compress,
    Still,
    Expand,
};

/** Operating-frequency flavor (Table 1 columns). */
enum class Flavor
{
    Safe,
    Speculative,
};

/** Name of a size mode. */
std::string sizeModeName(SizeMode mode);

/** Name of a flavor. */
std::string flavorName(Flavor flavor);

/**
 * Classify a problem-size ratio into a size mode. Ratios within
 * @p tolerance of 1.0 count as Still.
 */
SizeMode classifySizeMode(double problem_size_ratio,
                          double tolerance = 1e-9);

} // namespace accordion::core

#endif // ACCORDION_CORE_MODES_HPP
