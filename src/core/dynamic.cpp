#include "dynamic.hpp"

#include <algorithm>
#include <numeric>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::core {

DynamicOrchestrator::DynamicOrchestrator(
    const vartech::VariationChip &chip,
    const manycore::PowerModel &power, const manycore::PerfModel &perf)
    : DynamicOrchestrator(chip, power, perf, Params{})
{
}

DynamicOrchestrator::DynamicOrchestrator(
    const vartech::VariationChip &chip,
    const manycore::PowerModel &power, const manycore::PerfModel &perf,
    Params params)
    : chip_(&chip), power_(&power), perf_(&perf), params_(params)
{
    if (params_.phases == 0)
        util::fatal("DynamicOrchestrator: need at least one phase");
}

double
DynamicOrchestrator::effectiveClusterF(
    std::size_t cluster, const std::vector<double> &scale) const
{
    return chip_->clusterSafeF(cluster) * scale[cluster];
}

std::vector<std::size_t>
DynamicOrchestrator::selectForBudget(const rms::Workload &workload,
                                     double instr, double budget_s,
                                     const std::vector<double> &scale,
                                     double *f_out) const
{
    const auto &geometry = chip_->geometry();
    const auto &tech = chip_->technology();
    const double vdd = chip_->vddNtv();

    // Rank clusters by *effective frequency* (fastest first, energy
    // efficiency as the tiebreak). Under temporal degradation the
    // common clock — set by the slowest engaged cluster — is the
    // binding constraint, so a degraded cluster must fall to the
    // back of the line even when its perf/W still looks decent.
    struct Rank
    {
        std::size_t cluster;
        double f;
        double eff;
    };
    // One batch static-power query for the whole chip; the dynamic
    // term is per-core invariant at each cluster's clock. Summed in
    // the same order as the historical per-core corePower calls.
    std::vector<double> stat(chip_->numCores());
    chip_->coreStaticPowers(vdd, stat);
    std::vector<Rank> ranking;
    ranking.reserve(chip_->numClusters());
    for (std::size_t k = 0; k < chip_->numClusters(); ++k) {
        Rank rank;
        rank.cluster = k;
        rank.f = effectiveClusterF(k, scale);
        const double dyn = power_->coreDynamicPower(vdd, rank.f);
        double watts = power_->uncorePowerPerCluster(vdd);
        const std::size_t first = geometry.firstCoreOfCluster(k);
        for (std::size_t core = first;
             core < first + geometry.coresPerCluster(); ++core)
            watts += dyn + stat[core];
        rank.eff = static_cast<double>(geometry.coresPerCluster()) *
            rank.f / watts;
        ranking.push_back(rank);
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const Rank &a, const Rank &b) {
                  if (a.f != b.f)
                      return a.f > b.f;
                  if (a.eff != b.eff)
                      return a.eff > b.eff;
                  return a.cluster < b.cluster;
              });

    // Control cores keep their own clock domain: the fastest core
    // of the chip runs the serial merge tail.
    double cc_f = 0.0;
    for (double safe_f : chip_->coreSafeFs())
        cc_f = std::max(cc_f, safe_f);

    std::vector<std::size_t> cores;
    double f = 1e300;
    std::vector<std::size_t> best;
    double best_f = 0.0;
    double fastest_seconds = 1e300;
    std::vector<std::size_t> fastest;
    double fastest_f = 0.0;
    for (const Rank &rank : ranking) {
        for (std::size_t core : geometry.coresOfCluster(rank.cluster))
            cores.push_back(core);
        f = std::min(f, rank.f);

        manycore::TaskSet tasks;
        tasks.numTasks = cores.size();
        tasks.instrPerTask =
            instr / static_cast<double>(cores.size());
        tasks.ccFrequencyHz = cc_f;
        const auto est = perf_->estimate(geometry, cores, f, tasks,
                                         workload.traits(),
                                         tech.fNtv() / f);
        if (est.seconds < fastest_seconds) {
            fastest_seconds = est.seconds;
            fastest = cores;
            fastest_f = f;
        }
        if (est.seconds <=
            budget_s * (1.0 + params_.isoTolerance)) {
            best = cores;
            best_f = f;
            break;
        }
    }
    if (best.empty()) {
        // No selection meets the budget: take the fastest one seen
        // — adding further (degraded, low-ranked) clusters would
        // only drag the common clock down.
        best = std::move(fastest);
        best_f = fastest_f;
    }
    *f_out = best_f;
    return best;
}

DynamicReport
DynamicOrchestrator::run(const rms::Workload &workload,
                         const QualityProfile &profile,
                         const StvBaseline &base,
                         const std::vector<ResilienceEvent> &events) const
{
    const auto &geometry = chip_->geometry();
    const auto &tech = chip_->technology();
    const double total_instr = profile.defaultInstrPerTask() *
        static_cast<double>(profile.threads());
    const double phase_instr =
        total_instr / static_cast<double>(params_.phases);
    const double phase_budget =
        base.seconds / static_cast<double>(params_.phases);

    std::vector<double> scale(chip_->numClusters(), 1.0);
    DynamicReport report;
    std::vector<std::size_t> cores;
    double f = 0.0;

    // Phase-invariant: the fastest core of the chip (serial tail).
    double cc_f = 0.0;
    for (double safe_f : chip_->coreSafeFs())
        cc_f = std::max(cc_f, safe_f);

    for (std::size_t phase = 0; phase < params_.phases; ++phase) {
        // Apply the events that fire at this boundary.
        bool resiliency_changed = false;
        for (const ResilienceEvent &event : events) {
            if (event.phase == phase) {
                if (event.cluster >= chip_->numClusters())
                    util::fatal("DynamicOrchestrator: event cluster "
                                "%zu out of range", event.cluster);
                scale[event.cluster] = event.safeFScale;
                resiliency_changed = true;
            }
        }

        bool reselected = false;
        if (cores.empty() ||
            (params_.adaptive && resiliency_changed)) {
            cores = selectForBudget(workload, phase_instr,
                                    phase_budget, scale, &f);
            reselected = true;
        } else if (!params_.adaptive && resiliency_changed) {
            // Static allocation: the degraded clusters drag the
            // common clock down.
            for (std::size_t core : cores) {
                const std::size_t k = geometry.clusterOfCore(core);
                f = std::min(f, effectiveClusterF(k, scale));
            }
        }

        manycore::TaskSet tasks;
        tasks.numTasks = cores.size();
        tasks.instrPerTask =
            phase_instr / static_cast<double>(cores.size());
        tasks.ccFrequencyHz = cc_f;
        const auto est = perf_->estimate(geometry, cores, f, tasks,
                                         workload.traits(),
                                         tech.fNtv() / f);
        const auto breakdown = power_->chipPower(
            *chip_, cores, chip_->vddNtv(), f,
            est.avgCoreUtilization);

        PhaseOutcome outcome;
        outcome.phase = phase;
        outcome.n = cores.size();
        outcome.fHz = f;
        outcome.seconds = est.seconds;
        outcome.powerW = breakdown.total();
        outcome.reselected = reselected;
        report.phases.push_back(outcome);
        report.totalSeconds += est.seconds;
        report.energyJ += est.seconds * breakdown.total();
        report.reselections += reselected ? 1 : 0;
    }
    return report;
}

std::vector<DynamicReport>
runOverSample(const vartech::ChipFactory &factory, std::size_t chips,
              const manycore::PowerModel &power,
              const manycore::PerfModel &perf,
              const DynamicOrchestrator::Params &params,
              const rms::Workload &workload,
              const QualityProfile &profile,
              const std::vector<ResilienceEvent> &events)
{
    if (chips == 0)
        util::fatal("runOverSample: empty sample");
    std::vector<DynamicReport> reports(chips);
    util::parallelFor(0, chips, [&](std::size_t id) {
        const vartech::VariationChip chip =
            factory.make(static_cast<std::uint64_t>(id));
        const ParetoExtractor extractor(chip, power, perf);
        const StvBaseline base =
            extractor.baseline(workload, profile);
        const DynamicOrchestrator orchestrator(chip, power, perf,
                                               params);
        reports[id] =
            orchestrator.run(workload, profile, base, events);
    });
    return reports;
}

} // namespace accordion::core
