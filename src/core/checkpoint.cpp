#include "checkpoint.hpp"

#include <cmath>

#include "util/log.hpp"

namespace accordion::core {

CheckpointPlan
planCheckpoints(const CheckpointParams &params, double errors_per_cycle,
                double f_hz)
{
    if (errors_per_cycle < 0.0)
        util::fatal("planCheckpoints: negative error rate");
    CheckpointPlan plan;
    plan.errorsPerCycle = errors_per_cycle;
    if (errors_per_cycle == 0.0) {
        plan.optimalIntervalCycles = 1e300; // never checkpoint
        return plan;
    }
    plan.optimalIntervalCycles = std::sqrt(
        2.0 * params.checkpointCostCycles / errors_per_cycle);
    // Young's first-order overhead: checkpointing plus expected
    // rework and recovery.
    plan.overheadFraction =
        params.checkpointCostCycles / plan.optimalIntervalCycles +
        errors_per_cycle *
            (plan.optimalIntervalCycles / 2.0 +
             params.recoveryCostCycles);
    plan.checkpointsPerSecond = f_hz / plan.optimalIntervalCycles;
    return plan;
}

double
accordionCoveredErrorRate(double perr, double control_fraction)
{
    if (control_fraction < 0.0 || control_fraction > 1.0)
        util::fatal("accordionCoveredErrorRate: control fraction %g "
                    "not in [0,1]", control_fraction);
    return perr * control_fraction;
}

} // namespace accordion::core
