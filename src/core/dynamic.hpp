/**
 * @file
 * Dynamic Accordion orchestration — the paper's second open
 * question (Section 7): "While the number of cores assigned to
 * computation can be changed midst-execution, the problem size may
 * not be. [...] both the phases of the application and the hardware
 * resources may experience changes in resiliency within the course
 * of execution."
 *
 * This module implements that extension: execution is divided into
 * phases; between phases, resiliency events (thermal emergencies,
 * aging, droop — anything that rescales a cluster's safe
 * frequency) take effect, and the orchestrator may re-select the
 * engaged cores and the common clock at each phase boundary to
 * hold the iso-execution-time target. The problem size stays fixed
 * mid-run, exactly as the paper stipulates.
 */

#ifndef ACCORDION_CORE_DYNAMIC_HPP
#define ACCORDION_CORE_DYNAMIC_HPP

#include <vector>

#include "core_selection.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "pareto.hpp"
#include "quality_profile.hpp"

namespace accordion::core {

/** A temporal change in one cluster's resiliency. */
struct ResilienceEvent
{
    std::size_t phase = 0; //!< takes effect at this phase boundary
    std::size_t cluster = 0;
    /** Multiplier on the cluster's safe frequency from this phase
     *  on (< 1: degradation, e.g. a thermal emergency; > 1 back
     *  toward nominal as conditions recover). Events on the same
     *  cluster replace earlier ones. */
    double safeFScale = 1.0;
};

/** What one phase did. */
struct PhaseOutcome
{
    std::size_t phase = 0;
    std::size_t n = 0; //!< engaged cores during the phase
    double fHz = 0.0; //!< common clock during the phase
    double seconds = 0.0;
    double powerW = 0.0;
    bool reselected = false; //!< allocation changed at the boundary
};

/** Whole-run outcome. */
struct DynamicReport
{
    std::vector<PhaseOutcome> phases;
    double totalSeconds = 0.0;
    double energyJ = 0.0;
    std::size_t reselections = 0;

    double avgPowerW() const
    {
        return totalSeconds > 0.0 ? energyJ / totalSeconds : 0.0;
    }
};

/** Phase-granular dynamic controller. */
class DynamicOrchestrator
{
  public:
    /** Controller knobs. */
    struct Params
    {
        std::size_t phases = 8; //!< phase boundaries per run
        double isoTolerance = 0.02; //!< slack on the per-phase budget
        /** Re-select cores at phase boundaries; false = the static
         *  baseline that keeps the initial allocation and merely
         *  rides the degraded clock. */
        bool adaptive = true;
    };

    DynamicOrchestrator(const vartech::VariationChip &chip,
                        const manycore::PowerModel &power,
                        const manycore::PerfModel &perf);

    DynamicOrchestrator(const vartech::VariationChip &chip,
                        const manycore::PowerModel &power,
                        const manycore::PerfModel &perf,
                        Params params);

    /**
     * Run the workload's default problem size across the phase
     * schedule under the given resiliency events, targeting the
     * STV execution time of @p base.
     */
    DynamicReport run(const rms::Workload &workload,
                      const QualityProfile &profile,
                      const StvBaseline &base,
                      const std::vector<ResilienceEvent> &events) const;

    const Params &params() const { return params_; }

  private:
    /** Effective safe f of a cluster under the current scales. */
    double effectiveClusterF(std::size_t cluster,
                             const std::vector<double> &scale) const;

    /** Cheapest selection meeting the per-phase time budget. */
    std::vector<std::size_t> selectForBudget(
        const rms::Workload &workload, double instr, double budget_s,
        const std::vector<double> &scale, double *f_out) const;

    const vartech::VariationChip *chip_;
    const manycore::PowerModel *power_;
    const manycore::PerfModel *perf_;
    Params params_;
};

/**
 * Run the dynamic orchestrator on every chip of a manufacturing
 * sample (chip ids 0..chips-1), one report per chip in id order.
 *
 * Each chip gets its own STV baseline (extracted with
 * ParetoExtractor on that chip) and its own orchestrator, so the
 * per-chip evaluations are independent and run on the global thread
 * pool; reports land in pre-sized slots and are bit-identical at
 * any thread count.
 */
std::vector<DynamicReport> runOverSample(
    const vartech::ChipFactory &factory, std::size_t chips,
    const manycore::PowerModel &power, const manycore::PerfModel &perf,
    const DynamicOrchestrator::Params &params,
    const rms::Workload &workload, const QualityProfile &profile,
    const std::vector<ResilienceEvent> &events);

} // namespace accordion::core

#endif // ACCORDION_CORE_DYNAMIC_HPP
