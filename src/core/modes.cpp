#include "modes.hpp"

#include "util/log.hpp"

namespace accordion::core {

std::string
sizeModeName(SizeMode mode)
{
    switch (mode) {
      case SizeMode::Compress: return "Compress";
      case SizeMode::Still: return "Still";
      case SizeMode::Expand: return "Expand";
    }
    util::panic("sizeModeName: unknown mode %d", static_cast<int>(mode));
}

std::string
flavorName(Flavor flavor)
{
    switch (flavor) {
      case Flavor::Safe: return "Safe";
      case Flavor::Speculative: return "Speculative";
    }
    util::panic("flavorName: unknown flavor %d",
                static_cast<int>(flavor));
}

SizeMode
classifySizeMode(double problem_size_ratio, double tolerance)
{
    if (problem_size_ratio < 1.0 - tolerance)
        return SizeMode::Compress;
    if (problem_size_ratio > 1.0 + tolerance)
        return SizeMode::Expand;
    return SizeMode::Still;
}

} // namespace accordion::core
