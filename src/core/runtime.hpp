/**
 * @file
 * Functional model of the Accordion execution runtime (Section 4):
 * Control Cores (CCs) and Data Cores (DCs) in master-slave mode.
 *
 * CC semantics: CCs coordinate a designated set of DCs, keep a
 * watchdog per DC to detect crashes/hangs, never consume DC data
 * for control, collect results over a dedicated mailbox memory, and
 * merge results once DCs finish. CCs can also enforce preset limits
 * on per-task quality degradation, treating offending tasks like
 * crashed ones (outcome class (ii) of Section 6.3).
 *
 * DC semantics: DCs feature fast reset/restart, may write only
 * their own mailbox slot (enforced — a stray write panics, modeling
 * the hardware protection domain), and read shared data the CC
 * manages.
 *
 * The model is functional with an abstract virtual clock: it
 * executes real work closures, injects hangs/corruptions, and
 * reports what the protocol did about them. The architectural
 * design space of Fig. 3 (homogeneous spatio-temporal, homogeneous
 * time-multiplexed, heterogeneous clusters) is captured by
 * organization-dependent overheads and CC provisioning.
 */

#ifndef ACCORDION_CORE_RUNTIME_HPP
#define ACCORDION_CORE_RUNTIME_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace accordion::core {

/** Fig. 3 design-space organizations. */
enum class Organization
{
    HomogeneousSpatial, //!< Fig. 3a: fastest cores act as CCs
    HomogeneousTimeMultiplexed, //!< Fig. 3b: CC/DC time-multiplexed
    HeterogeneousClusters, //!< Fig. 3c: CCs specialized by design
};

/** Name of an organization. */
std::string organizationName(Organization organization);

/** Organization-dependent cost model (used by the ablation bench). */
struct OrganizationTraits
{
    /** CC merge/housekeeping speed relative to a plain core. */
    double ccSpeedFactor = 1.0;
    /** Throughput lost to time-multiplexing CC duties onto DCs. */
    double multiplexOverhead = 0.0;
    /** CC area relative to a DC (heterogeneous CCs are bigger). */
    double ccAreaFactor = 1.0;
    /** Whether the CC:DC ratio is fixed by the hardware. */
    bool ccCountFixed = false;
};

/** Traits of each organization. */
OrganizationTraits organizationTraits(Organization organization);

/**
 * Dedicated mailbox memory: the only place DCs may write. Slot
 * ownership is enforced; writing another core's slot models a
 * protection-domain violation and panics (the hardware would trap).
 */
class Mailbox
{
  public:
    explicit Mailbox(std::size_t slots);

    /** DC @p dc posts its end result. Panics on foreign slots. */
    void post(std::size_t owner, std::size_t dc, double value);

    /** CC collects (and clears) a slot; empty if nothing posted. */
    std::optional<double> collect(std::size_t dc);

    std::size_t slots() const { return slots_.size(); }

  private:
    std::vector<std::optional<double>> slots_;
};

/** One unit of data-parallel work. */
struct WorkItem
{
    std::size_t id = 0;
    double input = 0.0;
};

/** The computation a DC performs on a work item. */
using ItemFn = std::function<double(const WorkItem &)>;

/** Injected DC misbehavior. */
struct DcFaultModel
{
    double hangProbability = 0.0; //!< per item: DC crashes/hangs
    double corruptProbability = 0.0; //!< per item: result corrupted
    double corruptMagnitude = 1e6; //!< additive corruption size
    std::uint64_t seed = 1;
};

/** Runtime configuration. */
struct RuntimeParams
{
    Organization organization = Organization::HomogeneousSpatial;
    std::size_t numDcs = 14; //!< data cores
    std::size_t numCcs = 2; //!< control cores
    /** Watchdog timeout, in multiples of one item's nominal time. */
    double watchdogTimeout = 4.0;
    /** Re-dispatch attempts before an item is dropped. */
    std::size_t maxRetries = 1;
    /** Preset per-result acceptance test (outcome class (ii));
     *  results failing it are treated like crashes. Accepts all
     *  finite values by default. */
    std::function<bool(double)> acceptable;
    /** CC merge cost per item, in item-time units. */
    double mergeCostPerItem = 0.02;
};

/** What happened during an execute(). */
struct RuntimeReport
{
    std::size_t completed = 0; //!< first-try successes
    std::size_t recovered = 0; //!< succeeded after re-dispatch
    std::size_t dropped = 0; //!< gave up (perceived as Drop)
    std::size_t watchdogFires = 0;
    std::size_t qualityRejects = 0; //!< acceptance-test failures
    double virtualTime = 0.0; //!< abstract parallel makespan
    double ccBusyTime = 0.0; //!< merge + housekeeping time
    std::vector<double> results; //!< merged results (id order,
                                 //!< dropped items absent)
    std::vector<std::optional<double>> resultOf; //!< per item
};

/** The master-slave runtime. */
class AccordionRuntime
{
  public:
    explicit AccordionRuntime(RuntimeParams params);

    /**
     * Execute @p items on the DC set with fault injection. The
     * returned report reflects the CC-observed outcome of every
     * item.
     */
    RuntimeReport execute(const std::vector<WorkItem> &items,
                          const ItemFn &fn,
                          const DcFaultModel &faults = {}) const;

    const RuntimeParams &params() const { return params_; }

  private:
    RuntimeParams params_;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_RUNTIME_HPP
