#include "pareto.hpp"

#include <algorithm>
#include <cmath>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::core {

ParetoExtractor::ParetoExtractor(const vartech::VariationChip &chip,
                                 const manycore::PowerModel &power,
                                 const manycore::PerfModel &perf)
    : ParetoExtractor(chip, power, perf, Params{})
{
}

ParetoExtractor::ParetoExtractor(const vartech::VariationChip &chip,
                                 const manycore::PowerModel &power,
                                 const manycore::PerfModel &perf,
                                 Params params)
    : chip_(&chip), power_(&power), perf_(&perf), params_(params),
      selector_(chip, power)
{
}

StvBaseline
ParetoExtractor::baseline(const rms::Workload &workload,
                          const QualityProfile &profile) const
{
    const auto &geometry = chip_->geometry();
    const auto &tech = chip_->technology();
    StvBaseline base;
    base.n = power_->maxCoresAtStv(geometry.coresPerCluster());
    base.fHz = tech.fStv();

    // Densely packed cores; variation is neglected at STV, so the
    // identity of the cores only matters for cluster contention.
    std::vector<std::size_t> cores(base.n);
    for (std::size_t i = 0; i < base.n; ++i)
        cores[i] = i;

    const double total_instr = profile.defaultInstrPerTask() *
        static_cast<double>(profile.threads());
    manycore::TaskSet tasks;
    tasks.numTasks = base.n;
    tasks.instrPerTask = total_instr / static_cast<double>(base.n);
    tasks.ccFrequencyHz = base.fHz;

    // Each cluster is one frequency domain (Section 6.1): the
    // memory system clocks with the cores, so Table 2's latencies
    // are constant in cycles — quoted in ns at the 1 GHz NTV
    // nominal, they scale as fNom/f at any operating clock.
    const double stv_latency_scale = tech.fNtv() / base.fHz;
    const auto est = perf_->estimate(geometry, cores, base.fHz, tasks,
                                     workload.traits(),
                                     stv_latency_scale);
    base.seconds = est.seconds;
    base.mips = est.mips();

    const std::size_t clusters =
        (base.n + geometry.coresPerCluster() - 1) /
        geometry.coresPerCluster();
    base.powerW = static_cast<double>(base.n) *
            power_->corePowerNominal(tech.params().vddStv, base.fHz,
                                     est.avgCoreUtilization) +
        static_cast<double>(clusters) *
            power_->uncorePowerPerCluster(tech.params().vddStv);
    base.mipsPerWatt = base.mips / base.powerW;
    return base;
}

OperatingPoint
ParetoExtractor::evaluateAt(const rms::Workload &workload,
                            const QualityProfile &profile, Flavor flavor,
                            double ps_ratio,
                            const StvBaseline &base) const
{
    obs::StatsRegistry::global().counter("pareto.points").inc();
    const auto &geometry = chip_->geometry();
    const double total_instr = profile.defaultInstrPerTask() *
        static_cast<double>(profile.threads()) * ps_ratio;
    const std::size_t cluster_size = geometry.coresPerCluster();

    OperatingPoint point;
    point.psRatio = ps_ratio;
    point.flavor = flavor;
    point.sizeMode = classifySizeMode(ps_ratio, 1e-6);
    point.dropFraction = flavor == Flavor::Speculative
        ? profile.speculativeDropFraction()
        : 0.0;

    const auto &tech = chip_->technology();

    // The serial merge tail runs on the fastest (control) core of
    // the chip, not at the workers' common clock. It does not depend
    // on the candidate core count, so read it once from the
    // selector's cached argmax instead of sorting all cores per n.
    const double cc_f = chip_->coreSafeF(selector_.fastestCore());

    // Scan core counts at cluster granularity from small to large;
    // the first count achieving iso-execution time is the pareto
    // point (fewest cores == least power == most efficient).
    OperatingPoint best;
    bool found = false;
    OperatingPoint last; // fallback: full-chip attempt
    for (std::size_t n = cluster_size; n <= chip_->numCores();
         n += cluster_size) {
        const std::vector<std::size_t> cores =
            selector_.selectCores(n);

        manycore::TaskSet tasks;
        tasks.numTasks = n;
        tasks.instrPerTask = total_instr / static_cast<double>(n);
        tasks.ccFrequencyHz = cc_f;

        double f = 0.0;
        double perr = 0.0;
        if (flavor == Flavor::Safe) {
            f = selector_.safeFrequency(cores);
        } else {
            // One timing error per infected task: Perr = 1/e with
            // e the task's cycle count (Section 6.3).
            const double cycles =
                tasks.instrPerTask * params_.cpiForErrorBudget;
            perr = std::clamp(1.0 / cycles, params_.perrMin,
                              params_.perrMax);
            f = selector_.speculativeFrequency(cores, perr);
        }

        // The cluster domain (memory included) clocks at f; the
        // Table 2 latencies are constant in cycles.
        const auto est = perf_->estimate(geometry, cores, f, tasks,
                                         workload.traits(),
                                         tech.fNtv() / f);
        const auto breakdown = power_->chipPower(
            *chip_, cores, chip_->vddNtv(), f,
            est.avgCoreUtilization);

        OperatingPoint candidate = point;
        candidate.n = n;
        candidate.fHz = f;
        candidate.perr = perr;
        candidate.execSeconds = est.seconds;
        candidate.powerW = breakdown.total();
        candidate.withinBudget =
            breakdown.total() <= power_->budget() + 1e-9;
        candidate.mips = est.mips();
        candidate.mipsPerWatt = est.mips() / breakdown.total();
        candidate.feasible = est.seconds <=
            base.seconds * (1.0 + params_.isoTolerance);
        last = candidate;
        if (candidate.feasible) {
            best = candidate;
            found = true;
            break;
        }
    }
    OperatingPoint result = found ? best : last;
    result.qualityRatio =
        profile.qualityAt(ps_ratio, result.dropFraction);
    return result;
}

std::vector<OperatingPoint>
ParetoExtractor::extract(const rms::Workload &workload,
                         const QualityProfile &profile,
                         Flavor flavor) const
{
    ACC_SCOPED_TIMER("pareto.extract");
    obs::StatsRegistry::global().counter("pareto.extracts").inc();
    const StvBaseline base = baseline(workload, profile);
    const std::vector<double> &ratios = profile.defaultCurve().psRatio;
    // Problem sizes are independent given the (precomputed)
    // baseline; each index fills its own pre-sized slot, so the
    // front is bit-identical at any thread count.
    std::vector<OperatingPoint> front(ratios.size());
    util::parallelFor(0, ratios.size(), [&](std::size_t i) {
        front[i] =
            evaluateAt(workload, profile, flavor, ratios[i], base);
    });
    return front;
}

} // namespace accordion::core
