#include "baselines.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/log.hpp"

namespace accordion::core {

BaselineEvaluator::BaselineEvaluator(const vartech::VariationChip &chip,
                                     const manycore::PowerModel &power,
                                     const manycore::PerfModel &perf)
    : BaselineEvaluator(chip, power, perf, Params{})
{
}

BaselineEvaluator::BaselineEvaluator(const vartech::VariationChip &chip,
                                     const manycore::PowerModel &power,
                                     const manycore::PerfModel &perf,
                                     Params params)
    : chip_(&chip), power_(&power), perf_(&perf), params_(params),
      selector_(chip, power)
{
}

BaselineResult
BaselineEvaluator::booster(const rms::Workload &workload,
                           const QualityProfile &profile,
                           const StvBaseline &base) const
{
    const auto &geometry = chip_->geometry();
    const auto &tech = chip_->technology();
    const double vdd_lo = chip_->vddNtv();
    const double vdd_hi = vdd_lo + params_.boosterRailGap;
    const double total_instr = profile.defaultInstrPerTask() *
        static_cast<double>(profile.threads());

    BaselineResult result;
    result.scheme = "Booster (dual rail)";
    // Whole-chip batch queries, hoisted out of the core-count scan:
    // the high-rail safe frequencies and the per-rail static powers
    // depend only on the supplies, not on the selection or f_eff.
    std::vector<double> hi_f(chip_->numCores());
    chip_->safeFrequencies(vdd_hi, hi_f);
    std::vector<double> stat_lo(chip_->numCores());
    std::vector<double> stat_hi(chip_->numCores());
    chip_->coreStaticPowers(vdd_lo, stat_lo);
    chip_->coreStaticPowers(vdd_hi, stat_hi);
    const std::span<const double> lo_f = chip_->coreSafeFs();
    const double cc_f = chip_->coreSafeF(selector_.fastestCore());
    const std::size_t step = geometry.coresPerCluster();
    for (std::size_t n = step; n <= chip_->numCores(); n += step) {
        const auto cores = selector_.selectCores(n);
        // The governor can hold every core at any effective f up to
        // the slowest core's high-rail frequency.
        double f_eff = 1e300;
        for (std::size_t core : cores)
            f_eff = std::min(f_eff, hi_f[core]);

        manycore::TaskSet tasks;
        tasks.numTasks = n;
        tasks.instrPerTask = total_instr / static_cast<double>(n);
        tasks.ccFrequencyHz = cc_f;
        const auto est = perf_->estimate(geometry, cores, f_eff,
                                         tasks, workload.traits(),
                                         tech.fNtv() / f_eff);

        // Power: each core mixes the rails; a core whose low-rail
        // safe f already exceeds f_eff stays on the low rail. The
        // dynamic term is per-core invariant at each rail.
        const double dyn_lo = power_->coreDynamicPower(
            vdd_lo, f_eff, est.avgCoreUtilization);
        const double dyn_hi = power_->coreDynamicPower(
            vdd_hi, f_eff, est.avgCoreUtilization);
        double watts = 0.0;
        for (std::size_t core : cores) {
            const double f_lo = lo_f[core];
            const double f_hi = hi_f[core];
            double x = 0.0; // high-rail time share
            if (f_eff > f_lo)
                x = std::clamp((f_eff - f_lo) /
                                   std::max(1.0, f_hi - f_lo),
                               0.0, 1.0);
            const double p_lo = dyn_lo + stat_lo[core];
            const double p_hi = dyn_hi + stat_hi[core];
            watts += (1.0 - x) * p_lo + x * p_hi;
        }
        const std::size_t clusters =
            (n + step - 1) / step;
        watts += static_cast<double>(clusters) *
            power_->uncorePowerPerCluster(vdd_hi);
        watts *= 1.0 + params_.boosterPowerOverhead;

        result.n = n;
        result.fHz = f_eff;
        result.execSeconds = est.seconds;
        result.powerW = watts;
        result.mipsPerWatt = est.mips() / watts;
        result.withinBudget = watts <= power_->budget() + 1e-9;
        result.feasible = est.seconds <= base.seconds * 1.02;
        if (result.feasible)
            break;
    }
    return result;
}

BaselineResult
BaselineEvaluator::energySmart(const rms::Workload &workload,
                               const QualityProfile &profile,
                               const StvBaseline &base) const
{
    const auto &geometry = chip_->geometry();
    const double total_instr = profile.defaultInstrPerTask() *
        static_cast<double>(profile.threads());
    const auto traits = workload.traits();

    BaselineResult result;
    result.scheme = "EnergySmart (per-cluster f)";
    const auto &tech = chip_->technology();
    const double cc_f = chip_->coreSafeF(selector_.fastestCore());
    // Static power depends only on the (fixed) NTV supply; one batch
    // query replaces the per-core corePower calls in the scan below.
    std::vector<double> stat(chip_->numCores());
    chip_->coreStaticPowers(chip_->vddNtv(), stat);
    const std::size_t step = geometry.coresPerCluster();
    for (std::size_t n = step; n <= chip_->numCores(); n += step) {
        const auto cores = selector_.selectCores(n);
        // Per-cluster frequency domains: the cluster's slowest core
        // sets its clock; the variation-aware scheduler hands each
        // cluster a share of the work proportional to its speed.
        // Each domain is evaluated through the same performance
        // model Accordion uses (contention, sync and serial tail
        // included), and the slowest domain sets the makespan.
        struct Domain
        {
            std::vector<std::size_t> cores;
            double f = 0.0;
        };
        std::vector<Domain> domains;
        double sum_f = 0.0;
        double watts = 0.0;
        for (std::size_t i = 0; i < cores.size(); /* by cluster */) {
            const std::size_t cluster =
                geometry.clusterOfCore(cores[i]);
            Domain domain;
            domain.f = chip_->clusterSafeF(cluster);
            const double dyn = power_->coreDynamicPower(
                chip_->vddNtv(), domain.f);
            while (i < cores.size() &&
                   geometry.clusterOfCore(cores[i]) == cluster) {
                domain.cores.push_back(cores[i]);
                watts += dyn + stat[cores[i]];
                ++i;
            }
            sum_f += domain.f *
                static_cast<double>(domain.cores.size());
            watts += power_->uncorePowerPerCluster(chip_->vddNtv());
            domains.push_back(std::move(domain));
        }

        double seconds = 0.0;
        for (const Domain &domain : domains) {
            manycore::TaskSet tasks;
            tasks.numTasks = domain.cores.size();
            const double share = domain.f *
                static_cast<double>(domain.cores.size()) / sum_f;
            tasks.instrPerTask = total_instr * share /
                static_cast<double>(domain.cores.size());
            tasks.ccFrequencyHz = cc_f;
            const auto est = perf_->estimate(
                geometry, domain.cores, domain.f, tasks, traits,
                tech.fNtv() / domain.f);
            seconds = std::max(seconds, est.seconds);
        }
        // Cross-domain synchronization/straggler penalty: domains
        // finish at different times and re-balance imperfectly.
        seconds /= params_.energySmartEfficiency;

        result.n = n;
        result.fHz = sum_f / static_cast<double>(n);
        result.execSeconds = seconds;
        result.powerW = watts;
        result.mipsPerWatt = total_instr *
            (1.0 + traits.serialFraction) / seconds / 1e6 / watts;
        result.withinBudget = watts <= power_->budget() + 1e-9;
        result.feasible = seconds <= base.seconds * 1.02;
        if (result.feasible)
            break;
    }
    return result;
}

} // namespace accordion::core
