#include "runtime.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/log.hpp"

namespace accordion::core {

std::string
organizationName(Organization organization)
{
    switch (organization) {
      case Organization::HomogeneousSpatial:
        return "homogeneous spatio-temporal (Fig. 3a)";
      case Organization::HomogeneousTimeMultiplexed:
        return "homogeneous time-multiplexed (Fig. 3b)";
      case Organization::HeterogeneousClusters:
        return "heterogeneous clusters (Fig. 3c)";
    }
    util::panic("organizationName: unknown organization %d",
                static_cast<int>(organization));
}

OrganizationTraits
organizationTraits(Organization organization)
{
    OrganizationTraits traits;
    switch (organization) {
      case Organization::HomogeneousSpatial:
        // Plain cores everywhere; semantics are programmed, CC count
        // configurable.
        traits.ccSpeedFactor = 1.0;
        traits.multiplexOverhead = 0.0;
        traits.ccAreaFactor = 1.0;
        traits.ccCountFixed = false;
        break;
      case Organization::HomogeneousTimeMultiplexed:
        // Better hardware use, but CC duties steal DC throughput
        // and protection-domain switches cost.
        traits.ccSpeedFactor = 1.0;
        traits.multiplexOverhead = 0.08;
        traits.ccAreaFactor = 1.0;
        traits.ccCountFixed = false;
        break;
      case Organization::HeterogeneousClusters:
        // Specialized CCs merge faster but are bigger and their
        // count is baked into the cluster design.
        traits.ccSpeedFactor = 1.6;
        traits.multiplexOverhead = 0.0;
        traits.ccAreaFactor = 1.8;
        traits.ccCountFixed = true;
        break;
    }
    return traits;
}

Mailbox::Mailbox(std::size_t slots) : slots_(slots) {}

void
Mailbox::post(std::size_t owner, std::size_t dc, double value)
{
    if (dc >= slots_.size())
        util::panic("Mailbox: slot %zu out of range", dc);
    if (owner != dc)
        util::panic("Mailbox: protection violation — DC %zu wrote slot "
                    "%zu", owner, dc);
    slots_[dc] = value;
}

std::optional<double>
Mailbox::collect(std::size_t dc)
{
    if (dc >= slots_.size())
        util::panic("Mailbox: slot %zu out of range", dc);
    std::optional<double> value = slots_[dc];
    slots_[dc].reset();
    return value;
}

AccordionRuntime::AccordionRuntime(RuntimeParams params)
    : params_(std::move(params))
{
    if (params_.numDcs == 0)
        util::fatal("AccordionRuntime: need at least one DC");
    if (params_.numCcs == 0)
        util::fatal("AccordionRuntime: need at least one CC");
    if (!params_.acceptable)
        params_.acceptable = [](double v) { return std::isfinite(v); };
}

RuntimeReport
AccordionRuntime::execute(const std::vector<WorkItem> &items,
                          const ItemFn &fn,
                          const DcFaultModel &faults) const
{
    const OrganizationTraits traits =
        organizationTraits(params_.organization);
    util::Rng rng(faults.seed, 0xdc);
    Mailbox mailbox(params_.numDcs);
    RuntimeReport report;
    report.resultOf.assign(items.size(), std::nullopt);

    struct Pending
    {
        std::size_t item;
        std::size_t attempts;
    };
    std::deque<Pending> queue;
    for (std::size_t i = 0; i < items.size(); ++i)
        queue.push_back({i, 0});

    // Per-DC virtual clocks; an item costs one unit, a hang costs
    // the watchdog timeout (then fast reset re-arms the DC).
    std::vector<double> dc_clock(params_.numDcs, 0.0);
    const double item_cost =
        1.0 * (1.0 + traits.multiplexOverhead);

    std::size_t rr = 0;
    while (!queue.empty()) {
        Pending pending = queue.front();
        queue.pop_front();
        // Dispatch to the least-loaded DC (round-robin tie-break) —
        // the CC's scheduling housekeeping.
        std::size_t dc = rr % params_.numDcs;
        for (std::size_t probe = 0; probe < params_.numDcs; ++probe) {
            const std::size_t cand = (rr + probe) % params_.numDcs;
            if (dc_clock[cand] < dc_clock[dc])
                dc = cand;
        }
        ++rr;

        const bool hangs = rng.bernoulli(faults.hangProbability);
        if (hangs) {
            // The DC never posts; the CC's per-DC watchdog fires
            // after the timeout and resets the DC.
            dc_clock[dc] += params_.watchdogTimeout * item_cost;
            ++report.watchdogFires;
            if (pending.attempts < params_.maxRetries) {
                queue.push_back({pending.item, pending.attempts + 1});
            } else {
                ++report.dropped;
            }
            continue;
        }

        double value = fn(items[pending.item]);
        if (rng.bernoulli(faults.corruptProbability))
            value += faults.corruptMagnitude *
                (rng.uniform() < 0.5 ? -1.0 : 1.0);
        dc_clock[dc] += item_cost;
        mailbox.post(dc, dc, value);

        // CC collects over the dedicated mailbox and applies the
        // preset quality limit; offenders are handled exactly like
        // crashes (Section 6.3, outcome class (ii)).
        const std::optional<double> posted = mailbox.collect(dc);
        if (!posted.has_value())
            util::panic("AccordionRuntime: DC %zu posted nothing", dc);
        if (!params_.acceptable(*posted)) {
            ++report.qualityRejects;
            if (pending.attempts < params_.maxRetries) {
                queue.push_back({pending.item, pending.attempts + 1});
            } else {
                ++report.dropped;
            }
            continue;
        }

        if (pending.attempts == 0)
            ++report.completed;
        else
            ++report.recovered;
        report.resultOf[pending.item] = *posted;
    }

    for (const auto &value : report.resultOf)
        if (value.has_value())
            report.results.push_back(*value);

    const double dc_makespan =
        *std::max_element(dc_clock.begin(), dc_clock.end());
    report.ccBusyTime = static_cast<double>(items.size()) *
        params_.mergeCostPerItem /
        (traits.ccSpeedFactor * static_cast<double>(params_.numCcs));
    report.virtualTime = dc_makespan + report.ccBusyTime;
    return report;
}

} // namespace accordion::core
