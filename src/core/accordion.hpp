/**
 * @file
 * Top-level facade of the Accordion library. An AccordionSystem
 * wires together the technology node, a manufactured (variation-
 * afflicted) chip, the power and performance models, and cached
 * per-kernel quality profiles, and exposes pareto-front extraction —
 * everything the paper's evaluation needs from one object.
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   accordion::core::AccordionSystem system;
 *   const auto &w = accordion::rms::findWorkload("canneal");
 *   auto front = system.pareto().extract(
 *       w, system.profile("canneal"),
 *       accordion::core::Flavor::Speculative);
 * @endcode
 */

#ifndef ACCORDION_CORE_ACCORDION_HPP
#define ACCORDION_CORE_ACCORDION_HPP

#include <map>
#include <memory>
#include <string>

#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "pareto.hpp"
#include "quality_profile.hpp"
#include "runtime.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::core {

/** Which performance-model backend an AccordionSystem runs. */
enum class PerfEngine
{
    Analytic, //!< closed-form M/D/1 (default; fastest)
    Event, //!< serial discrete-event reference
    Bsp, //!< partitioned-parallel discrete-event (bit-identical
         //!< to Event at any thread count)
};

/** Stable name of a PerfEngine ("analytic", "event", "bsp"). */
const char *perfEngineName(PerfEngine engine);

/** One fully wired Accordion evaluation stack. */
class AccordionSystem
{
  public:
    /** Construction knobs. */
    struct Config
    {
        std::uint64_t seed = 12345; //!< manufacturing seed
        std::uint64_t chipId = 0; //!< which chip of the sample
        vartech::ChipFactory::Params factory;
        manycore::PowerModelParams power;
        manycore::MemorySystemParams memory;
        /** Performance-model backend. The discrete-event engines
         *  are slower than the (cross-validated) analytic default
         *  but simulate every bus transaction. */
        PerfEngine perfEngine = PerfEngine::Analytic;
        ParetoExtractor::Params pareto;

        /**
         * Stable textual key over every construction knob. Two
         * configs with equal keys build numerically identical
         * systems; the experiment harness uses this to share one
         * AccordionSystem across experiments (doubles are rendered
         * with %.17g, so the key is lossless).
         */
        std::string key() const;
    };

    AccordionSystem();
    explicit AccordionSystem(Config config);

    const vartech::Technology &technology() const { return tech_; }
    const vartech::ChipFactory &factory() const { return *factory_; }
    const vartech::VariationChip &chip() const { return *chip_; }
    const manycore::PowerModel &powerModel() const { return *power_; }
    const manycore::PerfModel &perfModel() const { return *perf_; }
    const ParetoExtractor &pareto() const { return *pareto_; }
    const Config &config() const { return config_; }

    /**
     * Quality profile of a kernel, measured on first use and
     * cached.
     */
    const QualityProfile &profile(const std::string &workload);

    /**
     * Headline number (Section 9): the best feasible, within-
     * budget energy-efficiency gain over STV across a kernel's
     * Speculative fronts.
     */
    double bestEfficiencyGain(const std::string &workload);

  private:
    Config config_;
    vartech::Technology tech_;
    std::unique_ptr<vartech::ChipFactory> factory_;
    std::unique_ptr<vartech::VariationChip> chip_;
    std::unique_ptr<manycore::PowerModel> power_;
    std::unique_ptr<manycore::PerfModel> perf_;
    std::unique_ptr<ParetoExtractor> pareto_;
    std::map<std::string, QualityProfile> profiles_;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_ACCORDION_HPP
