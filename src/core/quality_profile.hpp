/**
 * @file
 * Quality-vs-problem-size profiles (the paper's Figures 2 and 4).
 * A profile is measured by sweeping a kernel's Accordion input
 * under three scenarios — Default, Drop 1/4 and Drop 1/2 — and
 * normalizing both axes to the default input, exactly as Section
 * 6.2 prescribes. The pareto extractor then interrogates the
 * profile at arbitrary problem sizes through piecewise-linear
 * interpolation.
 */

#ifndef ACCORDION_CORE_QUALITY_PROFILE_HPP
#define ACCORDION_CORE_QUALITY_PROFILE_HPP

#include <cstdint>
#include <vector>

#include "rms/workload.hpp"
#include "util/interp.hpp"

namespace accordion::core {

/** One measured scenario curve. */
struct ProfileCurve
{
    std::vector<double> psRatio; //!< problem size / default
    std::vector<double> qRatio; //!< quality / default quality

    /** Interpolator over the curve. */
    util::PiecewiseLinear interp() const;
};

/**
 * A kernel's measured quality profile.
 */
class QualityProfile
{
  public:
    /**
     * Measure the profile of @p workload: reference run, then the
     * input sweep under Default / Drop 1/4 / Drop 1/2 at the
     * kernel's profiling thread count (64, or 32 for srad).
     */
    static QualityProfile measure(const rms::Workload &workload,
                                  std::uint64_t seed = 42);

    /** Default-scenario curve (all tasks contribute). */
    const ProfileCurve &defaultCurve() const { return default_; }

    /** Drop 1/4 curve. */
    const ProfileCurve &dropQuarterCurve() const { return quarter_; }

    /** Drop 1/2 curve. */
    const ProfileCurve &dropHalfCurve() const { return half_; }

    /** Absolute problem size at the default input. */
    double defaultProblemSize() const { return psDefault_; }

    /** Absolute quality at the default input (vs hyper-accurate). */
    double defaultQuality() const { return qDefault_; }

    /** Instructions per task at the default input. */
    double defaultInstrPerTask() const { return instrPerTaskDefault_; }

    /** Profiling thread count. */
    std::size_t threads() const { return threads_; }

    /**
     * Interpolated quality ratio at a problem-size ratio under a
     * dropped-task fraction; linear between the measured 0, 1/4 and
     * 1/2 curves, clamped beyond.
     */
    double qualityAt(double ps_ratio, double drop_fraction = 0.0) const;

    /**
     * The drop fraction the Speculative analysis assumes for this
     * kernel: Drop 1/2 where Drop 1/4 degradation is negligible
     * (< 5% at the default size), else Drop 1/4 — the paper's
     * Section 6.3 convention.
     */
    double speculativeDropFraction() const;

  private:
    ProfileCurve default_;
    ProfileCurve quarter_;
    ProfileCurve half_;
    double psDefault_ = 0.0;
    double qDefault_ = 0.0;
    double instrPerTaskDefault_ = 0.0;
    std::size_t threads_ = 0;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_QUALITY_PROFILE_HPP
