/**
 * @file
 * Variation-aware core selection (Sections 4 and 6.3). Accordion
 * assigns work at cluster granularity; when a problem size demands
 * N cores, it picks the most energy-efficient N cores of the
 * variation-afflicted chip — the ones that deliver the most
 * performance per Watt at the chip's VddNTV. The slowest selected
 * core dictates the common operating frequency. Control cores are
 * reserved from the fastest (most reliable) cores.
 */

#ifndef ACCORDION_CORE_CORE_SELECTION_HPP
#define ACCORDION_CORE_CORE_SELECTION_HPP

#include <cstddef>
#include <vector>

#include "manycore/power_model.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::core {

/** A ranked cluster with its derived figures of merit. */
struct ClusterRank
{
    std::size_t cluster = 0;
    double safeF = 0.0; //!< slowest-core safe f at VddNTV [Hz]
    double powerW = 0.0; //!< cluster power at its safe f [W]
    double efficiency = 0.0; //!< cores x f / power [Hz/W]
};

/**
 * Ranks clusters of a chip by energy efficiency at VddNTV and
 * materializes core selections at cluster granularity.
 */
class CoreSelector
{
  public:
    CoreSelector(const vartech::VariationChip &chip,
                 const manycore::PowerModel &power);

    /** Clusters ordered from most to least energy-efficient. */
    const std::vector<ClusterRank> &rankedClusters() const
    {
        return ranking_;
    }

    /**
     * The most energy-efficient @p n cores (n rounded up to whole
     * clusters; pass multiples of the cluster size for exact
     * counts).
     */
    std::vector<std::size_t> selectCores(std::size_t n) const;

    /**
     * Safe common frequency of a selection: the minimum safe f
     * across the selected cores [Hz].
     */
    double safeFrequency(const std::vector<std::size_t> &cores) const;

    /**
     * Speculative common frequency: the slowest selected core's
     * frequency at the target per-cycle error rate [Hz]. Always
     * >= safeFrequency for perr above the safe threshold.
     */
    double speculativeFrequency(const std::vector<std::size_t> &cores,
                                double perr) const;

    /**
     * The @p count most reliable cores (highest safe f) of the
     * chip — Accordion's control cores under the homogeneous
     * spatio-temporal organization (Fig. 3a).
     */
    std::vector<std::size_t> selectControlCores(std::size_t count) const;

    /**
     * The single most reliable core —
     * selectControlCores(1).front(), precomputed at construction so
     * per-operating-point scans (pareto, baselines) read it without
     * sorting the whole chip each time.
     */
    std::size_t fastestCore() const { return fastestCore_; }

    const vartech::VariationChip &chip() const { return *chip_; }

  private:
    const vartech::VariationChip *chip_;
    const manycore::PowerModel *power_;
    std::vector<ClusterRank> ranking_;
    std::size_t fastestCore_ = 0;
};

} // namespace accordion::core

#endif // ACCORDION_CORE_CORE_SELECTION_HPP
