#include "core_selection.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace accordion::core {

CoreSelector::CoreSelector(const vartech::VariationChip &chip,
                           const manycore::PowerModel &power)
    : chip_(&chip), power_(&power)
{
    const auto &geometry = chip.geometry();
    const double vdd = chip.vddNtv();
    ranking_.reserve(chip.numClusters());
    for (std::size_t k = 0; k < chip.numClusters(); ++k) {
        ClusterRank rank;
        rank.cluster = k;
        rank.safeF = chip.clusterSafeF(k);
        double watts = power.uncorePowerPerCluster(vdd);
        for (std::size_t core : geometry.coresOfCluster(k))
            watts += power.corePower(chip, core, vdd, rank.safeF);
        rank.powerW = watts;
        rank.efficiency = static_cast<double>(
                              geometry.coresPerCluster()) *
            rank.safeF / watts;
        ranking_.push_back(rank);
    }
    std::sort(ranking_.begin(), ranking_.end(),
              [](const ClusterRank &a, const ClusterRank &b) {
                  if (a.efficiency != b.efficiency)
                      return a.efficiency > b.efficiency;
                  return a.cluster < b.cluster;
              });
}

std::vector<std::size_t>
CoreSelector::selectCores(std::size_t n) const
{
    if (n == 0)
        util::fatal("CoreSelector: zero cores requested");
    if (n > chip_->numCores())
        util::fatal("CoreSelector: %zu cores requested, chip has %zu", n,
                    chip_->numCores());
    std::vector<std::size_t> cores;
    cores.reserve(n);
    for (const ClusterRank &rank : ranking_) {
        for (std::size_t core :
             chip_->geometry().coresOfCluster(rank.cluster)) {
            cores.push_back(core);
            if (cores.size() == n)
                return cores;
        }
    }
    return cores;
}

double
CoreSelector::safeFrequency(const std::vector<std::size_t> &cores) const
{
    if (cores.empty())
        util::fatal("CoreSelector::safeFrequency: empty selection");
    double f = 1e300;
    for (std::size_t core : cores)
        f = std::min(f, chip_->coreSafeF(core));
    return f;
}

double
CoreSelector::speculativeFrequency(const std::vector<std::size_t> &cores,
                                   double perr) const
{
    if (cores.empty())
        util::fatal("CoreSelector::speculativeFrequency: empty selection");
    double f = 1e300;
    for (std::size_t core : cores)
        f = std::min(f, chip_->coreFrequencyForErrorRate(core, perr));
    return f;
}

std::vector<std::size_t>
CoreSelector::selectControlCores(std::size_t count) const
{
    std::vector<std::size_t> all(chip_->numCores());
    for (std::size_t c = 0; c < all.size(); ++c)
        all[c] = c;
    std::sort(all.begin(), all.end(),
              [this](std::size_t a, std::size_t b) {
                  const double fa = chip_->coreSafeF(a);
                  const double fb = chip_->coreSafeF(b);
                  if (fa != fb)
                      return fa > fb;
                  return a < b;
              });
    if (count > all.size())
        util::fatal("CoreSelector: %zu control cores requested, chip has "
                    "%zu cores", count, all.size());
    all.resize(count);
    return all;
}

} // namespace accordion::core
