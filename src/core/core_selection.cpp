#include "core_selection.hpp"

#include <algorithm>
#include <span>

#include "util/log.hpp"

namespace accordion::core {

CoreSelector::CoreSelector(const vartech::VariationChip &chip,
                           const manycore::PowerModel &power)
    : chip_(&chip), power_(&power)
{
    const auto &geometry = chip.geometry();
    const double vdd = chip.vddNtv();
    // One batch query per column instead of per-core accessor calls:
    // cluster safe frequencies and per-core static powers are read as
    // whole-chip arrays; the dynamic term is per-core invariant at
    // the cluster clock and hoisted out of the inner loop. The
    // accumulation order (uncore, then dynamic + static per core in
    // index order) matches the historical scalar loop bit for bit.
    const std::span<const double> cluster_safe_f = chip.clusterSafeFs();
    std::vector<double> static_w(chip.numCores());
    chip.coreStaticPowers(vdd, static_w);
    const std::size_t per_cluster = geometry.coresPerCluster();
    ranking_.reserve(chip.numClusters());
    for (std::size_t k = 0; k < chip.numClusters(); ++k) {
        ClusterRank rank;
        rank.cluster = k;
        rank.safeF = cluster_safe_f[k];
        const double dyn = power.coreDynamicPower(vdd, rank.safeF);
        double watts = power.uncorePowerPerCluster(vdd);
        const std::size_t first = geometry.firstCoreOfCluster(k);
        for (std::size_t core = first; core < first + per_cluster;
             ++core)
            watts += dyn + static_w[core];
        rank.powerW = watts;
        rank.efficiency = static_cast<double>(
                              geometry.coresPerCluster()) *
            rank.safeF / watts;
        ranking_.push_back(rank);
    }
    std::sort(ranking_.begin(), ranking_.end(),
              [](const ClusterRank &a, const ClusterRank &b) {
                  if (a.efficiency != b.efficiency)
                      return a.efficiency > b.efficiency;
                  return a.cluster < b.cluster;
              });

    // The single most reliable core: argmax of safe f with the same
    // lowest-index tiebreak selectControlCores' sort applies, cached
    // so pareto scans read it without re-sorting 288 cores per point.
    const std::span<const double> safe_f = chip.coreSafeFs();
    fastestCore_ = 0;
    for (std::size_t c = 1; c < safe_f.size(); ++c)
        if (safe_f[c] > safe_f[fastestCore_])
            fastestCore_ = c;
}

std::vector<std::size_t>
CoreSelector::selectCores(std::size_t n) const
{
    if (n == 0)
        util::fatal("CoreSelector: zero cores requested");
    if (n > chip_->numCores())
        util::fatal("CoreSelector: %zu cores requested, chip has %zu", n,
                    chip_->numCores());
    std::vector<std::size_t> cores;
    cores.reserve(n);
    for (const ClusterRank &rank : ranking_) {
        for (std::size_t core :
             chip_->geometry().coresOfCluster(rank.cluster)) {
            cores.push_back(core);
            if (cores.size() == n)
                return cores;
        }
    }
    return cores;
}

double
CoreSelector::safeFrequency(const std::vector<std::size_t> &cores) const
{
    if (cores.empty())
        util::fatal("CoreSelector::safeFrequency: empty selection");
    return chip_->minSafeF(cores);
}

double
CoreSelector::speculativeFrequency(const std::vector<std::size_t> &cores,
                                   double perr) const
{
    if (cores.empty())
        util::fatal("CoreSelector::speculativeFrequency: empty selection");
    // Gathered reduction with the error-rate inversion's z* hoisted
    // once for the whole selection instead of per core.
    return chip_->minFrequencyForErrorRate(perr, cores);
}

std::vector<std::size_t>
CoreSelector::selectControlCores(std::size_t count) const
{
    std::vector<std::size_t> all(chip_->numCores());
    for (std::size_t c = 0; c < all.size(); ++c)
        all[c] = c;
    const std::span<const double> safe_f = chip_->coreSafeFs();
    std::sort(all.begin(), all.end(),
              [safe_f](std::size_t a, std::size_t b) {
                  const double fa = safe_f[a];
                  const double fb = safe_f[b];
                  if (fa != fb)
                      return fa > fb;
                  return a < b;
              });
    if (count > all.size())
        util::fatal("CoreSelector: %zu control cores requested, chip has "
                    "%zu cores", count, all.size());
    all.resize(count);
    return all;
}

} // namespace accordion::core
