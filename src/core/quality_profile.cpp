#include "quality_profile.hpp"

#include <algorithm>
#include <array>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::core {

util::PiecewiseLinear
ProfileCurve::interp() const
{
    return util::PiecewiseLinear(psRatio, qRatio);
}

QualityProfile
QualityProfile::measure(const rms::Workload &workload, std::uint64_t seed)
{
    ACC_SCOPED_TIMER("quality.measure");
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.counter("quality.profiles").inc();
    const obs::Counter kernel_runs =
        registry.counter("quality.kernel_runs");

    QualityProfile profile;
    profile.threads_ = workload.defaultThreads();

    kernel_runs.inc();
    const rms::RunResult reference = workload.runReference(seed);

    rms::RunConfig def;
    def.input = workload.defaultInput();
    def.threads = profile.threads_;
    def.seed = seed;
    kernel_runs.inc();
    const rms::RunResult def_result = workload.run(def);
    profile.psDefault_ = def_result.problemSize;
    profile.qDefault_ = workload.quality(def_result, reference);
    profile.instrPerTaskDefault_ = def_result.taskSet.instrPerTask;
    if (profile.psDefault_ <= 0.0 || profile.qDefault_ <= 0.0)
        util::fatal("QualityProfile: %s has degenerate default point "
                    "(ps=%g, q=%g)", workload.name().c_str(),
                    profile.psDefault_, profile.qDefault_);

    const std::array<fault::FaultPlan, 3> plans = {
        fault::FaultPlan(),
        fault::FaultPlan::dropQuarter(),
        fault::FaultPlan::dropHalf(),
    };
    const std::array<ProfileCurve *, 3> curves = {
        &profile.default_, &profile.quarter_, &profile.half_};

    // The sweep is a (input x {clean, 3 fault scenarios}) matrix of
    // independent, deterministic kernel runs — the hot part of
    // profile measurement. Fan the matrix out on the thread pool
    // into pre-sized slots (bit-identical at any thread count), then
    // assemble the curves serially in sweep order as before.
    const std::vector<double> sweep = workload.inputSweep();
    std::vector<double> ps_ratio(sweep.size());
    std::vector<std::array<double, 3>> quality(sweep.size());
    util::parallelFor(0, sweep.size() * 4, [&](std::size_t job) {
        const std::size_t i = job / 4;
        const std::size_t s = job % 4;
        rms::RunConfig config;
        config.input = sweep[i];
        config.threads = profile.threads_;
        config.seed = seed;
        kernel_runs.inc();
        if (s == 0) {
            // Problem size is scenario-independent; take it from the
            // fault-free run.
            config.fault = fault::FaultPlan();
            ps_ratio[i] =
                workload.run(config).problemSize / profile.psDefault_;
        } else {
            config.fault = plans[s - 1];
            quality[i][s - 1] =
                workload.qualityOf(config, reference) /
                profile.qDefault_;
        }
    });
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        for (std::size_t s = 0; s < 3; ++s) {
            ProfileCurve &curve = *curves[s];
            // PiecewiseLinear needs strictly increasing knots; the
            // sweeps are size-ordered, so collisions only come from
            // quantized tilings — keep the first.
            if (!curve.psRatio.empty() &&
                ps_ratio[i] <= curve.psRatio.back())
                continue;
            curve.psRatio.push_back(ps_ratio[i]);
            curve.qRatio.push_back(quality[i][s]);
        }
    }
    if (profile.default_.psRatio.size() < 2)
        util::fatal("QualityProfile: %s sweep yields < 2 distinct sizes",
                    workload.name().c_str());
    return profile;
}

double
QualityProfile::qualityAt(double ps_ratio, double drop_fraction) const
{
    const double q0 = default_.interp()(ps_ratio);
    if (drop_fraction <= 0.0)
        return q0;
    const double q25 = quarter_.interp()(ps_ratio);
    const double q50 = half_.interp()(ps_ratio);
    if (drop_fraction >= 0.5)
        return q50;
    if (drop_fraction >= 0.25) {
        const double t = (drop_fraction - 0.25) / 0.25;
        return q25 * (1.0 - t) + q50 * t;
    }
    const double t = drop_fraction / 0.25;
    return q0 * (1.0 - t) + q25 * t;
}

double
QualityProfile::speculativeDropFraction() const
{
    const double q25_at_default = quarter_.interp()(1.0);
    // Negligible Drop 1/4 degradation => report the more
    // conservative Drop 1/2 (Section 6.3).
    return q25_at_default > 0.93 ? 0.5 : 0.25;
}

} // namespace accordion::core
