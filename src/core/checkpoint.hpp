/**
 * @file
 * Checkpoint/recovery cost model (Section 4.1). Accordion can still
 * keep checkpoint-recovery as a safety net, but of significantly
 * reduced complexity: data-intensive phases tolerate errors, so
 * only control state needs checkpointing, and the anticipated
 * error-handling frequency is low. This model quantifies that
 * argument with the classic first-order analysis (Young/Daly):
 *
 *   optimal interval  tau* = sqrt(2 C / lambda)
 *   overhead(tau)     = C / tau + lambda * tau / 2
 *
 * where C is the checkpoint cost and lambda the error rate the
 * checkpoints must cover. Under Accordion, lambda contains only
 * the errors that escape containment (control-state corruption),
 * not the raw variation-induced Perr that a conventional
 * worst-case design would have to recover from.
 */

#ifndef ACCORDION_CORE_CHECKPOINT_HPP
#define ACCORDION_CORE_CHECKPOINT_HPP

#include <cstddef>

namespace accordion::core {

/** Checkpoint scheme parameters. */
struct CheckpointParams
{
    double checkpointCostCycles = 5e5; //!< state save cost C
    double recoveryCostCycles = 1e6; //!< rollback + restart cost R
};

/** Derived checkpointing figures for one error-rate regime. */
struct CheckpointPlan
{
    double errorsPerCycle = 0.0; //!< lambda
    double optimalIntervalCycles = 0.0; //!< tau*
    double overheadFraction = 0.0; //!< time lost to ckpt + rework
    double checkpointsPerSecond = 0.0; //!< at the given clock
};

/**
 * First-order optimal checkpointing plan for an error rate
 * @p errors_per_cycle at clock @p f_hz.
 */
CheckpointPlan planCheckpoints(const CheckpointParams &params,
                               double errors_per_cycle, double f_hz);

/**
 * The error rate checkpointing must cover under Accordion: only
 * the fraction of errors that strikes control (CC) execution —
 * data-phase errors surface as Drop and need no rollback.
 *
 * @param perr Raw per-cycle timing error rate at the operating f.
 * @param control_fraction Share of cycles spent in fault-sensitive
 *        control execution.
 */
double accordionCoveredErrorRate(double perr,
                                 double control_fraction);

} // namespace accordion::core

#endif // ACCORDION_CORE_CHECKPOINT_HPP
