#include "accordion.hpp"

#include <algorithm>

#include "manycore/bsp_engine.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::core {

const char *
perfEngineName(PerfEngine engine)
{
    switch (engine) {
    case PerfEngine::Analytic:
        return "analytic";
    case PerfEngine::Event:
        return "event";
    case PerfEngine::Bsp:
        return "bsp";
    }
    return "analytic";
}

std::string
AccordionSystem::Config::key() const
{
    const auto &v = factory.variation;
    const auto &t = factory.timing;
    const auto &s = factory.sram;
    const auto &g = factory.geometry;
    return util::format(
        "seed=%llu chip=%llu "
        "var=%.17g,%.17g,%.17g,%.17g,%.17g "
        "timing=%.17g,%.17g,%.17g "
        "sram=%.17g,%.17g,%.17g,%.17g,%.17g "
        "geo=%zu,%zu,%zu,%zu,%.17g mem_bits=%zu,%zu "
        "power=%.17g,%.17g,%.17g "
        "memsys=%.17g,%.17g,%.17g,%.17g,%.17g,%.17g "
        "perf=%s pareto=%.17g,%.17g,%.17g,%.17g",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(chipId), v.phi,
        v.sigmaVthTotal, v.sigmaLeffTotal, v.systematicFraction,
        v.vthLeffCorrelation, t.gatesPerPath, t.pathsPerCycle,
        t.perrSafe, s.vminBase, s.sigmaCell, s.kVth, s.kLeff,
        s.redundancyPerSqrtMbit, g.clustersX, g.clustersY,
        g.coresPerClusterX, g.coresPerClusterY, g.chipEdgeMm,
        factory.privateMemBits, factory.clusterMemBits, power.budgetW,
        power.clusterMemStaticStvW, power.networkPerClusterStvW,
        memory.privateAccessNs, memory.clusterAccessNs,
        memory.remoteRoundTripNs, memory.busServiceNs,
        memory.torusHopNs, memory.networkFreqGhz,
        perfEngineName(perfEngine), pareto.cpiForErrorBudget,
        pareto.isoTolerance, pareto.perrMin, pareto.perrMax);
}

AccordionSystem::AccordionSystem() : AccordionSystem(Config{}) {}

AccordionSystem::AccordionSystem(Config config)
    : config_(std::move(config)),
      tech_(vartech::Technology::makeItrs11nm())
{
    factory_ = std::make_unique<vartech::ChipFactory>(
        tech_, config_.factory, config_.seed);
    chip_ = std::make_unique<vartech::VariationChip>(
        factory_->make(config_.chipId));
    power_ = std::make_unique<manycore::PowerModel>(tech_,
                                                    config_.power);
    switch (config_.perfEngine) {
    case PerfEngine::Event:
        perf_ = std::make_unique<manycore::EventDrivenPerfModel>(
            config_.memory);
        break;
    case PerfEngine::Bsp:
        perf_ = std::make_unique<manycore::BspPerfModel>(
            config_.memory);
        break;
    case PerfEngine::Analytic:
        perf_ = std::make_unique<manycore::AnalyticPerfModel>(
            config_.memory);
        break;
    }
    pareto_ = std::make_unique<ParetoExtractor>(*chip_, *power_, *perf_,
                                                config_.pareto);
}

const QualityProfile &
AccordionSystem::profile(const std::string &workload)
{
    auto it = profiles_.find(workload);
    if (it == profiles_.end()) {
        util::inform("measuring quality profile of %s", workload.c_str());
        it = profiles_
                 .emplace(workload,
                          QualityProfile::measure(
                              rms::findWorkload(workload), config_.seed))
                 .first;
    }
    return it->second;
}

double
AccordionSystem::bestEfficiencyGain(const std::string &workload)
{
    const rms::Workload &w = rms::findWorkload(workload);
    const QualityProfile &prof = profile(workload);
    const StvBaseline base = pareto_->baseline(w, prof);
    double best = 0.0;
    for (const OperatingPoint &point :
         pareto_->extract(w, prof, Flavor::Speculative))
        if (point.feasible && point.withinBudget)
            best = std::max(best, point.efficiencyRatio(base));
    return best;
}

} // namespace accordion::core
