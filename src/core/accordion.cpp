#include "accordion.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace accordion::core {

AccordionSystem::AccordionSystem() : AccordionSystem(Config{}) {}

AccordionSystem::AccordionSystem(Config config)
    : config_(std::move(config)),
      tech_(vartech::Technology::makeItrs11nm())
{
    factory_ = std::make_unique<vartech::ChipFactory>(
        tech_, config_.factory, config_.seed);
    chip_ = std::make_unique<vartech::VariationChip>(
        factory_->make(config_.chipId));
    power_ = std::make_unique<manycore::PowerModel>(tech_,
                                                    config_.power);
    if (config_.eventDrivenPerf)
        perf_ = std::make_unique<manycore::EventDrivenPerfModel>(
            config_.memory);
    else
        perf_ = std::make_unique<manycore::AnalyticPerfModel>(
            config_.memory);
    pareto_ = std::make_unique<ParetoExtractor>(*chip_, *power_, *perf_,
                                                config_.pareto);
}

const QualityProfile &
AccordionSystem::profile(const std::string &workload)
{
    auto it = profiles_.find(workload);
    if (it == profiles_.end()) {
        util::inform("measuring quality profile of %s", workload.c_str());
        it = profiles_
                 .emplace(workload,
                          QualityProfile::measure(
                              rms::findWorkload(workload), config_.seed))
                 .first;
    }
    return it->second;
}

double
AccordionSystem::bestEfficiencyGain(const std::string &workload)
{
    const rms::Workload &w = rms::findWorkload(workload);
    const QualityProfile &prof = profile(workload);
    const StvBaseline base = pareto_->baseline(w, prof);
    double best = 0.0;
    for (const OperatingPoint &point :
         pareto_->extract(w, prof, Flavor::Speculative))
        if (point.feasible && point.withinBudget)
            best = std::max(best, point.efficiencyRatio(base));
    return best;
}

} // namespace accordion::core
