#include "domain.hpp"

namespace accordion::obs {

StatsDomain::StatsDomain(StatsRegistry &parent, std::string name)
    : parent_(&parent), name_(std::move(name)),
      local_(parent.enabled())
{
}

StatsDomain::StatsDomain(StatsDomain &parent, std::string name)
    : StatsDomain(parent.registry(), std::move(name))
{
}

StatsDomain::~StatsDomain()
{
    merge();
}

void
StatsDomain::merge()
{
    if (closed_)
        return;
    closed_ = true;
    if (local_.enabled() && local_.size() > 0)
        parent_->absorb(local_.snapshot());
}

void
StatsDomain::discard()
{
    local_.reset();
    closed_ = true;
}

} // namespace accordion::obs
