#include "profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>

#include "trace.hpp"

#if defined(__linux__)
#include <cerrno>
#include <csignal>
#include <ctime>
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <ucontext.h>
#endif

namespace accordion::obs {

namespace {

/** Hard cap on recorded stack depth (bounds handler stack usage). */
constexpr std::size_t kFrameCap = 128;

/**
 * One thread's sample log: a flat word arena the signal handler
 * appends [ts][interrupted_pc][depth][pc...] records to. Only the
 * owning thread writes; readers load head with acquire after stop()
 * so every record word is visible.
 */
struct ThreadArena
{
    std::atomic<std::uint64_t> head{0}; //!< words used
    std::vector<std::uint64_t> words;
};

} // namespace

/** Everything one start()..stop() session owns. */
struct ProfilerSession
{
    ProfilerOptions options;
    std::uint64_t generation = 0;
    std::vector<std::unique_ptr<ThreadArena>> arenas;
    std::atomic<std::size_t> claimed{0};
    std::atomic<std::uint64_t> dropped{0};
#if defined(__linux__)
    timer_t timer{};
    struct sigaction oldAction{};
#endif
};

namespace {

/** The running session the handler samples into; null = off. */
std::atomic<ProfilerSession *> g_active{nullptr};

/** Process-wide "a profiler is armed" latch (SIGPROF is global). */
std::atomic<bool> g_armed{false};

/** Session generation source; slot generations compare against it. */
std::atomic<std::uint64_t> g_generation{0};

/**
 * The calling thread's claimed arena, keyed by session generation
 * so a stale slot from a finished session is never reused (the
 * session pointer itself could be reallocated at the same address).
 * Plain POD with constant initialization: safe to touch from the
 * signal handler.
 */
struct ThreadSlot
{
    std::uint64_t generation;
    ThreadArena *arena;
};
thread_local ThreadSlot t_slot{0, nullptr};

#if defined(__linux__)

/** Interrupted program counter from the signal context; 0 when the
 *  architecture is not recognized. */
std::uint64_t
contextPc(void *ctx)
{
    if (!ctx)
        return 0;
    auto *uc = static_cast<ucontext_t *>(ctx);
#if defined(__x86_64__)
    return static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
    return static_cast<std::uint64_t>(uc->uc_mcontext.pc);
#else
    (void)uc;
    return 0;
#endif
}

/**
 * The SIGPROF handler. Async-signal-safe by construction: it only
 * touches preallocated memory, lock-free atomics, backtrace()
 * (primed at start() so its one-time dynamic-loader work is done),
 * and clock_gettime. No locks, no allocation, no I/O.
 */
void
sigprofHandler(int, siginfo_t *, void *ctx)
{
    const int saved_errno = errno;
    ProfilerSession *session =
        g_active.load(std::memory_order_acquire);
    if (session) {
        ThreadSlot &slot = t_slot;
        if (slot.generation != session->generation) {
            const std::size_t idx = session->claimed.fetch_add(
                1, std::memory_order_acq_rel);
            slot.arena = idx < session->arenas.size()
                             ? session->arenas[idx].get()
                             : nullptr;
            slot.generation = session->generation;
        }
        ThreadArena *arena = slot.arena;
        if (!arena) {
            // More threads than maxThreads: count, don't crash.
            session->dropped.fetch_add(1, std::memory_order_relaxed);
        } else {
            void *frames[kFrameCap];
            const int depth = ::backtrace(
                frames,
                static_cast<int>(session->options.maxFrames));
            struct timespec ts;
            clock_gettime(CLOCK_MONOTONIC, &ts);
            const std::uint64_t now =
                static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
                static_cast<std::uint64_t>(ts.tv_nsec);
            const std::uint64_t head =
                arena->head.load(std::memory_order_relaxed);
            const std::uint64_t need =
                3 + static_cast<std::uint64_t>(depth > 0 ? depth : 0);
            if (head + need > arena->words.size()) {
                session->dropped.fetch_add(1,
                                           std::memory_order_relaxed);
            } else {
                std::uint64_t *w = arena->words.data() + head;
                w[0] = now;
                w[1] = contextPc(ctx);
                w[2] = static_cast<std::uint64_t>(depth > 0 ? depth
                                                            : 0);
                for (int i = 0; i < depth; ++i)
                    w[3 + i] = reinterpret_cast<std::uint64_t>(
                        frames[i]);
                // Release so a reader that acquires head sees the
                // whole record.
                arena->head.store(head + need,
                                  std::memory_order_release);
            }
        }
    }
    errno = saved_errno;
}

/** Cached symbol resolution of one sampled address. */
const std::string &
symbolOf(std::uint64_t pc,
         std::unordered_map<std::uint64_t, std::string> *cache)
{
    auto it = cache->find(pc);
    if (it != cache->end())
        return it->second;
    std::string name;
    Dl_info info;
    std::memset(&info, 0, sizeof(info));
    // backtrace() records return addresses; resolve the call site
    // (pc - 1) so a call as a function's last instruction does not
    // attribute to the *next* symbol.
    if (dladdr(reinterpret_cast<void *>(pc - 1), &info) &&
        info.dli_sname) {
        int status = 0;
        char *dem = abi::__cxa_demangle(info.dli_sname, nullptr,
                                        nullptr, &status);
        name = (status == 0 && dem) ? dem : info.dli_sname;
        std::free(dem);
    } else if (info.dli_fname) {
        // No symbol (static function or stripped object): name the
        // containing image so the frame is still attributable.
        const char *base = std::strrchr(info.dli_fname, '/');
        name = std::string("[") + (base ? base + 1 : info.dli_fname) +
               "]";
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(pc));
        name = buf;
    }
    // Semicolon and newline are the folded format's structure.
    for (char &c : name)
        if (c == ';' || c == '\n')
            c = ':';
    return cache->emplace(pc, std::move(name)).first->second;
}

#endif // __linux__

/** Iterate the raw records of a session: fn(ts, pc, pcs, depth). */
template <typename Fn>
void
forEachRecord(const ProfilerSession *session, Fn &&fn)
{
    if (!session)
        return;
    const std::size_t threads = std::min(
        session->claimed.load(std::memory_order_acquire),
        session->arenas.size());
    for (std::size_t t = 0; t < threads; ++t) {
        const ThreadArena &arena = *session->arenas[t];
        const std::uint64_t head =
            arena.head.load(std::memory_order_acquire);
        std::uint64_t i = 0;
        while (i + 3 <= head) {
            const std::uint64_t depth = arena.words[i + 2];
            if (i + 3 + depth > head)
                break; // torn tail (stop raced a writer): drop it
            fn(arena.words[i], arena.words[i + 1],
               &arena.words[i + 3], static_cast<std::size_t>(depth));
            i += 3 + depth;
        }
    }
}

} // namespace

SamplingProfiler::SamplingProfiler() = default;

SamplingProfiler::~SamplingProfiler()
{
    stop();
    delete session_;
}

bool
SamplingProfiler::running() const
{
    return running_;
}

bool
SamplingProfiler::start(const ProfilerOptions &options)
{
#if !defined(__linux__)
    (void)options;
    return false;
#else
    if (running_)
        return false;
    bool expected = false;
    if (!g_armed.compare_exchange_strong(expected, true))
        return false; // another profiler is armed

    // Prime backtrace(): its first call loads libgcc's unwinder,
    // which allocates — do that here, never in the handler.
    void *prime[4];
    ::backtrace(prime, 4);

    delete session_; // previous session's samples
    session_ = nullptr;
    auto session = std::make_unique<ProfilerSession>();
    session->options = options;
    session->options.maxFrames =
        std::clamp<std::size_t>(session->options.maxFrames, 2,
                                kFrameCap);
    session->options.intervalUs =
        std::max<std::uint64_t>(50, session->options.intervalUs);
    session->options.maxThreads =
        std::max<std::size_t>(1, session->options.maxThreads);
    session->options.arenaWords = std::max<std::size_t>(
        64, session->options.arenaWords);
    session->generation =
        g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
    session->arenas.reserve(session->options.maxThreads);
    for (std::size_t i = 0; i < session->options.maxThreads; ++i) {
        auto arena = std::make_unique<ThreadArena>();
        arena->words.resize(session->options.arenaWords);
        session->arenas.push_back(std::move(arena));
    }

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = sigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, &session->oldAction) != 0) {
        g_armed.store(false);
        return false;
    }

    g_active.store(session.get(), std::memory_order_release);

    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_SIGNAL;
    sev.sigev_signo = SIGPROF;
    // Prefer the process CPU clock (samples track work, not sleep);
    // fall back to wall time where the kernel refuses it.
    if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev,
                     &session->timer) != 0 &&
        timer_create(CLOCK_MONOTONIC, &sev, &session->timer) != 0) {
        g_active.store(nullptr, std::memory_order_release);
        sigaction(SIGPROF, &session->oldAction, nullptr);
        g_armed.store(false);
        return false;
    }
    struct itimerspec its;
    std::memset(&its, 0, sizeof(its));
    its.it_interval.tv_sec =
        static_cast<time_t>(session->options.intervalUs / 1000000);
    its.it_interval.tv_nsec = static_cast<long>(
        (session->options.intervalUs % 1000000) * 1000);
    its.it_value = its.it_interval;
    timer_settime(session->timer, 0, &its, nullptr);

    session_ = session.release();
    running_ = true;
    return true;
#endif
}

void
SamplingProfiler::stop()
{
    if (!running_)
        return;
#if defined(__linux__)
    // Order matters: quiesce the handler first, then disarm. A
    // handler mid-flight keeps writing into the session's arenas,
    // which stay allocated until the next start() — its sample is
    // simply included or not.
    g_active.store(nullptr, std::memory_order_release);
    timer_delete(session_->timer);
    sigaction(SIGPROF, &session_->oldAction, nullptr);
#endif
    running_ = false;
    g_armed.store(false);
}

std::uint64_t
SamplingProfiler::sampleCount() const
{
    std::uint64_t n = 0;
    forEachRecord(session_, [&](std::uint64_t, std::uint64_t,
                                const std::uint64_t *,
                                std::size_t) { ++n; });
    return n;
}

std::uint64_t
SamplingProfiler::droppedSamples() const
{
    return session_
               ? session_->dropped.load(std::memory_order_relaxed)
               : 0;
}

std::size_t
SamplingProfiler::sampledThreads() const
{
    if (!session_)
        return 0;
    const std::size_t threads =
        std::min(session_->claimed.load(std::memory_order_acquire),
                 session_->arenas.size());
    std::size_t active = 0;
    for (std::size_t t = 0; t < threads; ++t)
        if (session_->arenas[t]->head.load(
                std::memory_order_acquire) > 0)
            ++active;
    return active;
}

void
SamplingProfiler::decodeSamples(
    std::vector<std::vector<std::string>> *stacks,
    std::vector<std::uint64_t> *when_ns) const
{
    stacks->clear();
    when_ns->clear();
#if defined(__linux__)
    std::unordered_map<std::uint64_t, std::string> cache;
    forEachRecord(session_, [&](std::uint64_t ts, std::uint64_t ctx_pc,
                                const std::uint64_t *pcs,
                                std::size_t depth) {
        // backtrace() from inside the handler prepends the handler
        // and the kernel's signal trampoline. The interrupted pc
        // (from ucontext) marks where the real stack resumes; when
        // it is not found fall back to the conventional two-frame
        // strip.
        std::size_t begin = 0;
        if (ctx_pc != 0) {
            bool found = false;
            for (std::size_t f = 0; f < depth; ++f)
                if (pcs[f] == ctx_pc) {
                    begin = f;
                    found = true;
                    break;
                }
            if (!found && depth > 2)
                begin = 2;
        } else if (depth > 2) {
            begin = 2;
        }
        std::vector<std::string> frames;
        frames.reserve(depth - begin);
        for (std::size_t f = begin; f < depth; ++f)
            frames.push_back(symbolOf(pcs[f], &cache));
        if (frames.empty())
            frames.push_back("[truncated]");
        stacks->push_back(std::move(frames));
        when_ns->push_back(ts);
    });
#endif
}

std::vector<FoldedStack>
SamplingProfiler::foldSymbolized(
    const std::vector<std::vector<std::string>> &leaf_first)
{
    std::map<std::string, std::uint64_t> counts;
    for (const std::vector<std::string> &stack : leaf_first) {
        std::string folded;
        for (std::size_t i = stack.size(); i-- > 0;) {
            if (!folded.empty())
                folded += ';';
            folded += stack[i];
        }
        ++counts[folded];
    }
    std::vector<FoldedStack> out;
    out.reserve(counts.size());
    for (auto &[stack, count] : counts)
        out.push_back(FoldedStack{stack, count});
    std::sort(out.begin(), out.end(),
              [](const FoldedStack &a, const FoldedStack &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.stack < b.stack;
              });
    return out;
}

std::vector<FoldedStack>
SamplingProfiler::folded() const
{
    std::vector<std::vector<std::string>> stacks;
    std::vector<std::uint64_t> when;
    decodeSamples(&stacks, &when);
    return foldSymbolized(stacks);
}

std::string
SamplingProfiler::foldedText() const
{
    std::string out;
    for (const FoldedStack &f : folded()) {
        out += f.stack;
        out += ' ';
        out += std::to_string(f.count);
        out += '\n';
    }
    return out;
}

bool
SamplingProfiler::writeFolded(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string text = foldedText();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), file) == text.size();
    return std::fclose(file) == 0 && ok;
}

std::vector<SelfTimeEntry>
SamplingProfiler::selfTimes(std::size_t top_n) const
{
    std::vector<std::vector<std::string>> stacks;
    std::vector<std::uint64_t> when;
    decodeSamples(&stacks, &when);
    std::map<std::string, std::uint64_t> self;
    for (const std::vector<std::string> &stack : stacks)
        ++self[stack.front()]; // leaf frame owns the sample
    std::vector<SelfTimeEntry> out;
    out.reserve(self.size());
    const double total =
        stacks.empty() ? 1.0 : static_cast<double>(stacks.size());
    for (auto &[symbol, samples] : self)
        out.push_back(SelfTimeEntry{
            symbol, samples, static_cast<double>(samples) / total});
    std::sort(out.begin(), out.end(),
              [](const SelfTimeEntry &a, const SelfTimeEntry &b) {
                  if (a.samples != b.samples)
                      return a.samples > b.samples;
                  return a.symbol < b.symbol;
              });
    if (out.size() > top_n)
        out.resize(top_n);
    return out;
}

std::size_t
SamplingProfiler::injectTraceSamples(TraceWriter *writer) const
{
    if (!writer)
        return 0;
    std::vector<std::vector<std::string>> stacks;
    std::vector<std::uint64_t> when;
    decodeSamples(&stacks, &when);
    for (std::size_t i = 0; i < stacks.size(); ++i)
        writer->instant("profiler", stacks[i].front(), when[i]);
    return stacks.size();
}

} // namespace accordion::obs
