/**
 * @file
 * The instrumentation layer's time source. Every timer and trace
 * span reads obs::nowNs() instead of std::chrono directly so tests
 * can install a fake clock and assert exact durations; production
 * code never notices (the default is steady_clock).
 *
 * The obs module sits *below* util (util::ThreadPool emits spans
 * and counters), so nothing here may include util headers.
 */

#ifndef ACCORDION_OBS_CLOCK_HPP
#define ACCORDION_OBS_CLOCK_HPP

#include <cstdint>
#include <string>

namespace accordion::obs {

/** Monotonic nanosecond clock interface (injectable for tests). */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic timestamp in nanoseconds. */
    virtual std::uint64_t nowNs() const = 0;
};

/** The production clock: std::chrono::steady_clock. */
const Clock &steadyClock();

/**
 * Install a clock override (tests only); nullptr restores the
 * steady clock. Not synchronized against concurrent nowNs()
 * callers — install before spawning instrumented work.
 */
void setClock(const Clock *clock);

/** Read the current (possibly overridden) clock. */
std::uint64_t nowNs();

/**
 * Name the calling thread for the trace writer ("main",
 * "worker-3"). Thread-local; empty until set.
 */
void setCurrentThreadName(std::string name);

/** The calling thread's name; empty when never set. */
const std::string &currentThreadName();

} // namespace accordion::obs

#endif // ACCORDION_OBS_CLOCK_HPP
