/**
 * @file
 * Scoped statistics domains: a StatsDomain owns a private
 * StatsRegistry for one unit of work (an experiment, a profiled
 * scenario, later one server request) and folds everything it
 * collected into the parent registry when the scope exits. Stats
 * keep their dotted names across the merge — the hierarchy is the
 * *lifetime* nesting, not a name prefix — so a domain's counters
 * land on the same parent cells direct registration would have
 * used, by the mergeStatEntry() rules (counters add, gauges keep
 * the latest level, distributions pool stride-aware).
 *
 * Cost model: the domain's registry is enabled iff the parent was
 * enabled at construction, so handles handed out under a disabled
 * parent are disengaged and the whole mechanism keeps the
 * zero-overhead-when-off contract. The merge itself is one
 * snapshot + absorb, paid once per scope.
 *
 * Domains nest: construct a child from another domain's registry()
 * and the child's stats cascade upward scope by scope.
 */

#ifndef ACCORDION_OBS_DOMAIN_HPP
#define ACCORDION_OBS_DOMAIN_HPP

#include <string>

#include "stats.hpp"

namespace accordion::obs {

/** One merge-on-exit stats scope. */
class StatsDomain
{
  public:
    /**
     * Open a domain under @p parent. @p name labels the scope (for
     * logs and snapshots); it does not prefix stat names.
     */
    explicit StatsDomain(StatsRegistry &parent,
                         std::string name = "domain");

    /** Nested scope under another domain. */
    StatsDomain(StatsDomain &parent, std::string name);

    /** Merges into the parent unless merge()/discard() already ran. */
    ~StatsDomain();

    StatsDomain(const StatsDomain &) = delete;
    StatsDomain &operator=(const StatsDomain &) = delete;

    /** The scope's own registry; register stats against this. */
    StatsRegistry &registry() { return local_; }

    const std::string &name() const { return name_; }

    // Registration shorthands, mirroring StatsRegistry.
    Counter counter(const std::string &n) { return local_.counter(n); }
    Gauge gauge(const std::string &n) { return local_.gauge(n); }
    Distribution distribution(const std::string &n)
    {
        return local_.distribution(n);
    }

    /**
     * Fold the collected stats into the parent now and close the
     * scope (the destructor then merges nothing, and later updates
     * through this domain's handles are not forwarded). Useful when
     * the parent must be read while the scope object is still
     * alive.
     */
    void merge();

    /** Drop everything collected; the destructor merges nothing. */
    void discard();

  private:
    StatsRegistry *parent_;
    std::string name_;
    StatsRegistry local_;
    bool closed_ = false;
};

} // namespace accordion::obs

#endif // ACCORDION_OBS_DOMAIN_HPP
