/**
 * @file
 * Hardware PMU counters via Linux perf_event_open(2): per-thread
 * counter sets (cycles, instructions, cache-references/misses,
 * branches/misses, task-clock by default; `ACCORDION_PERF_EVENTS`
 * replaces the list with named or raw `r<hex>` events), read as
 * deltas by RAII scoped regions and published into the global stats
 * registry as `hw.<scope>.<event>` counters plus derived gauges
 * `hw.<scope>.ipc` and `hw.<scope>.mpki`.
 *
 * Events are opened standalone (one fd each, not one kernel group):
 * a seven-event group either schedules atomically or never runs on
 * a small PMU, while standalone fds degrade per event — the kernel
 * multiplexes, and reads carry TIME_ENABLED/TIME_RUNNING so deltas
 * are scaled back to full-speed estimates. We trade simultaneity
 * for robustness; region deltas are estimates, not exact sections.
 *
 * Degradation contract (EACCES / ENOENT / perf_event_paranoid, or a
 * non-Linux build): engagement fails event-by-event, one stderr
 * note total, and every region/sample call collapses to a relaxed
 * atomic load and branch. Nothing else in the run changes — no
 * stats appear, no bytes of any output differ.
 *
 * Cost model when engaged: a region endpoint is one read(2) per
 * live event on the calling thread (sub-microsecond); publishing
 * takes the registry mutex once per event name. Keep regions at
 * phase granularity, not per-iteration.
 */

#ifndef ACCORDION_OBS_PERF_EVENTS_HPP
#define ACCORDION_OBS_PERF_EVENTS_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace accordion::obs {

/** Most events a thread set will hold; extras are dropped with a note. */
inline constexpr std::size_t kMaxPerfEvents = 16;

/** One event to count: a stats suffix plus the kernel identity. */
struct PerfEventSpec
{
    std::string name; //!< stat suffix ("instructions", "r01c2")
    std::uint32_t type = 0; //!< PERF_TYPE_HARDWARE / _SOFTWARE / _RAW
    std::uint64_t config = 0; //!< PERF_COUNT_* or raw descriptor
};

/** The default seven-event set (see file comment). */
std::vector<PerfEventSpec> defaultPerfEventSpecs();

/**
 * Parse a comma-separated event list ("cycles,instructions,r01c2").
 * Known aliases (hyphens or underscores) map to hardware/software
 * events; `r<hex>` is a raw PERF_TYPE_RAW config. Unknown entries
 * are appended to @p rejected (when non-null) and dropped.
 */
std::vector<PerfEventSpec> parsePerfEventList(
    const std::string &text, std::vector<std::string> *rejected);

/** Per-event probe outcome after engagement. */
struct PerfEventStatus
{
    PerfEventSpec spec;
    bool available = false;
    int error = 0; //!< errno when !available (0 = never probed)
};

/** A point-in-time reading of the calling thread's event set. */
struct HwSample
{
    std::size_t n = 0; //!< live events (== hwEventNames().size())
    /** Multiplex-scaled cumulative values, in hwEventNames() order. */
    std::array<double, kMaxPerfEvents> values{};
};

/**
 * Engage hardware counters process-wide: resolve the event list
 * (`ACCORDION_PERF_EVENTS` replaces the defaults when set), probe
 * and attach the calling thread, and print at most one stderr note
 * naming any unavailable events. Threads attach lazily on first
 * sample (the pool also attaches workers at spawn). Idempotent;
 * returns hwEngaged().
 */
bool hwEngage();

/** Drop engagement: future samples/regions are no-ops. Re-engage
 *  re-probes (tests exercise the degraded path this way). */
void hwDisengage();

/** True when at least one requested event opened successfully. */
bool hwEngaged();

/** Stat suffixes of the live (successfully opened) events. */
std::vector<std::string> hwEventNames();

/** Probe outcome for every requested event (empty before engage). */
std::vector<PerfEventStatus> hwEventStatus();

/** /proc/sys/kernel/perf_event_paranoid, or -100 when unreadable. */
int hwParanoidLevel();

/**
 * Open this thread's event set now instead of on first sample.
 * No-op when disengaged. ThreadPool workers call this at spawn so
 * pooled work is counted from the first task.
 */
void hwAttachCurrentThread();

/**
 * Read the calling thread's counters (attaching if needed). False
 * and untouched @p out when disengaged or nothing opened.
 */
bool hwSampleNow(HwSample *out);

/**
 * Publish an end-begin delta under @p scope: each live event adds
 * `hw.<scope>.<event>` to the global stats registry, then the
 * cumulative totals refresh `hw.<scope>.ipc` (instructions/cycles)
 * and `hw.<scope>.mpki` (cache misses per kilo-instruction) when
 * their inputs are being counted. Negative per-event deltas (PMU
 * wrap, scaling jitter) clamp to zero. No-op when the registry is
 * disabled.
 */
void hwPublishDelta(const std::string &scope, const HwSample &begin,
                    const HwSample &end);

/**
 * Machine block for run_summary.json's environment section:
 * {"engaged": bool, "paranoid": N, "events": {"cycles": "ok", ...}}
 * — event values are "ok" or an errno name. "events" is {} before
 * engagement was ever attempted.
 */
std::string hwAvailabilityJson();

/**
 * One-line human summary for snapshot environments: "off" before
 * any engage attempt, "unavailable (<errno name>)" when nothing
 * opened, else the live event names joined by commas.
 */
std::string hwSummary();

/**
 * RAII region: samples at construction and destruction and
 * publishes the delta under @p name. Two branches total when
 * disengaged or the registry is disabled.
 */
class ScopedHwRegion
{
  public:
    explicit ScopedHwRegion(const char *name);
    ~ScopedHwRegion();

    ScopedHwRegion(const ScopedHwRegion &) = delete;
    ScopedHwRegion &operator=(const ScopedHwRegion &) = delete;

  private:
    const char *name_;
    bool active_ = false;
    HwSample begin_;
};

} // namespace accordion::obs

#define ACC_OBS_HW_CONCAT2(a, b) a##b
#define ACC_OBS_HW_CONCAT(a, b) ACC_OBS_HW_CONCAT2(a, b)

/** Count hardware events over the rest of the enclosing scope. */
#define ACC_SCOPED_HW(name)                                           \
    ::accordion::obs::ScopedHwRegion ACC_OBS_HW_CONCAT(accObsHw_,     \
                                                       __LINE__)(name)

#endif // ACCORDION_OBS_PERF_EVENTS_HPP
