#include "metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "trace.hpp"

namespace accordion::obs {

std::string
prometheusMetricName(const std::string &name)
{
    std::string out = "accordion_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool legal = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' ||
                           c == ':';
        out += legal ? c : '_';
    }
    return out;
}

namespace {

/** A double in exposition format (%.17g round-trips). */
std::string
promNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
prometheusText(const std::vector<StatEntry> &entries)
{
    std::string out;
    for (const StatEntry &e : entries) {
        const std::string metric = prometheusMetricName(e.name);
        out += "# HELP " + metric + " accordion stat " + e.name + "\n";
        switch (e.kind) {
        case StatKind::Counter:
            out += "# TYPE " + metric + " counter\n";
            out += metric + " " + std::to_string(e.count) + "\n";
            break;
        case StatKind::Gauge:
            out += "# TYPE " + metric + " gauge\n";
            out += metric + " " + promNumber(e.value) + "\n";
            break;
        case StatKind::Distribution:
            out += "# TYPE " + metric + " summary\n";
            out += metric + "{quantile=\"0.5\"} " +
                   promNumber(e.p50()) + "\n";
            out += metric + "{quantile=\"0.95\"} " +
                   promNumber(e.p95()) + "\n";
            out += metric + "{quantile=\"0.99\"} " +
                   promNumber(e.p99()) + "\n";
            out += metric + "_sum " + promNumber(e.sum) + "\n";
            out += metric + "_count " + std::to_string(e.count) +
                   "\n";
            break;
        }
    }
    return out;
}

MetricsExporter::MetricsExporter(StatsRegistry &registry,
                                 Options options)
    : registry_(registry), options_(std::move(options))
{
    options_.intervalMs =
        std::max<std::uint64_t>(1, options_.intervalMs);
    flushNow(); // fail fast on an unwritable path
    // A failed first flush means every future file write would fail
    // the same way: don't start a thread whose only job is to fail.
    if (ok())
        thread_ = std::thread([this] { loop(); });
}

MetricsExporter::~MetricsExporter()
{
    stopAndFlush();
}

void
MetricsExporter::flushNow()
{
    const std::vector<StatEntry> entries = registry_.snapshot();

    if (!options_.path.empty() &&
        ok_.load(std::memory_order_relaxed)) {
        // Write-then-rename: a reader of `path` sees either the
        // previous complete exposition or this one, never a tear.
        const std::string tmp = options_.path + ".tmp";
        std::FILE *file = std::fopen(tmp.c_str(), "w");
        bool wrote = false;
        if (file) {
            const std::string text = prometheusText(entries);
            wrote = std::fwrite(text.data(), 1, text.size(), file) ==
                    text.size();
            wrote = (std::fclose(file) == 0) && wrote;
            if (wrote)
                wrote = std::rename(tmp.c_str(),
                                    options_.path.c_str()) == 0;
        }
        if (!wrote)
            ok_.store(false, std::memory_order_relaxed);
    }

    if (TraceWriter *trace = TraceWriter::global()) {
        const std::uint64_t now = nowNs();
        for (const StatEntry &e : entries) {
            if (e.kind == StatKind::Distribution)
                continue;
            // hw.* series (PMU counters and derived IPC/MPKI
            // gauges) always mirror; other counters only when
            // configured, other gauges never.
            const bool isHw = e.name.compare(0, 3, "hw.") == 0;
            bool mirror = isHw;
            if (!mirror && e.kind == StatKind::Counter)
                for (const std::string &want :
                     options_.traceCounters)
                    if (e.name == want) {
                        mirror = true;
                        break;
                    }
            if (mirror)
                trace->counter(e.name, now,
                               e.kind == StatKind::Counter
                                   ? static_cast<double>(e.count)
                                   : e.value);
        }
    }

    flushes_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsExporter::stopAndFlush()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_ && !thread_.joinable())
            return;
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    flushNow();
}

void
MetricsExporter::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock,
                     std::chrono::milliseconds(options_.intervalMs),
                     [this] { return stop_; });
        if (stop_)
            break;
        lock.unlock();
        flushNow();
        lock.lock();
    }
}

} // namespace accordion::obs
