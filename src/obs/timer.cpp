#include "timer.hpp"

#include <string>

namespace accordion::obs {

ScopedTimer::ScopedTimer(const char *name, StatsRegistry &registry,
                         TraceWriter *trace)
    : name_(name), registry_(&registry), trace_(trace)
{
    active_ = registry_->enabled() || trace_ != nullptr;
    if (active_)
        startNs_ = nowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (!active_)
        return;
    const std::uint64_t end = nowNs();
    const std::uint64_t dur = end > startNs_ ? end - startNs_ : 0;
    registry_
        ->distribution(std::string("time.") + name_ + "_ns")
        .add(static_cast<double>(dur));
    if (trace_)
        trace_->span("phase", name_, startNs_, end);
}

} // namespace accordion::obs
