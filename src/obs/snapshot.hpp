/**
 * @file
 * Schema-versioned performance snapshots ("accordion-perf-snapshot-
 * v2"; v1 still parses): the longitudinal counterpart of the stats
 * registry. `accordion perf` records one PerfSnapshot per run —
 * per-scenario wall times over R repetitions, throughput rates
 * derived from the instrumentation counters, phase-timer quantiles,
 * pool utilization, and environment metadata (git SHA, compiler,
 * flags, CPU) — and lands it as BENCH_<n>.json at the repo root so
 * `accordion perf compare` can gate regressions across commits.
 *
 * This module owns the data model, the JSON writer and the JSON
 * reader; the scenario suite and the compare policy live in
 * src/harness/perf.* (obs sits below util and knows nothing about
 * experiments).
 */

#ifndef ACCORDION_OBS_SNAPSHOT_HPP
#define ACCORDION_OBS_SNAPSHOT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats.hpp"

namespace accordion::obs {

/** The snapshot schema this build writes. v2 added the nullable
 *  per-scenario "hw" section (hardware PMU counters + derived
 *  IPC/MPKI); everything v1 carried is unchanged. */
inline constexpr const char *kPerfSnapshotSchema =
    "accordion-perf-snapshot-v2";

/** The previous schema; still read (its snapshots gate CI). */
inline constexpr const char *kPerfSnapshotSchemaV1 =
    "accordion-perf-snapshot-v1";

/** True for every schema this build can parse (v1 and v2). */
bool perfSnapshotSchemaSupported(const std::string &schema);

/** Quantile-rich summary of one distribution (a time.* stat). */
struct DistributionSummary
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Summarize a distribution StatEntry (count/sum/extrema/quantiles). */
DistributionSummary summarize(const StatEntry &entry);

/** Summarize a raw sample vector (need not be sorted). */
DistributionSummary summarize(std::vector<double> samples);

/** One perf scenario's measurements across the repetitions. */
struct ScenarioRecord
{
    std::string name;
    std::size_t warmup = 0; //!< unrecorded warmup repetitions

    /** Wall time of each recorded repetition, in add order [ns]. */
    std::vector<double> wallNs;

    /** Work-item counters of the final repetition (deterministic,
     *  so every repetition counts the same). */
    std::map<std::string, std::uint64_t> counters;

    /** counters / best (minimum) repetition wall time [items/s]. */
    std::map<std::string, double> throughput;

    /** Phase-timer distributions of the final repetition. */
    std::map<std::string, DistributionSummary> timers;

    /** Level stats of the final repetition (pool utilization). */
    std::map<std::string, double> gauges;

    /** Hardware PMU counters of the final repetition, full stat
     *  names ("hw.scenario.instructions"); empty → "hw": null. */
    std::map<std::string, std::uint64_t> hwCounters;

    /** Derived hardware gauges ("hw.scenario.ipc", ".mpki"). */
    std::map<std::string, double> hwDerived;

    /** True when any hardware counters were captured (v2 "hw"). */
    bool hasHw() const
    {
        return !hwCounters.empty() || !hwDerived.empty();
    }

    /** Best (minimum) repetition wall time; 0 when no reps. */
    double minWallNs() const;

    /** Quantile summary over the repetitions' wall times. */
    DistributionSummary wallSummary() const;
};

/** One recorded perf run: environment + every scenario. */
struct PerfSnapshot
{
    std::string schema = kPerfSnapshotSchema;
    /** git_sha / compiler / flags / build_type / cpu. */
    std::map<std::string, std::string> environment;
    std::uint64_t seed = 0;
    std::size_t threads = 0;
    std::size_t reps = 0;
    double scale = 1.0; //!< scenario size multiplier (CI uses < 1)

    std::vector<ScenarioRecord> scenarios;

    /** Scenario by name; nullptr when absent. */
    const ScenarioRecord *find(const std::string &name) const;
};

/** Render a snapshot as (pretty-printed, json.tool-valid) JSON. */
std::string toJson(const PerfSnapshot &snapshot);

/**
 * Parse a snapshot document. Returns false — with a one-line
 * message in *error — on malformed JSON, a missing required field,
 * or an unsupported schema (anything but v1/v2; a v1 document
 * simply parses with empty hw sections).
 */
bool parsePerfSnapshot(const std::string &text, PerfSnapshot *out,
                       std::string *error);

/**
 * Environment metadata for cross-run joins: "git_sha" (via `git
 * rev-parse`; "unknown" outside a work tree), "compiler",
 * "build_type" and "flags" (baked in at compile time), "cpu"
 * (/proc/cpuinfo model name; "unknown" elsewhere).
 */
std::map<std::string, std::string> captureEnvironment();

} // namespace accordion::obs

#endif // ACCORDION_OBS_SNAPSHOT_HPP
