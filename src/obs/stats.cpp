#include "stats.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace accordion::obs {

namespace {

/**
 * obs sits below util, so it cannot use util::panic; this is the
 * same report-and-abort for the one internal invariant the registry
 * enforces (a name never changes kind).
 */
[[noreturn]] void
obsPanic(const char *fmt, const char *a, const char *b, const char *c)
{
    std::fprintf(stderr, "panic: ");
    std::fprintf(stderr, fmt, a, b, c);
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace

const char *
statKindName(StatKind kind)
{
    switch (kind) {
    case StatKind::Counter:
        return "counter";
    case StatKind::Gauge:
        return "gauge";
    case StatKind::Distribution:
        return "distribution";
    }
    return "?";
}

struct Distribution::Cell
{
    mutable std::mutex mutex;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Quantile reservoir: every stride-th sample, in add order. */
    std::vector<double> samples;
    std::uint64_t stride = 1;
    std::uint64_t untilNext = 0; //!< adds to skip before retaining

    void add(double x)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (count == 0) {
            min = x;
            max = x;
        } else {
            min = std::min(min, x);
            max = std::max(max, x);
        }
        ++count;
        sum += x;
        if (untilNext > 0) {
            --untilNext;
            return;
        }
        samples.push_back(x);
        if (samples.size() >= kMaxSamples) {
            // Decimate: keep every 2nd retained sample and retain
            // only every 2*stride-th sample from now on, so the
            // reservoir stays a uniform subsample of the stream.
            for (std::size_t i = 0; 2 * i < samples.size(); ++i)
                samples[i] = samples[2 * i];
            samples.resize((samples.size() + 1) / 2);
            stride *= 2;
        }
        // After the (possible) doubling, so the first post-decimation
        // retention already follows the new stride.
        untilNext = stride - 1;
    }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mutex);
        count = 0;
        sum = min = max = 0.0;
        samples.clear();
        samples.shrink_to_fit();
        stride = 1;
        untilNext = 0;
    }
};

double
sortedQuantile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    // Linear interpolation between closest ranks — the same
    // convention as util::percentile (obs sits below util and
    // cannot call it).
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void
Distribution::add(double x) const
{
    if (cell_)
        cell_->add(x);
}

namespace {

/**
 * Thin an ascending-sorted reservoir so each kept sample stands for
 * `ratio` times as many raw samples as before: keep every ratio-th
 * element (offset-centred), which preserves the empirical quantile
 * function. Never thins a non-empty reservoir to empty.
 */
void
thinSamples(std::vector<double> *samples, std::uint64_t ratio)
{
    if (ratio <= 1 || samples->empty())
        return;
    std::size_t out = 0;
    for (std::size_t i = static_cast<std::size_t>(ratio / 2);
         i < samples->size(); i += static_cast<std::size_t>(ratio))
        (*samples)[out++] = (*samples)[i];
    if (out == 0) {
        // Fewer samples than the ratio: keep the median.
        (*samples)[0] = (*samples)[samples->size() / 2];
        out = 1;
    }
    samples->resize(out);
}

} // namespace

void
mergeStatEntry(StatEntry *into, const StatEntry &from)
{
    StatEntry &m = *into;
    switch (from.kind) {
    case StatKind::Counter:
        m.count += from.count;
        break;
    case StatKind::Gauge:
        m.value = from.value; // level: keep the latest
        break;
    case StatKind::Distribution:
        if (!from.count)
            break;
        if (!m.count) {
            m = from;
            break;
        }
        m.min = std::min(m.min, from.min);
        m.max = std::max(m.max, from.max);
        m.count += from.count;
        m.sum += from.sum;
        {
            // Sources decimated at different strides weight their
            // retained samples differently; thin both to the common
            // (coarser) stride before pooling so merged quantiles
            // stay unbiased.
            const std::uint64_t target =
                std::max(m.stride, from.stride);
            std::vector<double> other = from.samples;
            thinSamples(&m.samples, target / m.stride);
            thinSamples(&other, target / from.stride);
            m.stride = target;
            m.samples.insert(m.samples.end(), other.begin(),
                             other.end());
            // Keep the invariant: reservoirs stay sorted so
            // quantile reads (and later thinning) are valid.
            std::sort(m.samples.begin(), m.samples.end());
        }
        break;
    }
}

struct StatsRegistry::Slot
{
    explicit Slot(StatKind k) : kind(k) {}

    StatKind kind;
    std::atomic<std::uint64_t> counter{0};
    std::atomic<double> gauge{0.0};
    Distribution::Cell dist;
};

StatsRegistry::StatsRegistry(bool enabled) : enabled_(enabled) {}

StatsRegistry::~StatsRegistry() = default;

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry registry;
    return registry;
}

void
StatsRegistry::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

StatsRegistry::Slot *
StatsRegistry::slotFor(const std::string &name, StatKind kind)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    if (it == slots_.end())
        it = slots_.emplace(name, std::make_unique<Slot>(kind)).first;
    else if (it->second->kind != kind)
        obsPanic("StatsRegistry: '%s' is already registered as a %s, "
                 "cannot re-register as a %s",
                 name.c_str(), statKindName(it->second->kind),
                 statKindName(kind));
    return it->second.get();
}

Counter
StatsRegistry::counter(const std::string &name)
{
    Slot *slot = slotFor(name, StatKind::Counter);
    return slot ? Counter(&slot->counter) : Counter();
}

Gauge
StatsRegistry::gauge(const std::string &name)
{
    Slot *slot = slotFor(name, StatKind::Gauge);
    return slot ? Gauge(&slot->gauge) : Gauge();
}

Distribution
StatsRegistry::distribution(const std::string &name)
{
    Slot *slot = slotFor(name, StatKind::Distribution);
    return slot ? Distribution(&slot->dist) : Distribution();
}

void
StatsRegistry::absorb(const std::vector<StatEntry> &entries)
{
    if (!enabled())
        return;
    for (const StatEntry &e : entries) {
        Slot *slot = slotFor(e.name, e.kind);
        if (!slot)
            return; // disabled mid-loop
        switch (e.kind) {
        case StatKind::Counter:
            slot->counter.fetch_add(e.count,
                                    std::memory_order_relaxed);
            break;
        case StatKind::Gauge:
            slot->gauge.store(e.value, std::memory_order_relaxed);
            break;
        case StatKind::Distribution: {
            std::lock_guard<std::mutex> lock(slot->dist.mutex);
            // Lift the live cell into entry form, merge, and write
            // the result back — so absorb shares the exact
            // stride-thinning rules every other merge path uses.
            StatEntry cur;
            cur.name = e.name;
            cur.kind = StatKind::Distribution;
            cur.count = slot->dist.count;
            cur.sum = slot->dist.sum;
            cur.min = slot->dist.min;
            cur.max = slot->dist.max;
            cur.stride = slot->dist.stride;
            cur.samples = slot->dist.samples;
            std::sort(cur.samples.begin(), cur.samples.end());
            mergeStatEntry(&cur, e);
            slot->dist.count = cur.count;
            slot->dist.sum = cur.sum;
            slot->dist.min = cur.min;
            slot->dist.max = cur.max;
            slot->dist.stride = cur.stride;
            slot->dist.samples = std::move(cur.samples);
            // A merge can overfill the reservoir (two near-full
            // ones pool); decimate back under the cap so the live
            // cell keeps its bounded-memory invariant.
            while (slot->dist.samples.size() >
                   Distribution::kMaxSamples) {
                thinSamples(&slot->dist.samples, 2);
                slot->dist.stride *= 2;
            }
            slot->dist.untilNext = 0;
            break;
        }
        }
    }
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, slot] : slots_) {
        switch (slot->kind) {
        case StatKind::Counter:
            slot->counter.store(0, std::memory_order_relaxed);
            break;
        case StatKind::Gauge:
            break; // gauges are levels, not accumulations
        case StatKind::Distribution:
            slot->dist.reset();
            break;
        }
    }
}

std::vector<StatEntry>
StatsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StatEntry> entries;
    entries.reserve(slots_.size());
    // std::map iterates in name order, so the snapshot is sorted.
    for (const auto &[name, slot] : slots_) {
        StatEntry entry;
        entry.name = name;
        entry.kind = slot->kind;
        switch (slot->kind) {
        case StatKind::Counter:
            entry.count = slot->counter.load(std::memory_order_relaxed);
            break;
        case StatKind::Gauge:
            entry.value = slot->gauge.load(std::memory_order_relaxed);
            break;
        case StatKind::Distribution: {
            std::lock_guard<std::mutex> cell(slot->dist.mutex);
            entry.count = slot->dist.count;
            entry.sum = slot->dist.sum;
            entry.min = slot->dist.min;
            entry.max = slot->dist.max;
            entry.stride = slot->dist.stride;
            entry.samples = slot->dist.samples;
            std::sort(entry.samples.begin(), entry.samples.end());
            break;
        }
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

/** %.17g round-trips doubles; trim to something JSON-legal. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no inf/nan; instrumentation values never should be
    // either, but emit null rather than corrupt the document.
    for (const char *p = buf; *p; ++p)
        if (*p == 'i' || *p == 'n')
            return "null";
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

std::string
jsonObject(const std::vector<StatEntry> &entries)
{
    std::string out = "{";
    bool first = true;
    char buf[64];
    for (const StatEntry &e : entries) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(e.name) + "\":";
        switch (e.kind) {
        case StatKind::Counter:
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(e.count));
            out += buf;
            break;
        case StatKind::Gauge:
            out += jsonNumber(e.value);
            break;
        case StatKind::Distribution:
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(e.count));
            out += std::string("{\"count\":") + buf;
            out += ",\"sum\":" + jsonNumber(e.sum);
            out += ",\"min\":" + jsonNumber(e.min);
            out += ",\"max\":" + jsonNumber(e.max);
            out += ",\"mean\":" + jsonNumber(e.mean());
            out += ",\"p50\":" + jsonNumber(e.p50());
            out += ",\"p95\":" + jsonNumber(e.p95());
            out += ",\"p99\":" + jsonNumber(e.p99()) + "}";
            break;
        }
    }
    out += "}";
    return out;
}

std::string
StatsRegistry::jsonString() const
{
    return jsonObject(snapshot());
}

std::size_t
StatsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

} // namespace accordion::obs
