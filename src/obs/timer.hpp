/**
 * @file
 * Scoped phase timers: `ACC_SCOPED_TIMER("manufacture")` records
 * the enclosing scope's duration into the global stats registry
 * (distribution "time.manufacture_ns") and, when tracing is on,
 * emits a "phase" span into the trace. The clock is obs::nowNs(),
 * so tests inject a fake clock and assert exact durations.
 *
 * Zero-overhead-when-off: with the registry disabled and no trace
 * writer the constructor is two loads and a branch — the clock is
 * never read.
 */

#ifndef ACCORDION_OBS_TIMER_HPP
#define ACCORDION_OBS_TIMER_HPP

#include <cstdint>

#include "stats.hpp"
#include "trace.hpp"

namespace accordion::obs {

/** Times its own lifetime; see file comment. */
class ScopedTimer
{
  public:
    /** Against the global registry and the global trace writer. */
    explicit ScopedTimer(const char *name)
        : ScopedTimer(name, StatsRegistry::global(),
                      TraceWriter::global())
    {
    }

    /** Against explicit sinks (tests). @p trace may be nullptr. */
    ScopedTimer(const char *name, StatsRegistry &registry,
                TraceWriter *trace);

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const char *name_;
    StatsRegistry *registry_;
    TraceWriter *trace_;
    std::uint64_t startNs_ = 0;
    bool active_ = false;
};

} // namespace accordion::obs

#define ACC_OBS_CONCAT2(a, b) a##b
#define ACC_OBS_CONCAT(a, b) ACC_OBS_CONCAT2(a, b)

/** Time the rest of the enclosing scope as phase @p name. */
#define ACC_SCOPED_TIMER(name)                                        \
    ::accordion::obs::ScopedTimer ACC_OBS_CONCAT(accObsTimer_,        \
                                                 __LINE__)(name)

#endif // ACCORDION_OBS_TIMER_HPP
