/**
 * @file
 * gem5-style statistics registry: named counters, scalar gauges and
 * distributions, registered under hierarchical dotted names
 * ("montecarlo.samples", "syscache.hits", "pool.tasks"), dumped at
 * end-of-run as a human table and as machine-readable JSON
 * (run_summary.json).
 *
 * Cost model, because the handles live in hot loops:
 *  - A handle from a *disabled* registry is disengaged (null cell);
 *    every operation on it is a single predictable branch. This is
 *    the zero-overhead-when-off contract: the legacy bench shims
 *    and library users who never enable the registry pay nothing.
 *  - Counter/Gauge updates on an enabled registry are one relaxed
 *    atomic op; Distribution::add takes a small per-stat mutex (it
 *    is used for task/phase durations, not per-iteration data).
 *  - Registration (the name lookup) takes the registry mutex; do it
 *    once per phase, not once per iteration.
 *
 * Instrumentation never feeds results back into the simulation, so
 * it cannot perturb the bit-identical determinism contract.
 */

#ifndef ACCORDION_OBS_STATS_HPP
#define ACCORDION_OBS_STATS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace accordion::obs {

class StatsRegistry;

/** What a registered name refers to. */
enum class StatKind
{
    Counter,
    Gauge,
    Distribution,
};

/** Human name of a kind ("counter", "gauge", "distribution"). */
const char *statKindName(StatKind kind);

/**
 * Monotonically increasing event count. Copyable handle; disengaged
 * (all operations no-ops) when obtained from a disabled registry.
 */
class Counter
{
  public:
    Counter() = default;

    void add(std::uint64_t n) const
    {
        if (cell_)
            cell_->fetch_add(n, std::memory_order_relaxed);
    }

    void inc() const { add(1); }

    std::uint64_t value() const
    {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
    }

    /** True when backed by a live registry cell. */
    explicit operator bool() const { return cell_ != nullptr; }

  private:
    friend class StatsRegistry;
    explicit Counter(std::atomic<std::uint64_t> *cell) : cell_(cell) {}

    std::atomic<std::uint64_t> *cell_ = nullptr;
};

/** Last-value scalar (pool size, utilization fraction). */
class Gauge
{
  public:
    Gauge() = default;

    void set(double v) const
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

    double value() const
    {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0.0;
    }

    explicit operator bool() const { return cell_ != nullptr; }

  private:
    friend class StatsRegistry;
    explicit Gauge(std::atomic<double> *cell) : cell_(cell) {}

    std::atomic<double> *cell_ = nullptr;
};

/**
 * Count/sum/min/max accumulator with streaming quantile estimates
 * (e.g. per-phase durations in ns — the ScopedTimer convention is a
 * "time.<phase>_ns" name). Quantiles come from a bounded sample
 * reservoir: every sample is retained until the cap, after which
 * the reservoir is decimated (keep-every-2nd) and only every
 * stride-th future sample is kept — exact up to the cap, a uniform
 * stride subsample beyond it.
 */
class Distribution
{
  public:
    /** Reservoir cap: quantiles are exact below this many samples. */
    static constexpr std::size_t kMaxSamples = 4096;

    Distribution() = default;

    /** Add one sample (thread-safe). */
    void add(double x) const;

    explicit operator bool() const { return cell_ != nullptr; }

  private:
    friend class StatsRegistry;
    struct Cell;
    explicit Distribution(Cell *cell) : cell_(cell) {}

    Cell *cell_ = nullptr;
};

/**
 * Interpolated quantile of an ascending-sorted sample vector
 * (p in [0,100], the util::percentile convention); 0 when empty.
 */
double sortedQuantile(const std::vector<double> &sorted, double p);

/** One stat's value at snapshot time. */
struct StatEntry
{
    std::string name;
    StatKind kind = StatKind::Counter;
    std::uint64_t count = 0; //!< counter value / distribution samples
    double value = 0.0; //!< gauge level
    double sum = 0.0; //!< distribution only
    double min = 0.0; //!< distribution only (0 when empty)
    double max = 0.0; //!< distribution only (0 when empty)
    /** Retained reservoir samples, sorted ascending (distribution
     *  only; all samples when count <= Distribution::kMaxSamples). */
    std::vector<double> samples;
    /** Reservoir decimation stride: each retained sample stands for
     *  this many raw samples (distribution only; 1 below the cap).
     *  Merging reservoirs must weight samples by it. */
    std::uint64_t stride = 1;

    /** Distribution mean; 0 when empty. */
    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /** Quantile estimate from the retained samples (p in [0,100]). */
    double quantile(double p) const
    {
        return sortedQuantile(samples, p);
    }

    double p50() const { return quantile(50.0); }
    double p95() const { return quantile(95.0); }
    double p99() const { return quantile(99.0); }
};

/**
 * Merge @p from into @p into (two snapshots of the same name and
 * kind): counters sum, gauges keep the @p from level (latest wins),
 * distributions pool — min/max/count/sum combine exactly, and the
 * sample reservoirs are first thinned to the common (coarser)
 * decimation stride so every pooled sample stands for the same
 * number of raw samples and merged quantiles stay unbiased. Both
 * reservoirs must be sorted ascending; the result is too.
 */
void mergeStatEntry(StatEntry *into, const StatEntry &from);

/**
 * Render snapshot entries as one flat JSON object keyed by stat
 * name: counters as integers, gauges as numbers, distributions as
 * {"count","sum","min","max","mean","p50","p95","p99"} objects.
 */
std::string jsonObject(const std::vector<StatEntry> &entries);

/**
 * A double as a JSON number literal (%.17g, round-trips); "null"
 * for inf/nan, which JSON cannot represent.
 */
std::string jsonNumber(double v);

/** Escape a string for embedding between JSON quotes. */
std::string jsonEscape(const std::string &s);

/**
 * The registry. Construct instances freely (tests); production
 * code shares global(), which starts *disabled* — `accordion run`
 * enables it, the legacy shims never do.
 *
 * Registration is get-or-create: asking twice for the same name and
 * kind returns handles onto the same cell (the thread pool is
 * rebuilt by setGlobalThreads and must keep its counters), while
 * re-registering a name under a different kind aborts — a name can
 * only ever mean one thing.
 */
class StatsRegistry
{
  public:
    explicit StatsRegistry(bool enabled = false);
    ~StatsRegistry();

    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** The process-wide registry (starts disabled). */
    static StatsRegistry &global();

    /**
     * Enable/disable. Disabling only affects *future*
     * registrations: handles already obtained stay live (their
     * updates remain cheap and invisible unless dumped).
     */
    void setEnabled(bool enabled);
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Register (or look up) a counter. Disengaged when disabled. */
    Counter counter(const std::string &name);

    /** Register (or look up) a gauge. Disengaged when disabled. */
    Gauge gauge(const std::string &name);

    /** Register (or look up) a distribution. */
    Distribution distribution(const std::string &name);

    /**
     * Zero every counter and distribution; gauges keep their level
     * (they describe configuration, e.g. pool.workers, not
     * accumulation). The per-experiment dump loop resets between
     * experiments so each summary is self-contained.
     */
    void reset();

    /** All registered stats, sorted by name. */
    std::vector<StatEntry> snapshot() const;

    /**
     * Fold a snapshot into this registry (the StatsDomain merge
     * path): each entry is registered get-or-create under its own
     * name/kind and combined with the live cell by the
     * mergeStatEntry() rules. No-op when disabled; aborts on a kind
     * collision, like any registration.
     */
    void absorb(const std::vector<StatEntry> &entries);

    /** snapshot() rendered via jsonObject(). */
    std::string jsonString() const;

    /** Number of registered stats. */
    std::size_t size() const;

  private:
    struct Slot;

    Slot *slotFor(const std::string &name, StatKind kind);

    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::map<std::string, std::unique_ptr<Slot>> slots_;
};

} // namespace accordion::obs

#endif // ACCORDION_OBS_STATS_HPP
