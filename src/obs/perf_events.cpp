#include "perf_events.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "stats.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace accordion::obs {

namespace {

/**
 * Alias table rows: every spelling we accept for an event, the
 * canonical stat suffix, and the kernel identity. Type/config
 * constants are only meaningful on Linux; elsewhere every open
 * fails with ENOSYS before they are used, so the values are inert.
 */
struct EventAlias
{
    const char *alias;
    const char *statName;
    std::uint32_t type;
    std::uint64_t config;
};

#if defined(__linux__)
constexpr std::uint32_t kTypeHw = PERF_TYPE_HARDWARE;
constexpr std::uint32_t kTypeSw = PERF_TYPE_SOFTWARE;
constexpr EventAlias kAliases[] = {
    {"cycles", "cycles", kTypeHw, PERF_COUNT_HW_CPU_CYCLES},
    {"cpu_cycles", "cycles", kTypeHw, PERF_COUNT_HW_CPU_CYCLES},
    {"instructions", "instructions", kTypeHw,
     PERF_COUNT_HW_INSTRUCTIONS},
    {"cache_references", "cache_references", kTypeHw,
     PERF_COUNT_HW_CACHE_REFERENCES},
    {"cache_misses", "cache_misses", kTypeHw,
     PERF_COUNT_HW_CACHE_MISSES},
    {"branches", "branches", kTypeHw,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {"branch_instructions", "branches", kTypeHw,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {"branch_misses", "branch_misses", kTypeHw,
     PERF_COUNT_HW_BRANCH_MISSES},
    {"ref_cycles", "ref_cycles", kTypeHw,
     PERF_COUNT_HW_REF_CPU_CYCLES},
    {"stalled_cycles_frontend", "stalled_cycles_frontend", kTypeHw,
     PERF_COUNT_HW_STALLED_CYCLES_FRONTEND},
    {"stalled_cycles_backend", "stalled_cycles_backend", kTypeHw,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {"task_clock", "task_clock_ns", kTypeSw,
     PERF_COUNT_SW_TASK_CLOCK},
    {"page_faults", "page_faults", kTypeSw,
     PERF_COUNT_SW_PAGE_FAULTS},
    {"context_switches", "context_switches", kTypeSw,
     PERF_COUNT_SW_CONTEXT_SWITCHES},
    {"cpu_migrations", "cpu_migrations", kTypeSw,
     PERF_COUNT_SW_CPU_MIGRATIONS},
};
#else
// Non-Linux: the same names parse (so CLI/env handling behaves
// identically) but every open fails with ENOSYS.
constexpr EventAlias kAliases[] = {
    {"cycles", "cycles", 0, 0},
    {"cpu_cycles", "cycles", 0, 0},
    {"instructions", "instructions", 0, 1},
    {"cache_references", "cache_references", 0, 2},
    {"cache_misses", "cache_misses", 0, 3},
    {"branches", "branches", 0, 4},
    {"branch_instructions", "branches", 0, 4},
    {"branch_misses", "branch_misses", 0, 5},
    {"ref_cycles", "ref_cycles", 0, 9},
    {"stalled_cycles_frontend", "stalled_cycles_frontend", 0, 7},
    {"stalled_cycles_backend", "stalled_cycles_backend", 0, 8},
    {"task_clock", "task_clock_ns", 1, 0},
    {"page_faults", "page_faults", 1, 2},
    {"context_switches", "context_switches", 1, 3},
    {"cpu_migrations", "cpu_migrations", 1, 4},
};
#endif

/** Lowercase and fold '-' to '_' so both spellings match. */
std::string normalizeToken(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '-')
            out.push_back('_');
        else
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

const EventAlias *findAlias(const std::string &normalized)
{
    for (const EventAlias &a : kAliases)
        if (normalized == a.alias)
            return &a;
    return nullptr;
}

/** "r01c2" → raw config 0x01c2; false when not a raw descriptor. */
bool parseRawEvent(const std::string &normalized, std::uint64_t *config)
{
    if (normalized.size() < 2 || normalized.size() > 17 ||
        normalized[0] != 'r')
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = 1; i < normalized.size(); ++i) {
        char c = normalized[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    *config = value;
    return true;
}

const char *errnoName(int err)
{
    switch (err) {
    case EACCES:
        return "EACCES";
    case EPERM:
        return "EPERM";
    case ENOENT:
        return "ENOENT";
    case ENOSYS:
        return "ENOSYS";
    case EINVAL:
        return "EINVAL";
    case ENODEV:
        return "ENODEV";
    case EMFILE:
        return "EMFILE";
    case EBUSY:
        return "EBUSY";
    case EOPNOTSUPP:
        return "EOPNOTSUPP";
    default:
        return nullptr;
    }
}

std::string errnoLabel(int err)
{
    if (const char *name = errnoName(err))
        return name;
    return "errno=" + std::to_string(err);
}

/**
 * Open one counter on the calling thread. Returns the fd, or -1
 * with errno set. Kernel/hypervisor excluded so paranoid level 2
 * (the common container default) still admits us.
 */
int openEvent(const PerfEventSpec &spec)
{
#if defined(__linux__)
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1,
                      PERF_FLAG_FD_CLOEXEC);
    return static_cast<int>(fd);
#else
    (void)spec;
    errno = ENOSYS;
    return -1;
#endif
}

/**
 * Read one fd's {value, time_enabled, time_running} and return the
 * multiplex-scaled full-speed estimate; 0.0 on a short read.
 */
double readScaled(int fd)
{
#if defined(__linux__)
    if (fd < 0)
        return 0.0;
    struct Reading
    {
        std::uint64_t value;
        std::uint64_t enabled;
        std::uint64_t running;
    } r{};
    if (read(fd, &r, sizeof(r)) != static_cast<ssize_t>(sizeof(r)))
        return 0.0;
    double value = static_cast<double>(r.value);
    if (r.running > 0 && r.running != r.enabled)
        value *= static_cast<double>(r.enabled) /
                 static_cast<double>(r.running);
    return value;
#else
    (void)fd;
    return 0.0;
#endif
}

void closeFd(int fd)
{
#if defined(__linux__)
    if (fd >= 0)
        close(fd);
#else
    (void)fd;
#endif
}

/** Process-wide engagement state; mutex-guarded, generation-stamped. */
struct HwState
{
    std::mutex mutex;
    bool attempted = false; //!< any engage ever ran
    std::vector<PerfEventStatus> status; //!< every requested event
    std::vector<PerfEventSpec> live; //!< the ones that opened
    int firstError = 0; //!< representative errno when nothing opened
};

HwState &state()
{
    static HwState s;
    return s;
}

std::atomic<bool> g_engaged{false};
/** Bumped on every engage/disengage so threads re-open lazily. */
std::atomic<int> g_generation{0};

/** One thread's open fds, aligned with HwState::live. */
struct ThreadSet
{
    int generation = 0;
    std::vector<int> fds;

    void closeAll()
    {
        for (int fd : fds)
            closeFd(fd);
        fds.clear();
    }

    ~ThreadSet() { closeAll(); }
};

thread_local ThreadSet t_set;

/** (Re)open the calling thread's fds for the current generation. */
void attachLocked(ThreadSet *set)
{
    HwState &s = state();
    std::vector<PerfEventSpec> live;
    int generation;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        live = s.live;
        generation = g_generation.load(std::memory_order_acquire);
    }
    set->closeAll();
    set->fds.reserve(live.size());
    for (const PerfEventSpec &spec : live)
        set->fds.push_back(openEvent(spec));
    set->generation = generation;
}

/** The calling thread's set, attached and current; nullptr when off. */
ThreadSet *currentSet()
{
    if (!g_engaged.load(std::memory_order_relaxed))
        return nullptr;
    if (t_set.generation !=
        g_generation.load(std::memory_order_acquire))
        attachLocked(&t_set);
    return t_set.fds.empty() ? nullptr : &t_set;
}

int readParanoid()
{
#if defined(__linux__)
    std::FILE *f =
        std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
    if (!f)
        return -100;
    int level = -100;
    if (std::fscanf(f, "%d", &level) != 1)
        level = -100;
    std::fclose(f);
    return level;
#else
    return -100;
#endif
}

} // namespace

std::vector<PerfEventSpec> defaultPerfEventSpecs()
{
    static const char *kDefaults[] = {
        "cycles",        "instructions",  "cache_references",
        "cache_misses",  "branches",      "branch_misses",
        "task_clock",
    };
    std::vector<PerfEventSpec> specs;
    for (const char *name : kDefaults) {
        const EventAlias *alias = findAlias(name);
        specs.push_back({alias->statName, alias->type, alias->config});
    }
    return specs;
}

std::vector<PerfEventSpec> parsePerfEventList(
    const std::string &text, std::vector<std::string> *rejected)
{
    std::vector<PerfEventSpec> specs;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace.
        std::size_t b = token.find_first_not_of(" \t");
        std::size_t e = token.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        token = token.substr(b, e - b + 1);
        std::string norm = normalizeToken(token);
        if (const EventAlias *alias = findAlias(norm)) {
            specs.push_back(
                {alias->statName, alias->type, alias->config});
            continue;
        }
        std::uint64_t raw = 0;
        if (parseRawEvent(norm, &raw)) {
#if defined(__linux__)
            specs.push_back({norm, PERF_TYPE_RAW, raw});
#else
            specs.push_back({norm, 4, raw});
#endif
            continue;
        }
        if (rejected)
            rejected->push_back(token);
    }
    // Dedupe by stat name, first spelling wins, so e.g.
    // "cycles,cpu-cycles" cannot register one suffix twice.
    std::vector<PerfEventSpec> unique;
    for (PerfEventSpec &spec : specs) {
        bool seen = false;
        for (const PerfEventSpec &u : unique)
            seen = seen || u.name == spec.name;
        if (!seen)
            unique.push_back(std::move(spec));
    }
    return unique;
}

bool hwEngage()
{
    HwState &s = state();
    std::unique_lock<std::mutex> lock(s.mutex);
    if (g_engaged.load(std::memory_order_relaxed))
        return true;

    std::vector<PerfEventSpec> requested;
    std::vector<std::string> rejected;
    const char *env = std::getenv("ACCORDION_PERF_EVENTS");
    if (env && *env)
        requested = parsePerfEventList(env, &rejected);
    else
        requested = defaultPerfEventSpecs();
    if (requested.size() > kMaxPerfEvents)
        requested.resize(kMaxPerfEvents);

    s.attempted = true;
    s.status.clear();
    s.live.clear();
    s.firstError = 0;

    // Probe on the calling thread; successful fds become this
    // thread's set so the main thread is attached from here on.
    std::vector<int> fds;
    for (const PerfEventSpec &spec : requested) {
        PerfEventStatus st;
        st.spec = spec;
        errno = 0;
        int fd = openEvent(spec);
        if (fd >= 0) {
            st.available = true;
            s.live.push_back(spec);
            fds.push_back(fd);
        } else {
            st.error = errno ? errno : ENOENT;
            if (!s.firstError)
                s.firstError = st.error;
        }
        s.status.push_back(st);
    }

    bool engaged = !s.live.empty();
    int generation = g_generation.load(std::memory_order_relaxed) + 1;
    g_generation.store(generation, std::memory_order_release);
    g_engaged.store(engaged, std::memory_order_relaxed);
    lock.unlock();

    t_set.closeAll();
    t_set.fds = std::move(fds);
    t_set.generation = generation;

    // The one stderr note of the degradation contract: name what we
    // could not count (and what we still can), then stay silent.
    std::string unavailable;
    {
        std::lock_guard<std::mutex> relock(s.mutex);
        for (const PerfEventStatus &st : s.status)
            if (!st.available) {
                if (!unavailable.empty())
                    unavailable += ", ";
                unavailable +=
                    st.spec.name + " (" + errnoLabel(st.error) + ")";
            }
    }
    for (const std::string &tok : rejected) {
        if (!unavailable.empty())
            unavailable += ", ";
        unavailable += tok + " (unknown)";
    }
    if (!engaged) {
        std::fprintf(stderr,
                     "accordion: hardware counters unavailable (%s); "
                     "continuing without (perf_event_paranoid=%d)\n",
                     unavailable.empty() ? "no events requested"
                                         : unavailable.c_str(),
                     readParanoid());
    } else if (!unavailable.empty()) {
        std::fprintf(stderr,
                     "accordion: some perf events unavailable: %s\n",
                     unavailable.c_str());
    }
    return engaged;
}

void hwDisengage()
{
    HwState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    g_engaged.store(false, std::memory_order_relaxed);
    g_generation.fetch_add(1, std::memory_order_release);
    s.live.clear();
    // status/attempted are kept: availability reporting describes
    // the last probe even after the counters are released.
    t_set.closeAll();
    t_set.generation = g_generation.load(std::memory_order_relaxed);
}

bool hwEngaged()
{
    return g_engaged.load(std::memory_order_relaxed);
}

std::vector<std::string> hwEventNames()
{
    HwState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<std::string> names;
    names.reserve(s.live.size());
    for (const PerfEventSpec &spec : s.live)
        names.push_back(spec.name);
    return names;
}

std::vector<PerfEventStatus> hwEventStatus()
{
    HwState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.status;
}

int hwParanoidLevel()
{
    return readParanoid();
}

void hwAttachCurrentThread()
{
    if (g_engaged.load(std::memory_order_relaxed))
        currentSet();
}

bool hwSampleNow(HwSample *out)
{
    ThreadSet *set = currentSet();
    if (!set)
        return false;
    std::size_t n = std::min(set->fds.size(), kMaxPerfEvents);
    out->n = n;
    for (std::size_t i = 0; i < n; ++i)
        out->values[i] = readScaled(set->fds[i]);
    return true;
}

void hwPublishDelta(const std::string &scope, const HwSample &begin,
                    const HwSample &end)
{
    StatsRegistry &registry = StatsRegistry::global();
    if (!registry.enabled())
        return;
    std::vector<std::string> names = hwEventNames();
    std::size_t n = std::min(names.size(), end.n);

    Counter instructions, cycles, cacheMisses;
    for (std::size_t i = 0; i < n; ++i) {
        double delta = end.values[i] -
                       (i < begin.n ? begin.values[i] : 0.0);
        if (delta < 0.0)
            delta = 0.0;
        Counter c =
            registry.counter("hw." + scope + "." + names[i]);
        c.add(static_cast<std::uint64_t>(std::llround(delta)));
        if (names[i] == "instructions")
            instructions = c;
        else if (names[i] == "cycles")
            cycles = c;
        else if (names[i] == "cache_misses")
            cacheMisses = c;
    }
    // Derived gauges from *cumulative* totals, so repeated regions
    // under one scope converge on the scope-wide ratio.
    if (instructions && cycles && cycles.value() > 0)
        registry.gauge("hw." + scope + ".ipc")
            .set(static_cast<double>(instructions.value()) /
                 static_cast<double>(cycles.value()));
    if (cacheMisses && instructions && instructions.value() > 0)
        registry.gauge("hw." + scope + ".mpki")
            .set(static_cast<double>(cacheMisses.value()) * 1000.0 /
                 static_cast<double>(instructions.value()));
}

std::string hwAvailabilityJson()
{
    HwState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::string out = "{\"engaged\": ";
    out += g_engaged.load(std::memory_order_relaxed) ? "true"
                                                     : "false";
    out += ", \"paranoid\": ";
    out += std::to_string(readParanoid());
    out += ", \"events\": {";
    bool first = true;
    for (const PerfEventStatus &st : s.status) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"";
        out += jsonEscape(st.spec.name);
        out += "\": \"";
        out += st.available ? "ok" : errnoLabel(st.error);
        out += "\"";
    }
    out += "}}";
    return out;
}

std::string hwSummary()
{
    HwState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.attempted)
        return "off";
    if (s.live.empty() ||
        !g_engaged.load(std::memory_order_relaxed)) {
        if (s.firstError)
            return "unavailable (" + errnoLabel(s.firstError) + ")";
        return "unavailable";
    }
    std::string out;
    for (const PerfEventSpec &spec : s.live) {
        if (!out.empty())
            out += ",";
        out += spec.name;
    }
    return out;
}

ScopedHwRegion::ScopedHwRegion(const char *name) : name_(name)
{
    if (!g_engaged.load(std::memory_order_relaxed))
        return;
    if (!StatsRegistry::global().enabled())
        return;
    active_ = hwSampleNow(&begin_);
}

ScopedHwRegion::~ScopedHwRegion()
{
    if (!active_)
        return;
    HwSample end;
    if (hwSampleNow(&end))
        hwPublishDelta(name_, begin_, end);
}

} // namespace accordion::obs
