#include "trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

namespace accordion::obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)), epochNs_(nowNs())
{
    file_ = std::fopen(path_.c_str(), "w");
}

TraceWriter::~TraceWriter()
{
    close();
}

int
TraceWriter::tidOfCallingThread()
{
    const std::thread::id self = std::this_thread::get_id();
    auto it = tids_.find(self);
    if (it != tids_.end())
        return it->second;
    const int tid = static_cast<int>(tids_.size());
    tids_.emplace(self, tid);
    const std::string &name = currentThreadName();
    threadNames_.push_back(
        name.empty() ? "thread-" + std::to_string(tid) : name);
    return tid;
}

void
TraceWriter::span(const char *category, const std::string &name,
                  std::uint64_t start_ns, std::uint64_t end_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return; // closed or never opened
    Event event;
    event.name = name;
    event.category = category;
    // Clamp into the writer's lifetime: a worker born before
    // tracing was enabled still gets a well-formed span.
    event.startNs = std::max(start_ns, epochNs_);
    event.durNs = end_ns > event.startNs ? end_ns - event.startNs : 0;
    event.tid = tidOfCallingThread();
    events_.push_back(std::move(event));
}

void
TraceWriter::counter(const std::string &name, std::uint64_t ts_ns,
                     double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    Event event;
    event.name = name;
    event.category = "stats";
    event.startNs = std::max(ts_ns, epochNs_);
    event.durNs = 0;
    event.tid = 0; // counter tracks are per-process, not per-thread
    event.phase = Phase::Counter;
    event.value = value;
    events_.push_back(std::move(event));
}

void
TraceWriter::instant(const char *category, const std::string &name,
                     std::uint64_t ts_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    Event event;
    event.name = name;
    event.category = category;
    event.startNs = std::max(ts_ns, epochNs_);
    event.durNs = 0;
    event.tid = tidOfCallingThread();
    event.phase = Phase::Instant;
    events_.push_back(std::move(event));
}

std::size_t
TraceWriter::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceWriter::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fprintf(file_, "{\"displayTimeUnit\":\"ms\","
                        "\"traceEvents\":[");
    bool first = true;
    for (std::size_t tid = 0; tid < threadNames_.size(); ++tid) {
        std::fprintf(file_,
                     "%s\n{\"name\":\"thread_name\",\"ph\":\"M\","
                     "\"pid\":1,\"tid\":%zu,\"args\":{\"name\":"
                     "\"%s\"}}",
                     first ? "" : ",", tid,
                     jsonEscape(threadNames_[tid]).c_str());
        first = false;
    }
    for (const Event &event : events_) {
        // Microsecond timestamps relative to the writer's epoch,
        // the unit chrome://tracing expects.
        const double ts =
            static_cast<double>(event.startNs - epochNs_) / 1e3;
        switch (event.phase) {
        case Phase::Span:
            std::fprintf(
                file_,
                "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                first ? "" : ",", jsonEscape(event.name).c_str(),
                event.category, event.tid, ts,
                static_cast<double>(event.durNs) / 1e3);
            break;
        case Phase::Counter:
            std::fprintf(
                file_,
                "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\","
                "\"pid\":1,\"ts\":%.3f,\"args\":{\"value\":%.17g}}",
                first ? "" : ",", jsonEscape(event.name).c_str(),
                event.category, ts, event.value);
            break;
        case Phase::Instant:
            std::fprintf(
                file_,
                "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\"}",
                first ? "" : ",", jsonEscape(event.name).c_str(),
                event.category, event.tid, ts);
            break;
        }
        first = false;
    }
    std::fprintf(file_, "\n]}\n");
    std::fclose(file_);
    file_ = nullptr;
    events_.clear();
}

namespace {

std::atomic<TraceWriter *> g_trace{nullptr};
std::mutex g_trace_mutex;

} // namespace

TraceWriter *
TraceWriter::global()
{
    return g_trace.load(std::memory_order_acquire);
}

bool
TraceWriter::openGlobal(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    closeGlobal();
    if (currentThreadName().empty())
        setCurrentThreadName("main");
    auto writer = std::make_unique<TraceWriter>(path);
    if (!writer->ok())
        return false;
    g_trace.store(writer.release(), std::memory_order_release);
    return true;
}

void
TraceWriter::closeGlobal()
{
    TraceWriter *writer =
        g_trace.exchange(nullptr, std::memory_order_acq_rel);
    delete writer; // destructor writes the file
}

} // namespace accordion::obs
