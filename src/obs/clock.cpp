#include "clock.hpp"

#include <atomic>
#include <chrono>

namespace accordion::obs {

namespace {

class SteadyClock final : public Clock
{
  public:
    std::uint64_t nowNs() const override
    {
        const auto now = std::chrono::steady_clock::now();
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now.time_since_epoch())
                .count());
    }
};

const SteadyClock g_steady;
std::atomic<const Clock *> g_clock{&g_steady};

thread_local std::string t_thread_name;

} // namespace

const Clock &
steadyClock()
{
    return g_steady;
}

void
setClock(const Clock *clock)
{
    g_clock.store(clock ? clock : &g_steady,
                  std::memory_order_release);
}

std::uint64_t
nowNs()
{
    return g_clock.load(std::memory_order_acquire)->nowNs();
}

void
setCurrentThreadName(std::string name)
{
    t_thread_name = std::move(name);
}

const std::string &
currentThreadName()
{
    return t_thread_name;
}

} // namespace accordion::obs
