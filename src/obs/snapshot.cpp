#include "snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef ACCORDION_BUILD_TYPE
#define ACCORDION_BUILD_TYPE "unknown"
#endif
#ifndef ACCORDION_CXX_FLAGS
#define ACCORDION_CXX_FLAGS ""
#endif

namespace accordion::obs {

DistributionSummary
summarize(const StatEntry &entry)
{
    DistributionSummary s;
    s.count = entry.count;
    s.sum = entry.sum;
    s.min = entry.min;
    s.max = entry.max;
    s.mean = entry.mean();
    s.p50 = entry.p50();
    s.p95 = entry.p95();
    s.p99 = entry.p99();
    return s;
}

DistributionSummary
summarize(std::vector<double> samples)
{
    DistributionSummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    for (double x : samples)
        s.sum += x;
    s.min = samples.front();
    s.max = samples.back();
    s.mean = s.sum / static_cast<double>(samples.size());
    s.p50 = sortedQuantile(samples, 50.0);
    s.p95 = sortedQuantile(samples, 95.0);
    s.p99 = sortedQuantile(samples, 99.0);
    return s;
}

double
ScenarioRecord::minWallNs() const
{
    double best = 0.0;
    for (double w : wallNs)
        best = (best == 0.0) ? w : std::min(best, w);
    return best;
}

DistributionSummary
ScenarioRecord::wallSummary() const
{
    return summarize(wallNs);
}

bool
perfSnapshotSchemaSupported(const std::string &schema)
{
    return schema == kPerfSnapshotSchema ||
           schema == kPerfSnapshotSchemaV1;
}

const ScenarioRecord *
PerfSnapshot::find(const std::string &name) const
{
    for (const ScenarioRecord &s : scenarios)
        if (s.name == name)
            return &s;
    return nullptr;
}

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

namespace {

std::string
summaryJson(const DistributionSummary &s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(s.count));
    std::string out = std::string("{\"count\": ") + buf;
    out += ", \"sum\": " + jsonNumber(s.sum);
    out += ", \"min\": " + jsonNumber(s.min);
    out += ", \"max\": " + jsonNumber(s.max);
    out += ", \"mean\": " + jsonNumber(s.mean);
    out += ", \"p50\": " + jsonNumber(s.p50);
    out += ", \"p95\": " + jsonNumber(s.p95);
    out += ", \"p99\": " + jsonNumber(s.p99) + "}";
    return out;
}

/** Render a {"key": value} map with one pair per line. */
template <typename Map, typename Render>
std::string
objectJson(const Map &map, const std::string &indent, Render render)
{
    if (map.empty())
        return "{}";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : map) {
        out += first ? "\n" : ",\n";
        first = false;
        out += indent + "  \"" + jsonEscape(key) +
               "\": " + render(value);
    }
    out += "\n" + indent + "}";
    return out;
}

} // namespace

std::string
toJson(const PerfSnapshot &snapshot)
{
    std::ostringstream out;
    char buf[32];
    out << "{\n"
        << "  \"schema\": \"" << jsonEscape(snapshot.schema)
        << "\",\n"
        << "  \"environment\": "
        << objectJson(snapshot.environment, "  ",
                      [](const std::string &v) {
                          std::string quoted = "\"";
                          quoted += jsonEscape(v);
                          quoted += "\"";
                          return quoted;
                      })
        << ",\n"
        << "  \"seed\": " << snapshot.seed << ",\n"
        << "  \"threads\": " << snapshot.threads << ",\n"
        << "  \"reps\": " << snapshot.reps << ",\n"
        << "  \"scale\": " << jsonNumber(snapshot.scale) << ",\n"
        << "  \"scenarios\": [";
    for (std::size_t i = 0; i < snapshot.scenarios.size(); ++i) {
        const ScenarioRecord &s = snapshot.scenarios[i];
        out << (i ? ",\n" : "\n") << "    {\n"
            << "      \"name\": \"" << jsonEscape(s.name) << "\",\n"
            << "      \"warmup\": " << s.warmup << ",\n"
            << "      \"wall_ns\": [";
        for (std::size_t r = 0; r < s.wallNs.size(); ++r)
            out << (r ? ", " : "") << jsonNumber(s.wallNs[r]);
        out << "],\n"
            << "      \"wall\": " << summaryJson(s.wallSummary())
            << ",\n"
            << "      \"counters\": "
            << objectJson(s.counters, "      ",
                          [&buf](std::uint64_t v) {
                              std::snprintf(
                                  buf, sizeof(buf), "%llu",
                                  static_cast<unsigned long long>(v));
                              return std::string(buf);
                          })
            << ",\n"
            << "      \"throughput\": "
            << objectJson(s.throughput, "      ",
                          [](double v) { return jsonNumber(v); })
            << ",\n"
            << "      \"timers\": "
            << objectJson(s.timers, "      ",
                          [](const DistributionSummary &v) {
                              return summaryJson(v);
                          })
            << ",\n"
            << "      \"gauges\": "
            << objectJson(s.gauges, "      ",
                          [](double v) { return jsonNumber(v); })
            << ",\n"
            << "      \"hw\": ";
        // null, not {}: a reader can distinguish "counters were
        // never engaged" from "engaged but counted zero".
        if (!s.hasHw()) {
            out << "null";
        } else {
            out << "{\n        \"counters\": "
                << objectJson(s.hwCounters, "        ",
                              [&buf](std::uint64_t v) {
                                  std::snprintf(
                                      buf, sizeof(buf), "%llu",
                                      static_cast<unsigned long long>(
                                          v));
                                  return std::string(buf);
                              })
                << ",\n        \"derived\": "
                << objectJson(s.hwDerived, "        ",
                              [](double v) { return jsonNumber(v); })
                << "\n      }";
        }
        out << "\n    }";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

// ---------------------------------------------------------------
// Reader: a minimal JSON parser (objects, arrays, strings,
// numbers, true/false/null) and the mapping onto PerfSnapshot.
// ---------------------------------------------------------------

namespace {

struct Json
{
    enum Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json *get(const std::string &key) const
    {
        auto it = fields.find(key);
        return it == fields.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return value;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "'");
        ++pos_;
    }

    Json parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            Json v;
            v.type = Json::String;
            v.text = parseString();
            return v;
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            Json v;
            v.type = Json::Bool;
            v.boolean = true;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            Json v;
            v.type = Json::Bool;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Json{};
        }
        return parseNumber();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                c = text_[pos_++];
                switch (c) {
                case 'n':
                    c = '\n';
                    break;
                case 't':
                    c = '\t';
                    break;
                case 'u':
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    c = static_cast<char>(std::stoi(
                        text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                default:
                    break; // \" \\ \/ keep c as-is
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    Json parseNumber()
    {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            throw std::runtime_error("bad number");
        Json v;
        v.type = Json::Number;
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    Json parseArray()
    {
        expect('[');
        Json v;
        v.type = Json::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or ] in array");
        }
    }

    Json parseObject()
    {
        expect('{');
        Json v;
        v.type = Json::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            const std::string key = parseString();
            expect(':');
            v.fields[key] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or } in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

DistributionSummary
summaryFrom(const Json &json)
{
    DistributionSummary s;
    if (json.type != Json::Object)
        throw std::runtime_error("summary is not an object");
    if (const Json *v = json.get("count"))
        s.count = static_cast<std::uint64_t>(v->number);
    if (const Json *v = json.get("sum"))
        s.sum = v->number;
    if (const Json *v = json.get("min"))
        s.min = v->number;
    if (const Json *v = json.get("max"))
        s.max = v->number;
    if (const Json *v = json.get("mean"))
        s.mean = v->number;
    if (const Json *v = json.get("p50"))
        s.p50 = v->number;
    if (const Json *v = json.get("p95"))
        s.p95 = v->number;
    if (const Json *v = json.get("p99"))
        s.p99 = v->number;
    return s;
}

ScenarioRecord
scenarioFrom(const Json &json)
{
    if (json.type != Json::Object)
        throw std::runtime_error("scenario is not an object");
    const Json *name = json.get("name");
    if (!name || name->type != Json::String)
        throw std::runtime_error("scenario without a \"name\"");
    const Json *wall = json.get("wall_ns");
    if (!wall || wall->type != Json::Array)
        throw std::runtime_error("scenario '" + name->text +
                                 "' without a \"wall_ns\" array");
    ScenarioRecord s;
    s.name = name->text;
    if (const Json *v = json.get("warmup"))
        s.warmup = static_cast<std::size_t>(v->number);
    for (const Json &rep : wall->items)
        s.wallNs.push_back(rep.number);
    if (const Json *v = json.get("counters"))
        for (const auto &[key, value] : v->fields)
            s.counters[key] =
                static_cast<std::uint64_t>(value.number);
    if (const Json *v = json.get("throughput"))
        for (const auto &[key, value] : v->fields)
            s.throughput[key] = value.number;
    if (const Json *v = json.get("timers"))
        for (const auto &[key, value] : v->fields)
            s.timers[key] = summaryFrom(value);
    if (const Json *v = json.get("gauges"))
        for (const auto &[key, value] : v->fields)
            s.gauges[key] = value.number;
    // v2 addition; absent in v1 documents and null when the run had
    // no hardware counters — both leave the maps empty.
    if (const Json *v = json.get("hw")) {
        if (v->type == Json::Object) {
            if (const Json *c = v->get("counters"))
                for (const auto &[key, value] : c->fields)
                    s.hwCounters[key] =
                        static_cast<std::uint64_t>(value.number);
            if (const Json *d = v->get("derived"))
                for (const auto &[key, value] : d->fields)
                    s.hwDerived[key] = value.number;
        } else if (v->type != Json::Null) {
            throw std::runtime_error("scenario '" + name->text +
                                     "' \"hw\" is neither object "
                                     "nor null");
        }
    }
    return s;
}

} // namespace

bool
parsePerfSnapshot(const std::string &text, PerfSnapshot *out,
                  std::string *error)
{
    try {
        const Json root = JsonParser(text).parse();
        if (root.type != Json::Object)
            throw std::runtime_error("document is not an object");
        const Json *schema = root.get("schema");
        if (!schema || schema->type != Json::String)
            throw std::runtime_error("missing \"schema\"");
        if (!perfSnapshotSchemaSupported(schema->text)) {
            std::string msg = "unsupported schema '";
            msg += schema->text;
            msg += "' (want ";
            msg += kPerfSnapshotSchemaV1;
            msg += " or ";
            msg += kPerfSnapshotSchema;
            msg += ")";
            throw std::runtime_error(msg);
        }
        const Json *scenarios = root.get("scenarios");
        if (!scenarios || scenarios->type != Json::Array)
            throw std::runtime_error("missing \"scenarios\" array");

        PerfSnapshot snapshot;
        snapshot.schema = schema->text;
        if (const Json *v = root.get("environment"))
            for (const auto &[key, value] : v->fields)
                snapshot.environment[key] = value.text;
        if (const Json *v = root.get("seed"))
            snapshot.seed = static_cast<std::uint64_t>(v->number);
        if (const Json *v = root.get("threads"))
            snapshot.threads = static_cast<std::size_t>(v->number);
        if (const Json *v = root.get("reps"))
            snapshot.reps = static_cast<std::size_t>(v->number);
        if (const Json *v = root.get("scale"))
            snapshot.scale = v->number;
        for (const Json &s : scenarios->items)
            snapshot.scenarios.push_back(scenarioFrom(s));
        *out = std::move(snapshot);
        return true;
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

// ---------------------------------------------------------------
// Environment metadata
// ---------------------------------------------------------------

namespace {

std::string
trimmed(std::string s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    std::size_t start = 0;
    while (start < s.size() &&
           std::isspace(static_cast<unsigned char>(s[start])))
        ++start;
    return s.substr(start);
}

/** First output line of a shell command; "" on any failure. */
std::string
commandLine(const char *command)
{
    std::FILE *pipe = ::popen(command, "r");
    if (!pipe)
        return "";
    char buf[256];
    std::string out;
    if (std::fgets(buf, sizeof(buf), pipe))
        out = trimmed(buf);
    ::pclose(pipe);
    return out;
}

std::string
compilerName()
{
    char buf[64];
#if defined(__clang__)
    std::snprintf(buf, sizeof(buf), "clang %d.%d.%d",
                  __clang_major__, __clang_minor__,
                  __clang_patchlevel__);
#elif defined(__GNUC__)
    std::snprintf(buf, sizeof(buf), "gcc %d.%d.%d", __GNUC__,
                  __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
    std::snprintf(buf, sizeof(buf), "unknown");
#endif
    return buf;
}

std::string
cpuModel()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.compare(0, 10, "model name") != 0)
            continue;
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos)
            return trimmed(line.substr(colon + 1));
    }
    return "unknown";
}

} // namespace

std::map<std::string, std::string>
captureEnvironment()
{
    std::map<std::string, std::string> env;
    const std::string sha =
        commandLine("git rev-parse HEAD 2>/dev/null");
    env["git_sha"] = sha.empty() ? "unknown" : sha;
    env["compiler"] = compilerName();
    env["build_type"] = ACCORDION_BUILD_TYPE;
    env["flags"] = ACCORDION_CXX_FLAGS;
    env["cpu"] = cpuModel();
    return env;
}

} // namespace accordion::obs
