/**
 * @file
 * Live telemetry out of the stats registry: a background thread
 * periodically snapshots a StatsRegistry and (a) rewrites a file in
 * Prometheus text exposition format — atomically, via temp+rename,
 * so a scraper sidecar never reads a torn file — and (b) mirrors a
 * configured set of counters into the open Chrome TraceWriter as
 * "ph":"C" counter events, so traces show stats evolving over the
 * run instead of only the end-of-run totals.
 *
 * The exporter only *reads* instrumentation state; it can never
 * perturb simulation results. It holds no locks while formatting
 * (snapshot() copies under the registry lock, formatting is on the
 * copy).
 *
 * Prometheus naming: dotted stat names are not legal metric names,
 * so "pool.tasks" exports as "accordion_pool_tasks". Counters map
 * to counter metrics, gauges to gauge metrics, distributions to
 * summaries (quantile series + _sum + _count).
 */

#ifndef ACCORDION_OBS_METRICS_HPP
#define ACCORDION_OBS_METRICS_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stats.hpp"

namespace accordion::obs {

/** "pool.tasks" -> "accordion_pool_tasks" (legal metric name). */
std::string prometheusMetricName(const std::string &name);

/** A snapshot rendered as Prometheus text exposition format. */
std::string prometheusText(const std::vector<StatEntry> &entries);

/** The periodic flusher. */
class MetricsExporter
{
  public:
    struct Options
    {
        /** Exposition file path; empty = no file (trace counter
         *  events only). */
        std::string path;

        /** Flush period in milliseconds. */
        std::uint64_t intervalMs = 500;

        /** Counters mirrored into the trace as "C" events each
         *  flush (when the global TraceWriter is open and the
         *  counter is registered). Every `hw.*` counter and gauge
         *  is mirrored too — hardware PMU series are exactly the
         *  evolving-over-time kind the counter track is for. */
        std::vector<std::string> traceCounters = {
            "pool.tasks",
            "manycore.cross_cluster_msgs",
            "syscache.hits",
        };
    };

    /**
     * Start flushing @p registry; the first flush happens
     * immediately on the caller's thread, so ok() reports whether
     * the path is writable before any work runs. When that first
     * flush fails the background thread is never started and later
     * flushes skip the file — a dead exposition path degrades to a
     * no-op, it cannot crash or stall the run.
     */
    MetricsExporter(StatsRegistry &registry, Options options);

    /** Stops and performs one final flush. */
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /** False when the exposition file could not be written. */
    bool ok() const { return ok_.load(std::memory_order_relaxed); }

    /** Completed flushes (including the constructor's). */
    std::uint64_t flushes() const
    {
        return flushes_.load(std::memory_order_relaxed);
    }

    /** Snapshot + write + trace mirror, now, on this thread. */
    void flushNow();

    /**
     * Stop the background thread and flush once more. Idempotent;
     * the destructor calls it. Call before closing the global
     * trace writer so no counter event races the close.
     */
    void stopAndFlush();

  private:
    void loop();

    StatsRegistry &registry_;
    Options options_;
    std::atomic<bool> ok_{true};
    std::atomic<std::uint64_t> flushes_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace accordion::obs

#endif // ACCORDION_OBS_METRICS_HPP
