/**
 * @file
 * In-process sampling profiler: a POSIX interval timer
 * (timer_create on the process CPU clock) delivers SIGPROF, and the
 * async-signal-safe handler appends a raw backtrace to a per-thread
 * sample arena. Everything expensive — symbol resolution (dladdr +
 * demangling), stack folding, file output — happens off the hot
 * path, after stop().
 *
 * Contract with the rest of the system:
 *  - Zero overhead and zero signals when not running: nothing is
 *    armed, no handler is installed, no thread ever observes the
 *    profiler. Golden-figure byte-identity and the determinism
 *    contract are untouched (sampling only reads the stacks, it
 *    never feeds back into simulation state).
 *  - start()/stop() are idempotent, and only one profiler can run
 *    per process at a time (SIGPROF is process-global).
 *  - Sample timestamps are raw CLOCK_MONOTONIC nanoseconds — the
 *    same epoch as obs::nowNs() under the production clock — so
 *    samples can be injected into an open TraceWriter.
 *
 * The folded-stack output ("frameA;frameB;frameC 42" per line) is
 * the format flamegraph.pl and speedscope consume directly.
 *
 * The obs module sits *below* util and must not include it.
 */

#ifndef ACCORDION_OBS_PROFILER_HPP
#define ACCORDION_OBS_PROFILER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace accordion::obs {

class TraceWriter;
struct ProfilerSession; //!< arenas + options of one start()..stop()

/** Sampler configuration. */
struct ProfilerOptions
{
    /** Sampling period in microseconds of *process CPU time* (all
     *  running threads share the budget), ~1 kHz by default. */
    std::uint64_t intervalUs = 1000;

    /** Deepest stack recorded per sample; deeper frames are cut. */
    std::size_t maxFrames = 48;

    /** Distinct threads that can deliver samples; later threads
     *  are counted as dropped. The arenas are preallocated, so
     *  memory is maxThreads * arenaWords * 8 bytes. */
    std::size_t maxThreads = 64;

    /** Per-thread arena capacity in 64-bit words; a sample costs
     *  2 + depth words. The default holds ~20k deep samples. */
    std::size_t arenaWords = std::size_t(1) << 20;
};

/** One aggregated stack, root-first, semicolon-joined. */
struct FoldedStack
{
    std::string stack;
    std::uint64_t count = 0;
};

/** One symbol's self-time share (leaf-frame sample count). */
struct SelfTimeEntry
{
    std::string symbol;
    std::uint64_t samples = 0;
    double fraction = 0.0; //!< of all kept samples
};

/**
 * The sampler. Construct instances freely; at most one may be
 * running at a time (start() on a second returns false). Collected
 * samples survive stop() and are discarded by the next start().
 */
class SamplingProfiler
{
  public:
    SamplingProfiler();
    ~SamplingProfiler(); //!< stops if still running

    SamplingProfiler(const SamplingProfiler &) = delete;
    SamplingProfiler &operator=(const SamplingProfiler &) = delete;

    /**
     * Arm the timer and install the SIGPROF handler. False when a
     * profiler is already running (this one or another) or the
     * platform cannot deliver CPU-time signals. Idempotent: a
     * second start() on a running profiler is a no-op returning
     * false without disturbing the session in flight.
     */
    bool start(const ProfilerOptions &options = {});

    /**
     * Disarm the timer and restore the previous SIGPROF handler.
     * Idempotent; samples remain readable until the next start().
     */
    void stop();

    bool running() const;

    /** Samples captured (valid after stop()). */
    std::uint64_t sampleCount() const;

    /** Samples lost to arena exhaustion or thread overflow. */
    std::uint64_t droppedSamples() const;

    /** Distinct threads that delivered at least one sample. */
    std::size_t sampledThreads() const;

    /**
     * Symbolized, aggregated stacks, sorted by count descending
     * (ties by stack string). Symbolization is cached per address.
     */
    std::vector<FoldedStack> folded() const;

    /** folded() as flamegraph.pl input: "a;b;c 42\n" per stack. */
    std::string foldedText() const;

    /** Write foldedText() to @p path; false on I/O failure. */
    bool writeFolded(const std::string &path) const;

    /** Top-@p top_n symbols by self time (leaf-frame samples). */
    std::vector<SelfTimeEntry> selfTimes(std::size_t top_n) const;

    /**
     * Emit every sample as an instant event (leaf symbol, category
     * "profiler") into @p writer; returns events emitted. The
     * writer must be open; timestamps predating its epoch clamp.
     */
    std::size_t injectTraceSamples(TraceWriter *writer) const;

    /**
     * The pure folding step, exposed for tests: aggregate
     * leaf-first symbolized stacks into root-first folded form,
     * sorted by count descending then stack ascending.
     */
    static std::vector<FoldedStack> foldSymbolized(
        const std::vector<std::vector<std::string>> &leaf_first);

  private:
    /** Leaf-first symbol stacks + timestamps of every kept sample. */
    void decodeSamples(
        std::vector<std::vector<std::string>> *stacks,
        std::vector<std::uint64_t> *when_ns) const;

    ProfilerSession *session_ = nullptr;
    bool running_ = false;
};

} // namespace accordion::obs

#endif // ACCORDION_OBS_PROFILER_HPP
