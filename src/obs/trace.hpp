/**
 * @file
 * Chrome trace-event JSON writer (the "JSON Array/Object Format"
 * that chrome://tracing and Perfetto load): complete-event ("X")
 * spans with per-thread lanes and thread-name metadata. Spans are
 * buffered in memory and written on close(), so recording a span is
 * one mutex-protected vector push — cheap enough for per-task spans
 * from the thread pool.
 *
 * The process-wide writer is off by default; `accordion run
 * --trace <file>` opens it. TraceWriter::global() returning nullptr
 * is the "tracing off" fast path every instrumentation site checks.
 *
 * Lifetime discipline: closeGlobal() must not race in-flight spans —
 * the CLI closes only after all experiments (and the pool's worker
 * lifetime spans) have been flushed.
 */

#ifndef ACCORDION_OBS_TRACE_HPP
#define ACCORDION_OBS_TRACE_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clock.hpp"

namespace accordion::obs {

/** One trace file being recorded. */
class TraceWriter
{
  public:
    /**
     * Start recording toward @p path. The file is opened (and
     * truncated) immediately so a bad path fails fast; check ok().
     */
    explicit TraceWriter(std::string path);

    /** Writes the file if close() was never called. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** False when the output file could not be opened. */
    bool ok() const { return file_ != nullptr; }

    /**
     * Record one complete span on the calling thread's lane.
     * Timestamps are obs::nowNs() values; spans beginning before
     * the writer existed are clamped to its epoch.
     */
    void span(const char *category, const std::string &name,
              std::uint64_t start_ns, std::uint64_t end_ns);

    /**
     * Record a counter sample ("ph":"C"): the named series takes
     * @p value at @p ts_ns. Counter tracks render as a filled area
     * chart above the lanes, so periodically sampled stats (pool
     * tasks, cross-cluster messages) show their evolution over the
     * run, not just the end-of-run total.
     */
    void counter(const std::string &name, std::uint64_t ts_ns,
                 double value);

    /**
     * Record an instant event ("ph":"i", thread scope) on the
     * calling thread's lane — used for profiler samples, where the
     * event's moment matters but it has no duration.
     */
    void instant(const char *category, const std::string &name,
                 std::uint64_t ts_ns);

    /** Events recorded so far (spans + counters + instants). */
    std::size_t eventCount() const;

    /** Write the JSON and close the file. Idempotent. */
    void close();

    const std::string &path() const { return path_; }

    // --- the process-wide writer -------------------------------

    /** nullptr when tracing is off. */
    static TraceWriter *global();

    /**
     * Enable global tracing toward @p path; false when the file
     * cannot be opened. Names the calling thread "main" if it has
     * no name yet.
     */
    static bool openGlobal(const std::string &path);

    /** Write and discard the global writer; no-op when off. */
    static void closeGlobal();

  private:
    enum class Phase
    {
        Span,    //!< "X": complete event with a duration
        Counter, //!< "C": sampled counter value
        Instant, //!< "i": zero-duration marker on a thread lane
    };

    struct Event
    {
        std::string name;
        const char *category;
        std::uint64_t startNs;
        std::uint64_t durNs;
        int tid;
        Phase phase = Phase::Span;
        double value = 0.0; //!< Phase::Counter only
    };

    /** Lane of the calling thread; assigns ids 0,1,... on first use. */
    int tidOfCallingThread();

    mutable std::mutex mutex_;
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t epochNs_ = 0;
    std::vector<Event> events_;
    std::map<std::thread::id, int> tids_;
    std::vector<std::string> threadNames_; //!< indexed by tid
};

/**
 * RAII span against a writer (the global one by default). No-op —
 * not even a clock read — when tracing is off.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, std::string name)
        : ScopedSpan(category, std::move(name), TraceWriter::global())
    {
    }

    ScopedSpan(const char *category, std::string name,
               TraceWriter *writer)
        : writer_(writer), category_(category), name_(std::move(name)),
          startNs_(writer_ ? nowNs() : 0)
    {
    }

    ~ScopedSpan()
    {
        if (writer_)
            writer_->span(category_, name_, startNs_, nowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceWriter *writer_;
    const char *category_;
    std::string name_;
    std::uint64_t startNs_;
};

} // namespace accordion::obs

#endif // ACCORDION_OBS_TRACE_HPP
