#include "bsp_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "event_sim.hpp"
#include "obs/perf_events.hpp"
#include "obs/stats.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::manycore {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * A scheduled event as plain data: unlike the serial EventQueue's
 * std::function handlers, pushing and popping these never allocates
 * — the state machine is dispatched on `kind` instead.
 */
struct PodEvent
{
    double when;
    double payload;
    std::uint32_t core;
    std::uint32_t seq;
    detail::EvKind kind;
};

/**
 * Min-heap order on (when, core, seq) — the same order as the
 * serial EventQueue's (when, key, sequence). The seq tiebreak never
 * actually decides (each core has at most one pending event, so
 * (when, core) pairs are unique); it only pins the order formally.
 */
struct EvLater
{
    bool
    operator()(const PodEvent &a, const PodEvent &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.core != b.core)
            return a.core > b.core;
        return a.seq > b.seq;
    }
};

/** A cross-cluster event in flight between epochs. */
struct Mail
{
    double when;
    double payload;
    std::uint32_t core;
    detail::EvKind kind;
};

/** Cluster buses, cache-line separated so partitions never share. */
struct alignas(64) PaddedBus
{
    FifoResource bus;

    explicit PaddedBus(double service_ns) : bus(service_ns) {}
};

/**
 * One partition: a cluster's private event heap plus its outboxes.
 * Only the owning worker touches it during an epoch's run phase;
 * only the destination's owner reads an outbox during delivery.
 */
struct alignas(64) Partition
{
    std::vector<PodEvent> heap;
    std::vector<std::vector<Mail>> outbox; //!< indexed by dst partition
    std::uint32_t seq = 0;
    std::uint64_t msgs = 0; //!< cross-cluster sends from this partition

    void
    push(double when, std::uint32_t core, detail::EvKind kind,
         double payload)
    {
        heap.push_back(PodEvent{when, payload, core, seq++, kind});
        std::push_heap(heap.begin(), heap.end(), EvLater{});
    }

    double
    nextWhen() const
    {
        return heap.empty() ? kInf : heap.front().when;
    }
};

/** Sink for the partitioned engine, bound to one partition. */
struct ParSink
{
    Partition *parts = nullptr;
    PaddedBus *buses = nullptr;
    std::uint32_t self = 0;

    FifoResource &
    busOf(std::uint32_t cluster_slot)
    {
        return buses[cluster_slot].bus;
    }

    void
    post(std::uint32_t dst, SimTime when, std::uint32_t core,
         detail::EvKind kind, double payload)
    {
        Partition &mine = parts[self];
        if (dst == self) {
            mine.push(when, core, kind, payload);
            return;
        }
        ++mine.msgs;
        mine.outbox[dst].push_back(Mail{when, payload, core, kind});
    }
};

/**
 * Sink for the unpartitionable fallback: one heap for every cluster,
 * drained to completion in one pass — exactly the serial semantics
 * on POD events. Used when only one cluster is active or when the
 * lookahead degenerates to zero. (A team of one still runs the
 * partitioned epoch loop: the per-cluster heaps are ~8 entries deep
 * against ~300 for the global heap, which makes the partitioned
 * drain much faster even with nothing running concurrently.)
 */
struct MonoSink
{
    std::vector<PodEvent> heap;
    PaddedBus *buses = nullptr;
    std::uint32_t seq = 0;
    std::uint64_t msgs = 0;
    bool countMsgs = false; //!< more than one active cluster

    FifoResource &
    busOf(std::uint32_t cluster_slot)
    {
        return buses[cluster_slot].bus;
    }

    void
    post(std::uint32_t dst, SimTime when, std::uint32_t core,
         detail::EvKind kind, double payload)
    {
        (void)dst;
        if (countMsgs && kind != detail::EvKind::Chunk)
            ++msgs;
        heap.push_back(PodEvent{when, payload, core, seq++, kind});
        std::push_heap(heap.begin(), heap.end(), EvLater{});
    }
};

/** Drain a partition's events strictly before @p horizon. */
void
runPartition(const detail::SimConfig &cfg, detail::CoreSim *cores,
             ParSink &sink, Partition &part, double horizon)
{
    detail::Machine<ParSink> machine{cfg, cores, sink};
    std::vector<PodEvent> &heap = part.heap;
    while (!heap.empty() && heap.front().when < horizon) {
        std::pop_heap(heap.begin(), heap.end(), EvLater{});
        const PodEvent ev = heap.back();
        heap.pop_back();
        machine.onEvent(ev.kind, ev.core, ev.payload, ev.when);
    }
}

/** Per-worker reduction slot, cache-line separated. */
struct alignas(64) MinSlot
{
    double value = kInf;
};

/**
 * Worker team size: explicit requests are honored (capped by the
 * partition count and the helper lanes the pool can provide); auto
 * (0) additionally bows to hardware concurrency so spin barriers
 * never oversubscribe the machine. Inside a pool worker the engine
 * runs inline, mirroring the nested-parallelFor rule.
 */
std::size_t
teamSize(std::size_t requested, std::size_t partitions)
{
    if (util::ThreadPool::inWorker())
        return 1;
    util::ThreadPool &pool = util::ThreadPool::global();
    std::size_t want = requested;
    if (want == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        want = std::min<std::size_t>(pool.size(), hw > 0 ? hw : 1);
    }
    return std::min({want, partitions, pool.size() + 1});
}

} // namespace

BspPerfModel::BspPerfModel(MemorySystemParams mem, std::size_t threads)
    : mem_(mem), threads_(threads)
{
}

ExecutionEstimate
BspPerfModel::estimate(const vartech::ChipGeometry &geometry,
                       const std::vector<std::size_t> &cores,
                       double f_hz, const TaskSet &tasks,
                       const WorkloadTraits &base_traits,
                       double latency_scale) const
{
    const MemorySystemParams mem_ = scaleLatencies(this->mem_,
                                                   latency_scale);
    WorkloadTraits traits = base_traits;
    traits.syncNsPerTask *= latency_scale;
    if (cores.empty())
        util::fatal("BspPerfModel: no cores selected");
    if (f_hz <= 0.0)
        util::fatal("BspPerfModel: non-positive frequency");
    if (tasks.numTasks == 0 || tasks.instrPerTask <= 0.0)
        return {};

    const detail::Partitioning part =
        detail::partitionCores(geometry, cores);
    const std::size_t num_parts = part.activeClusters.size();
    const detail::SimConfig cfg = detail::deriveConfig(
        mem_, traits, f_hz, tasks, num_parts);
    std::vector<detail::CoreSim> state =
        detail::initialCores(tasks, part);

    std::vector<PaddedBus> buses(num_parts,
                                 PaddedBus(mem_.busServiceNs));
    const double lookahead = cfg.halfRemoteNs;
    const std::size_t team = teamSize(threads_, num_parts);

    std::uint64_t epochs = 0;
    std::uint64_t msgs = 0;

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    // Wait-state attribution (where does the epoch loop's wall time
    // go?): per-partition heap-advance and mailbox-merge *host*
    // nanoseconds, plus each worker's barrier wait. Clock reads are
    // gated on the registry so the uninstrumented hot path stays
    // clock-free; none of it feeds back into the simulation.
    const bool instrumented = registry.enabled();
    struct alignas(64) PhaseNs
    {
        std::uint64_t heapAdvance = 0;
        std::uint64_t mailboxMerge = 0;
        std::uint64_t barrierWait = 0;
    };
    std::vector<PhaseNs> phase_ns(instrumented ? num_parts : 0);

    if (num_parts == 1 || !(lookahead > 0.0)) {
        MonoSink sink;
        sink.buses = buses.data();
        sink.countMsgs = num_parts > 1;
        sink.heap.reserve(state.size() + 64);
        detail::Machine<MonoSink> machine{cfg, state.data(), sink};
        for (std::size_t i = 0; i < state.size(); ++i)
            sink.post(state[i].cluster, 0.0,
                      static_cast<std::uint32_t>(i),
                      detail::EvKind::Chunk, 0.0);
        std::vector<PodEvent> &heap = sink.heap;
        // The whole monolithic drain is one long heap advance; give
        // it the same architectural attribution as the partitioned
        // loop's run phase (no-op unless hw counters are engaged).
        ACC_SCOPED_HW("manycore.heap_advance");
        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), EvLater{});
            const PodEvent ev = heap.back();
            heap.pop_back();
            machine.onEvent(ev.kind, ev.core, ev.payload, ev.when);
        }
        epochs = 1;
        msgs = sink.msgs;
    } else {
        std::vector<Partition> parts(num_parts);
        std::vector<ParSink> sinks(num_parts);
        for (std::size_t p = 0; p < num_parts; ++p) {
            parts[p].outbox.resize(num_parts);
            sinks[p].parts = parts.data();
            sinks[p].buses = buses.data();
            sinks[p].self = static_cast<std::uint32_t>(p);
        }
        for (std::size_t i = 0; i < state.size(); ++i)
            parts[state[i].cluster].push(
                0.0, static_cast<std::uint32_t>(i),
                detail::EvKind::Chunk, 0.0);
        for (Partition &p : parts)
            p.heap.reserve(p.heap.size() + 32);

        util::SpinBarrier barrier(team);
        std::vector<MinSlot> worker_min(team);

        // Every worker runs the same loop over its own partitions
        // (p ≡ w mod team). Phases are separated by barriers: run
        // (private heaps + outbox appends), then delivery (each dst
        // owner merges its mailboxes in fixed src order and reduces
        // the local min), then the global min. All initial events
        // sit at t = 0, so every worker starts from T = 0.
        auto worker = [&](std::size_t w) -> std::uint64_t {
            std::uint64_t local_epochs = 0;
            // Barrier waits are a per-worker cost; attribute them
            // to the worker's home partition (p = w), which it
            // always owns since team <= num_parts.
            std::uint64_t barrier_wait = 0;
            // Hardware-event attribution per phase: each worker
            // samples its own counter set at the run/merge phase
            // boundaries and accumulates deltas locally, publishing
            // once at exit under hw.manycore.{heap_advance,
            // mailbox_merge} — the architectural dimension (IPC,
            // cache misses) behind the *_ns wait attribution.
            obs::HwSample hw_heap, hw_merge, hw_a, hw_b;
            const bool hw_on =
                instrumented && obs::hwSampleNow(&hw_a);
            auto hw_accum = [](obs::HwSample &acc,
                               const obs::HwSample &a,
                               const obs::HwSample &b) {
                acc.n = b.n;
                for (std::size_t i = 0; i < b.n; ++i)
                    acc.values[i] += b.values[i] - a.values[i];
            };
            double t_min = 0.0;
            while (t_min < kInf) {
                const double horizon = t_min + lookahead;
                if (hw_on)
                    obs::hwSampleNow(&hw_a);
                for (std::size_t p = w; p < num_parts; p += team) {
                    if (instrumented) {
                        const std::uint64_t t0 = obs::nowNs();
                        runPartition(cfg, state.data(), sinks[p],
                                     parts[p], horizon);
                        phase_ns[p].heapAdvance +=
                            obs::nowNs() - t0;
                    } else {
                        runPartition(cfg, state.data(), sinks[p],
                                     parts[p], horizon);
                    }
                }
                if (hw_on) {
                    obs::hwSampleNow(&hw_b);
                    hw_accum(hw_heap, hw_a, hw_b);
                }
                if (instrumented)
                    barrier_wait += barrier.arriveAndWaitTimed();
                else
                    barrier.arriveAndWait();
                if (hw_on)
                    obs::hwSampleNow(&hw_a);
                double my_min = kInf;
                for (std::size_t dst = w; dst < num_parts;
                     dst += team) {
                    const std::uint64_t m0 =
                        instrumented ? obs::nowNs() : 0;
                    Partition &d = parts[dst];
                    for (std::size_t src = 0; src < num_parts;
                         ++src) {
                        std::vector<Mail> &box =
                            parts[src].outbox[dst];
                        for (const Mail &m : box)
                            d.push(m.when, m.core, m.kind,
                                   m.payload);
                        box.clear();
                    }
                    my_min = std::min(my_min, d.nextWhen());
                    if (instrumented)
                        phase_ns[dst].mailboxMerge +=
                            obs::nowNs() - m0;
                }
                if (hw_on) {
                    obs::hwSampleNow(&hw_b);
                    hw_accum(hw_merge, hw_a, hw_b);
                }
                worker_min[w].value = my_min;
                ++local_epochs;
                if (instrumented)
                    barrier_wait += barrier.arriveAndWaitTimed();
                else
                    barrier.arriveAndWait();
                t_min = kInf;
                for (const MinSlot &slot : worker_min)
                    t_min = std::min(t_min, slot.value);
            }
            if (instrumented)
                phase_ns[w].barrierWait = barrier_wait;
            if (hw_on) {
                obs::HwSample zero;
                zero.n = hw_heap.n;
                obs::hwPublishDelta("manycore.heap_advance", zero,
                                    hw_heap);
                obs::hwPublishDelta("manycore.mailbox_merge", zero,
                                    hw_merge);
            }
            return local_epochs;
        };

        util::ThreadPool &pool = util::ThreadPool::global();
        std::vector<std::future<void>> helpers;
        helpers.reserve(team - 1);
        for (std::size_t w = 1; w < team; ++w)
            helpers.push_back(pool.submit([&worker, w] { worker(w); }));
        epochs = worker(0);
        for (std::future<void> &h : helpers)
            h.get();
        for (const Partition &p : parts)
            msgs += p.msgs;
    }

    if (registry.enabled()) {
        registry.counter("manycore.epochs").add(epochs);
        registry.counter("manycore.cross_cluster_msgs").add(msgs);
        // Per-partition load balance: *simulated* busy nanoseconds
        // accumulated by each cluster's cores.
        std::vector<double> partition_busy(num_parts, 0.0);
        for (const detail::CoreSim &cs : state)
            partition_busy[cs.cluster] += cs.busy;
        for (std::size_t p = 0; p < num_parts; ++p)
            registry
                .counter("manycore.partition" + std::to_string(p) +
                         ".busy_ns")
                .add(static_cast<std::uint64_t>(partition_busy[p]));
        // Wait-state attribution in *host* nanoseconds (only the
        // partitioned epoch loop collects it; the monolithic
        // fallback has no barriers or mailboxes to attribute).
        for (std::size_t p = 0; p < phase_ns.size(); ++p) {
            const std::string prefix =
                "manycore.partition" + std::to_string(p);
            registry.counter(prefix + ".heap_advance_ns")
                .add(phase_ns[p].heapAdvance);
            registry.counter(prefix + ".mailbox_merge_ns")
                .add(phase_ns[p].mailboxMerge);
            registry.counter(prefix + ".barrier_wait_ns")
                .add(phase_ns[p].barrierWait);
        }
    }

    struct BusView
    {
        PaddedBus *buses;
        FifoResource &
        busOf(std::uint32_t c)
        {
            return buses[c].bus;
        }
    } bus_view{buses.data()};
    return detail::assembleEstimate(state, num_parts, bus_view, tasks,
                                    traits, f_hz);
}

} // namespace accordion::manycore
