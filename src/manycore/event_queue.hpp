/**
 * @file
 * Minimal discrete-event machinery for the manycore execution
 * model: a time-ordered event queue and FIFO resources with
 * deterministic service times (cluster buses, torus ports).
 */

#ifndef ACCORDION_MANYCORE_EVENT_QUEUE_HPP
#define ACCORDION_MANYCORE_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <vector>

namespace accordion::manycore {

/** Simulated time in nanoseconds. */
using SimTime = double;

/**
 * A classic discrete-event queue. Events fire in (when, key,
 * insertion) order: ties in time break on the caller-supplied key
 * first, then on insertion order (stable). Keys make the firing
 * order independent of *insertion* order whenever each key has at
 * most one pending event — the property the BSP engine relies on to
 * match this serial queue bit for bit (see bsp_engine.hpp).
 */
class EventQueue
{
  public:
    using Handler = std::function<void(SimTime)>;

    /** Schedule @p handler at time @p when with key 0. */
    void schedule(SimTime when, Handler handler);

    /** Schedule @p handler at time @p when, tie-broken by @p key. */
    void schedule(SimTime when, std::uint64_t key, Handler handler);

    /** Schedule @p handler @p delay after the current time. */
    void scheduleAfter(SimTime delay, Handler handler);

    /** Pre-size the heap so the hot loop never reallocates. */
    void reserve(std::size_t capacity) { heap_.reserve(capacity); }

    /** Run until the queue drains; returns the final time. */
    SimTime run();

    /** Current simulation time. */
    SimTime now() const { return now_; }

    /** Pending event count. */
    std::size_t pending() const { return heap_.size(); }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t key;
        std::uint64_t sequence;
        Handler handler;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.key != b.key)
                return a.key > b.key;
            return a.sequence > b.sequence;
        }
    };

    // A plain vector driven by std::push_heap/std::pop_heap instead
    // of std::priority_queue: pop_heap leaves the minimum at the
    // back where it can be *moved* out, so running an event never
    // copies (and never reallocates) its std::function handler.
    std::vector<Event> heap_;
    SimTime now_ = 0.0;
    std::uint64_t nextSequence_ = 0;
};

/**
 * A FIFO server with a deterministic service time. acquire()
 * returns the time at which the request's service *completes*;
 * requests queue in arrival order. This models a cluster bus: each
 * memory transaction occupies the bus for serviceNs.
 */
class FifoResource
{
  public:
    explicit FifoResource(double service_ns) : serviceNs_(service_ns) {}

    /**
     * Submit a request at time @p now; returns the completion time
     * (>= now + serviceNs).
     */
    SimTime acquire(SimTime now);

    /** Total busy time accumulated so far [ns]. */
    double busyNs() const { return busyNs_; }

    /** Requests served so far. */
    std::uint64_t served() const { return served_; }

    /** Utilization over an observation window ending at @p now. */
    double utilization(SimTime now) const;

  private:
    double serviceNs_;
    SimTime nextFree_ = 0.0;
    double busyNs_ = 0.0;
    std::uint64_t served_ = 0;
};

} // namespace accordion::manycore

#endif // ACCORDION_MANYCORE_EVENT_QUEUE_HPP
