#include "event_queue.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace accordion::manycore {

void
EventQueue::schedule(SimTime when, Handler handler)
{
    if (when < now_)
        util::panic("EventQueue: scheduling into the past (%g < %g)", when,
                    now_);
    heap_.push(Event{when, nextSequence_++, std::move(handler)});
}

void
EventQueue::scheduleAfter(SimTime delay, Handler handler)
{
    schedule(now_ + delay, std::move(handler));
}

SimTime
EventQueue::run()
{
    while (!heap_.empty()) {
        // priority_queue::top returns const ref; move out via const
        // cast is UB — copy the handler instead (cheap relative to
        // the work an event does).
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.handler(now_);
    }
    return now_;
}

SimTime
FifoResource::acquire(SimTime now)
{
    const SimTime start = std::max(now, nextFree_);
    nextFree_ = start + serviceNs_;
    busyNs_ += serviceNs_;
    ++served_;
    return nextFree_;
}

double
FifoResource::utilization(SimTime now) const
{
    if (now <= 0.0)
        return 0.0;
    return std::min(1.0, busyNs_ / now);
}

} // namespace accordion::manycore
