#include "event_queue.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace accordion::manycore {

void
EventQueue::schedule(SimTime when, Handler handler)
{
    schedule(when, 0, std::move(handler));
}

void
EventQueue::schedule(SimTime when, std::uint64_t key, Handler handler)
{
    if (when < now_)
        util::panic("EventQueue: scheduling into the past (%g < %g)", when,
                    now_);
    heap_.push_back(Event{when, key, nextSequence_++, std::move(handler)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleAfter(SimTime delay, Handler handler)
{
    schedule(now_ + delay, 0, std::move(handler));
}

SimTime
EventQueue::run()
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = ev.when;
        ev.handler(now_);
    }
    return now_;
}

SimTime
FifoResource::acquire(SimTime now)
{
    const SimTime start = std::max(now, nextFree_);
    nextFree_ = start + serviceNs_;
    busyNs_ += serviceNs_;
    ++served_;
    return nextFree_;
}

double
FifoResource::utilization(SimTime now) const
{
    if (now <= 0.0)
        return 0.0;
    return std::min(1.0, busyNs_ / now);
}

} // namespace accordion::manycore
