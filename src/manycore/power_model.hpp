/**
 * @file
 * Chip power model (the McPAT substitute, scaled to 11 nm). Power
 * is accounted per engaged core (dynamic + variation-dependent
 * static), per active cluster (cluster memory + network port), and
 * checked against the fixed 100 W budget of Table 2. The model's
 * two first-order properties drive the paper's conclusions and are
 * asserted in the test suite:
 *  - power is more sensitive to core count than to frequency
 *    (cores add static AND dynamic power; f only dynamic), and
 *  - the static share of power is larger at NTV operating points.
 */

#ifndef ACCORDION_MANYCORE_POWER_MODEL_HPP
#define ACCORDION_MANYCORE_POWER_MODEL_HPP

#include <cstddef>
#include <vector>

#include "vartech/technology.hpp"
#include "vartech/variation_chip.hpp"

namespace accordion::manycore {

/** Uncore calibration knobs. */
struct PowerModelParams
{
    double budgetW = 100.0; //!< Table 2: P_MAX
    /** Cluster-memory (2 MB) static power at the STV corner [W]. */
    double clusterMemStaticStvW = 0.30;
    /** Network (bus + torus port) power per active cluster at the
     *  STV corner [W]; the network clock is fixed at 0.8 GHz. */
    double networkPerClusterStvW = 0.50;
};

/** Decomposed power of an operating point. */
struct PowerBreakdown
{
    double coreDynamicW = 0.0;
    double coreStaticW = 0.0;
    double uncoreW = 0.0;

    double total() const { return coreDynamicW + coreStaticW + uncoreW; }

    /** Static share of core power. */
    double
    staticShare() const
    {
        const double core = coreDynamicW + coreStaticW;
        return core > 0.0 ? coreStaticW / core : 0.0;
    }
};

/**
 * Evaluates chip power for a selected core set at an operating
 * point (Vdd, f).
 */
class PowerModel
{
  public:
    PowerModel(const vartech::Technology &tech,
               PowerModelParams params = {});

    /**
     * Power of one engaged core with nominal Vth [W].
     *
     * @param utilization Busy fraction (scales dynamic power only).
     */
    double corePowerNominal(double vdd, double f,
                            double utilization = 1.0) const;

    /**
     * Power of a specific core of a variation-afflicted chip [W];
     * static power uses the core's actual (Vth, Leff).
     */
    double corePower(const vartech::VariationChip &chip, std::size_t core,
                     double vdd, double f, double utilization = 1.0) const;

    /**
     * Dynamic-only component of corePower [W]. Per-core invariant at
     * a common (vdd, f), so batch consumers hoist it and add the
     * per-core static column from coreStaticPowers.
     */
    double coreDynamicPower(double vdd, double f,
                            double utilization = 1.0) const;

    /** Uncore power per active cluster at supply @p vdd [W]. */
    double uncorePowerPerCluster(double vdd) const;

    /**
     * Total chip power of a core set, all clocked at @p f with
     * supply @p vdd. Uncore power is charged once per cluster that
     * contains at least one selected core.
     */
    PowerBreakdown chipPower(const vartech::VariationChip &chip,
                             const std::vector<std::size_t> &cores,
                             double vdd, double f,
                             double utilization = 1.0) const;

    /**
     * N_STV: the maximum number of cores (plus their uncore share)
     * that fit in the budget at the STV corner, neglecting
     * variation — the paper's STV baseline favors STV this way.
     */
    std::size_t maxCoresAtStv(std::size_t cores_per_cluster) const;

    double budget() const { return params_.budgetW; }

    const PowerModelParams &params() const { return params_; }

  private:
    /** Voltage scaling of uncore power relative to the STV corner. */
    double uncoreScale(double vdd) const;

    const vartech::Technology *tech_;
    PowerModelParams params_;
};

} // namespace accordion::manycore

#endif // ACCORDION_MANYCORE_POWER_MODEL_HPP
