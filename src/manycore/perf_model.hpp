/**
 * @file
 * Execution-time models for the Table 2 manycore (the ESESC
 * substitute). Both models answer the same question the paper asks
 * its simulator: how long does a set of equal-sized parallel tasks
 * take on N selected cores, all clocked at a common frequency f,
 * with the cluster buses and the inter-cluster torus contended?
 *
 * Three implementations are provided and cross-validated in the
 * test suite:
 *  - EventDrivenPerfModel: discrete-event simulation of every
 *    cluster-memory and remote transaction through FIFO buses,
 *    drained by one serial EventQueue. The reference engine and
 *    the test oracle for the parallel one.
 *  - BspPerfModel (bsp_engine.hpp): the same simulation partitioned
 *    per cluster and advanced in lookahead-bounded epochs on the
 *    global thread pool; bit-identical to the serial engine at any
 *    thread count.
 *  - AnalyticPerfModel: closed-form M/D/1 approximation of the same
 *    machine; ~1000x faster, used inside pareto sweeps.
 */

#ifndef ACCORDION_MANYCORE_PERF_MODEL_HPP
#define ACCORDION_MANYCORE_PERF_MODEL_HPP

#include <cstddef>
#include <vector>

#include "traits.hpp"
#include "vartech/geometry.hpp"

namespace accordion::manycore {

/** A bag of identical parallel tasks. */
struct TaskSet
{
    std::size_t numTasks = 0; //!< parallel tasks (threads)
    double instrPerTask = 0.0; //!< dynamic instructions per task
    /** Clock of the control core that executes the serial merge
     *  tail (Section 4.1 reserves the fastest cores for control);
     *  0 means the workers' common clock. */
    double ccFrequencyHz = 0.0;
};

/** Result of a performance estimation. */
struct ExecutionEstimate
{
    double seconds = 0.0; //!< makespan including serial merge
    double totalInstructions = 0.0; //!< parallel + serial instructions
    double avgCoreUtilization = 0.0; //!< busy fraction of worker cores
    double maxBusUtilization = 0.0; //!< hottest cluster bus

    /** Millions of instructions per second achieved. */
    double
    mips() const
    {
        return seconds > 0.0 ? totalInstructions / seconds / 1e6 : 0.0;
    }
};

/** Interface shared by the event-driven and analytic models. */
class PerfModel
{
  public:
    virtual ~PerfModel() = default;

    /**
     * Estimate the makespan of @p tasks on @p cores.
     *
     * @param geometry Chip floorplan (maps cores to clusters).
     * @param cores Global core ids engaged in computation; all run
     *        at @p f_hz (Accordion clocks every engaged core at the
     *        same frequency, Section 4).
     * @param f_hz Common core clock [Hz].
     * @param tasks The parallel work.
     * @param traits How the workload exercises the machine.
     * @param latency_scale Scales every memory/network latency.
     *        Table 2 specifies latencies at the NTV nominal supply;
     *        the memory system shares the voltage domain, so at STV
     *        it speeds up by the technology delay factor (pass
     *        Technology::relativeDelay(vdd, vthNom)).
     */
    virtual ExecutionEstimate estimate(
        const vartech::ChipGeometry &geometry,
        const std::vector<std::size_t> &cores, double f_hz,
        const TaskSet &tasks, const WorkloadTraits &traits,
        double latency_scale) const = 0;

    /** Convenience overload at the NTV-nominal latency scale. */
    ExecutionEstimate
    estimate(const vartech::ChipGeometry &geometry,
             const std::vector<std::size_t> &cores, double f_hz,
             const TaskSet &tasks, const WorkloadTraits &traits) const
    {
        return estimate(geometry, cores, f_hz, tasks, traits, 1.0);
    }
};

/** MemorySystemParams with every latency multiplied by a factor. */
MemorySystemParams scaleLatencies(const MemorySystemParams &mem,
                                  double factor);

/** Discrete-event implementation. */
class EventDrivenPerfModel : public PerfModel
{
  public:
    explicit EventDrivenPerfModel(MemorySystemParams mem = {});

    ExecutionEstimate estimate(const vartech::ChipGeometry &geometry,
                               const std::vector<std::size_t> &cores,
                               double f_hz, const TaskSet &tasks,
                               const WorkloadTraits &traits,
                               double latency_scale) const override;
    using PerfModel::estimate;

    const MemorySystemParams &memParams() const { return mem_; }

  private:
    MemorySystemParams mem_;
};

/** Closed-form M/D/1 implementation. */
class AnalyticPerfModel : public PerfModel
{
  public:
    explicit AnalyticPerfModel(MemorySystemParams mem = {});

    ExecutionEstimate estimate(const vartech::ChipGeometry &geometry,
                               const std::vector<std::size_t> &cores,
                               double f_hz, const TaskSet &tasks,
                               const WorkloadTraits &traits,
                               double latency_scale) const override;
    using PerfModel::estimate;

    const MemorySystemParams &memParams() const { return mem_; }

  private:
    MemorySystemParams mem_;
};

} // namespace accordion::manycore

#endif // ACCORDION_MANYCORE_PERF_MODEL_HPP
