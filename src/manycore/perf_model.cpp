#include "perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "event_queue.hpp"
#include "util/log.hpp"

namespace accordion::manycore {

namespace {

/**
 * Exposed (non-overlapped) stall per private-memory access: the
 * access latency beyond one pipelined cycle, reduced by the memory-
 * level overlap the core supports.
 */
double
privateExposedNs(const MemorySystemParams &mem,
                 const WorkloadTraits &traits, double f_hz)
{
    const double cycle_ns = 1e9 / f_hz;
    const double beyond = std::max(0.0, mem.privateAccessNs - cycle_ns);
    return beyond * (1.0 - traits.overlapFactor);
}

/** Serial (control-core) tail after the parallel phase [s]. */
double
serialSeconds(const TaskSet &tasks, const WorkloadTraits &traits,
              double f_hz)
{
    const double serial_instr = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * traits.serialFraction;
    const double cc_f =
        tasks.ccFrequencyHz > 0.0 ? tasks.ccFrequencyHz : f_hz;
    return serial_instr * traits.cpiBase / cc_f;
}

} // namespace

MemorySystemParams
scaleLatencies(const MemorySystemParams &mem, double factor)
{
    MemorySystemParams scaled = mem;
    scaled.privateAccessNs *= factor;
    scaled.clusterAccessNs *= factor;
    scaled.remoteRoundTripNs *= factor;
    scaled.busServiceNs *= factor;
    scaled.torusHopNs *= factor;
    return scaled;
}

EventDrivenPerfModel::EventDrivenPerfModel(MemorySystemParams mem)
    : mem_(mem)
{
}

ExecutionEstimate
EventDrivenPerfModel::estimate(const vartech::ChipGeometry &geometry,
                               const std::vector<std::size_t> &cores,
                               double f_hz, const TaskSet &tasks,
                               const WorkloadTraits &base_traits,
                               double latency_scale) const
{
    const MemorySystemParams mem_ = scaleLatencies(this->mem_,
                                                   latency_scale);
    WorkloadTraits traits = base_traits;
    traits.syncNsPerTask *= latency_scale;
    if (cores.empty())
        util::fatal("EventDrivenPerfModel: no cores selected");
    if (f_hz <= 0.0)
        util::fatal("EventDrivenPerfModel: non-positive frequency");
    if (tasks.numTasks == 0 || tasks.instrPerTask <= 0.0)
        return {};

    // Active clusters and their buses.
    std::vector<std::size_t> core_cluster(cores.size());
    std::map<std::size_t, std::size_t> cluster_slot;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const std::size_t cl = geometry.clusterOfCore(cores[i]);
        auto [it, inserted] =
            cluster_slot.try_emplace(cl, cluster_slot.size());
        core_cluster[i] = it->second;
        (void)inserted;
    }
    std::vector<std::size_t> active_clusters(cluster_slot.size());
    for (const auto &[cl, slot] : cluster_slot)
        active_clusters[slot] = cl;
    std::vector<FifoResource> buses(active_clusters.size(),
                                    FifoResource(mem_.busServiceNs));

    // Round-robin task assignment: core i runs tasks i, i+N, ...
    const std::size_t n = cores.size();
    std::vector<std::size_t> tasks_of_core(n, tasks.numTasks / n);
    for (std::size_t i = 0; i < tasks.numTasks % n; ++i)
        ++tasks_of_core[i];

    // Chunking: aim for ~1 cluster transaction per chunk so bus
    // contention interleaves realistically.
    const double cluster_rate =
        traits.memOpsPerInstr * traits.privateMissRate;
    const double chunk_instr = cluster_rate > 0.0
        ? std::max(64.0, 1.0 / cluster_rate)
        : 4096.0;
    const double priv_exposed = privateExposedNs(mem_, traits, f_hz);
    const double compute_ns_per_instr = traits.cpiBase * 1e9 / f_hz +
        traits.memOpsPerInstr * (1.0 - traits.privateMissRate) *
            priv_exposed;
    const double exposed_factor = 1.0 - traits.overlapFactor;

    struct CoreState
    {
        std::size_t tasksLeft = 0;
        double instrLeftInTask = 0.0;
        double clusterDebt = 0.0; //!< fractional pending bus accesses
        double remoteDebt = 0.0;
        double finish = 0.0;
        double busy = 0.0;
    };
    std::vector<CoreState> state(n);
    for (std::size_t i = 0; i < n; ++i) {
        state[i].tasksLeft = tasks_of_core[i];
        state[i].instrLeftInTask =
            tasks_of_core[i] > 0 ? tasks.instrPerTask : 0.0;
    }

    EventQueue queue;
    // Each core advances one chunk per event; memory transactions
    // acquire the (time-ordered) cluster buses inside the handler.
    std::function<void(std::size_t, SimTime)> advance =
        [&](std::size_t i, SimTime now) {
            CoreState &cs = state[i];
            if (cs.tasksLeft == 0) {
                cs.finish = now;
                return;
            }
            const double instr =
                std::min(chunk_instr, cs.instrLeftInTask);
            double t = now + instr * compute_ns_per_instr;
            cs.busy += instr * compute_ns_per_instr;

            // Cluster-memory transactions earned by this chunk.
            cs.clusterDebt += instr * cluster_rate;
            while (cs.clusterDebt >= 1.0) {
                cs.clusterDebt -= 1.0;
                cs.remoteDebt += traits.clusterMissRate;
                const bool remote = cs.remoteDebt >= 1.0;
                if (remote)
                    cs.remoteDebt -= 1.0;
                const SimTime granted = buses[core_cluster[i]].acquire(t);
                const double wait = granted - t;
                double latency = mem_.clusterAccessNs;
                if (remote) {
                    // Average remote trip; the target cluster's bus
                    // is also occupied by the returning line.
                    const std::size_t peer =
                        (core_cluster[i] + 1 + buses.size() / 2) %
                        buses.size();
                    const SimTime remote_granted = buses[peer].acquire(
                        granted + mem_.remoteRoundTripNs * 0.5);
                    latency = mem_.remoteRoundTripNs +
                        (remote_granted -
                         (granted + mem_.remoteRoundTripNs * 0.5));
                }
                const double exposed = wait + latency * exposed_factor;
                t += exposed;
                cs.busy += exposed;
            }

            cs.instrLeftInTask -= instr;
            if (cs.instrLeftInTask <= 0.5) {
                --cs.tasksLeft;
                t += traits.syncNsPerTask;
                if (cs.tasksLeft > 0)
                    cs.instrLeftInTask = tasks.instrPerTask;
            }
            queue.schedule(t, [&advance, i](SimTime when) {
                advance(i, when);
            });
        };

    for (std::size_t i = 0; i < n; ++i)
        queue.schedule(0.0, [&advance, i](SimTime when) {
            advance(i, when);
        });
    queue.run();

    double makespan_ns = 0.0;
    double busy_total = 0.0;
    for (const CoreState &cs : state) {
        makespan_ns = std::max(makespan_ns, cs.finish);
        busy_total += cs.busy;
    }
    double max_bus_util = 0.0;
    for (const FifoResource &bus : buses)
        max_bus_util = std::max(max_bus_util,
                                bus.utilization(makespan_ns));

    ExecutionEstimate est;
    const double parallel_s = makespan_ns * 1e-9;
    est.seconds = parallel_s + serialSeconds(tasks, traits, f_hz);
    est.totalInstructions = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * (1.0 + traits.serialFraction);
    est.avgCoreUtilization = makespan_ns > 0.0
        ? busy_total / (static_cast<double>(n) * makespan_ns)
        : 0.0;
    est.maxBusUtilization = max_bus_util;
    return est;
}

AnalyticPerfModel::AnalyticPerfModel(MemorySystemParams mem) : mem_(mem) {}

ExecutionEstimate
AnalyticPerfModel::estimate(const vartech::ChipGeometry &geometry,
                            const std::vector<std::size_t> &cores,
                            double f_hz, const TaskSet &tasks,
                            const WorkloadTraits &base_traits,
                            double latency_scale) const
{
    const MemorySystemParams mem_ = scaleLatencies(this->mem_,
                                                   latency_scale);
    WorkloadTraits traits = base_traits;
    traits.syncNsPerTask *= latency_scale;
    if (cores.empty())
        util::fatal("AnalyticPerfModel: no cores selected");
    if (f_hz <= 0.0)
        util::fatal("AnalyticPerfModel: non-positive frequency");
    if (tasks.numTasks == 0 || tasks.instrPerTask <= 0.0)
        return {};

    // Worst-case bus population: the densest active cluster.
    std::map<std::size_t, std::size_t> cluster_count;
    for (std::size_t core : cores)
        ++cluster_count[geometry.clusterOfCore(core)];
    double avg_cores_per_cluster = 0.0;
    std::size_t max_cores_per_cluster = 0;
    for (const auto &[cl, cnt] : cluster_count) {
        avg_cores_per_cluster += static_cast<double>(cnt);
        max_cores_per_cluster = std::max(max_cores_per_cluster, cnt);
    }
    avg_cores_per_cluster /= static_cast<double>(cluster_count.size());

    const double cluster_rate =
        traits.memOpsPerInstr * traits.privateMissRate;
    const double priv_exposed = privateExposedNs(mem_, traits, f_hz);
    const double base_ns = traits.cpiBase * 1e9 / f_hz +
        traits.memOpsPerInstr * (1.0 - traits.privateMissRate) *
            priv_exposed;
    const double exposed_factor = 1.0 - traits.overlapFactor;
    const double s = mem_.busServiceNs;

    // Fixed point: per-instruction time determines the bus arrival
    // rate, whose M/D/1 wait feeds back into the per-instruction
    // time. Converges in a handful of iterations.
    double per_instr_ns = base_ns +
        cluster_rate *
            (s + mem_.clusterAccessNs * exposed_factor +
             traits.clusterMissRate * mem_.remoteRoundTripNs *
                 exposed_factor);
    double rho = 0.0;
    for (int iter = 0; iter < 60; ++iter) {
        // Arrivals at the hottest bus: every transaction of every
        // core in the cluster, plus one extra service for the remote
        // share (the returning line occupies a peer bus, modeled as
        // the same utilization by symmetry).
        const double arrivals_per_ns = avg_cores_per_cluster *
            cluster_rate * (1.0 + traits.clusterMissRate) / per_instr_ns;
        rho = std::min(0.995, arrivals_per_ns * s);
        const double wq = rho * s / (2.0 * (1.0 - rho));
        const double next = base_ns +
            cluster_rate *
                ((wq + s) * (1.0 + traits.clusterMissRate) +
                 mem_.clusterAccessNs * exposed_factor +
                 traits.clusterMissRate * mem_.remoteRoundTripNs *
                     exposed_factor);
        if (std::abs(next - per_instr_ns) < 1e-9 * per_instr_ns) {
            per_instr_ns = next;
            break;
        }
        per_instr_ns = next;
    }

    const std::size_t n = cores.size();
    const double rounds = std::ceil(static_cast<double>(tasks.numTasks) /
                                    static_cast<double>(n));
    const double per_task_ns =
        tasks.instrPerTask * per_instr_ns + traits.syncNsPerTask;
    const double parallel_s = rounds * per_task_ns * 1e-9;

    ExecutionEstimate est;
    est.seconds = parallel_s + serialSeconds(tasks, traits, f_hz);
    est.totalInstructions = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * (1.0 + traits.serialFraction);
    const double used_rounds = static_cast<double>(tasks.numTasks) /
        static_cast<double>(n);
    est.avgCoreUtilization = rounds > 0.0 ? used_rounds / rounds : 0.0;
    est.maxBusUtilization = rho *
        static_cast<double>(max_cores_per_cluster) /
        std::max(1.0, avg_cores_per_cluster);
    est.maxBusUtilization = std::min(est.maxBusUtilization, 1.0);
    return est;
}

} // namespace accordion::manycore
