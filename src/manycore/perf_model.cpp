#include "perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "event_queue.hpp"
#include "event_sim.hpp"
#include "util/log.hpp"

namespace accordion::manycore {

MemorySystemParams
scaleLatencies(const MemorySystemParams &mem, double factor)
{
    MemorySystemParams scaled = mem;
    scaled.privateAccessNs *= factor;
    scaled.clusterAccessNs *= factor;
    scaled.remoteRoundTripNs *= factor;
    scaled.busServiceNs *= factor;
    scaled.torusHopNs *= factor;
    return scaled;
}

EventDrivenPerfModel::EventDrivenPerfModel(MemorySystemParams mem)
    : mem_(mem)
{
}

namespace {

/**
 * The serial engine's sink: every event goes into one keyed
 * EventQueue; every bus lives in one flat vector. This is the
 * reference implementation the BSP engine is cross-validated
 * against (tests/test_bsp_engine.cpp).
 */
struct SerialSink
{
    EventQueue queue;
    std::vector<FifoResource> buses;
    std::vector<double> payloadOf; //!< one slot per core, see post()
    detail::Machine<SerialSink> *machine = nullptr;

    FifoResource &
    busOf(std::uint32_t cluster_slot)
    {
        return buses[cluster_slot];
    }

    void
    post(std::uint32_t dst, SimTime when, std::uint32_t core,
         detail::EvKind kind, double payload)
    {
        // The destination cluster is implicit in (kind, core); the
        // serial queue interleaves all clusters by (when, key) with
        // key = the acting core's slot. Each core has at most one
        // pending event, so (when, key) pairs are unique and the
        // firing order is independent of insertion order — the
        // property that lets the partitioned engine replay the
        // exact same order per cluster. At-most-one-pending also
        // lets the payload ride in a per-core slot instead of the
        // closure: the capture stays within std::function's
        // small-buffer size, so scheduling never allocates.
        (void)dst;
        payloadOf[core] = payload;
        queue.schedule(when, core, [this, core, kind](SimTime now) {
            machine->onEvent(kind, core, payloadOf[core], now);
        });
    }
};

} // namespace

ExecutionEstimate
EventDrivenPerfModel::estimate(const vartech::ChipGeometry &geometry,
                               const std::vector<std::size_t> &cores,
                               double f_hz, const TaskSet &tasks,
                               const WorkloadTraits &base_traits,
                               double latency_scale) const
{
    const MemorySystemParams mem_ = scaleLatencies(this->mem_,
                                                   latency_scale);
    WorkloadTraits traits = base_traits;
    traits.syncNsPerTask *= latency_scale;
    if (cores.empty())
        util::fatal("EventDrivenPerfModel: no cores selected");
    if (f_hz <= 0.0)
        util::fatal("EventDrivenPerfModel: non-positive frequency");
    if (tasks.numTasks == 0 || tasks.instrPerTask <= 0.0)
        return {};

    const detail::Partitioning part =
        detail::partitionCores(geometry, cores);
    const detail::SimConfig cfg = detail::deriveConfig(
        mem_, traits, f_hz, tasks, part.activeClusters.size());
    std::vector<detail::CoreSim> state =
        detail::initialCores(tasks, part);

    SerialSink sink;
    sink.buses.assign(part.activeClusters.size(),
                      FifoResource(mem_.busServiceNs));
    sink.payloadOf.assign(state.size(), 0.0);
    detail::Machine<SerialSink> machine{cfg, state.data(), sink};
    sink.machine = &machine;
    sink.queue.reserve(cores.size() + 64);

    for (std::size_t i = 0; i < state.size(); ++i)
        sink.post(state[i].cluster, 0.0, static_cast<std::uint32_t>(i),
                  detail::EvKind::Chunk, 0.0);
    sink.queue.run();

    return detail::assembleEstimate(state, part.activeClusters.size(),
                                    sink, tasks, traits, f_hz);
}

AnalyticPerfModel::AnalyticPerfModel(MemorySystemParams mem) : mem_(mem) {}

ExecutionEstimate
AnalyticPerfModel::estimate(const vartech::ChipGeometry &geometry,
                            const std::vector<std::size_t> &cores,
                            double f_hz, const TaskSet &tasks,
                            const WorkloadTraits &base_traits,
                            double latency_scale) const
{
    const MemorySystemParams mem_ = scaleLatencies(this->mem_,
                                                   latency_scale);
    WorkloadTraits traits = base_traits;
    traits.syncNsPerTask *= latency_scale;
    if (cores.empty())
        util::fatal("AnalyticPerfModel: no cores selected");
    if (f_hz <= 0.0)
        util::fatal("AnalyticPerfModel: non-positive frequency");
    if (tasks.numTasks == 0 || tasks.instrPerTask <= 0.0)
        return {};

    // Worst-case bus population: the densest active cluster.
    std::map<std::size_t, std::size_t> cluster_count;
    for (std::size_t core : cores)
        ++cluster_count[geometry.clusterOfCore(core)];
    double avg_cores_per_cluster = 0.0;
    std::size_t max_cores_per_cluster = 0;
    for (const auto &[cl, cnt] : cluster_count) {
        avg_cores_per_cluster += static_cast<double>(cnt);
        max_cores_per_cluster = std::max(max_cores_per_cluster, cnt);
    }
    avg_cores_per_cluster /= static_cast<double>(cluster_count.size());

    const double cluster_rate =
        traits.memOpsPerInstr * traits.privateMissRate;
    const double priv_exposed =
        detail::privateExposedNs(mem_, traits, f_hz);
    const double base_ns = traits.cpiBase * 1e9 / f_hz +
        traits.memOpsPerInstr * (1.0 - traits.privateMissRate) *
            priv_exposed;
    const double exposed_factor = 1.0 - traits.overlapFactor;
    const double s = mem_.busServiceNs;

    // Fixed point: per-instruction time determines the bus arrival
    // rate, whose M/D/1 wait feeds back into the per-instruction
    // time. Converges in a handful of iterations.
    double per_instr_ns = base_ns +
        cluster_rate *
            (s + mem_.clusterAccessNs * exposed_factor +
             traits.clusterMissRate * mem_.remoteRoundTripNs *
                 exposed_factor);
    double rho = 0.0;
    for (int iter = 0; iter < 60; ++iter) {
        // Arrivals at the hottest bus: every transaction of every
        // core in the cluster, plus one extra service for the remote
        // share (the returning line occupies a peer bus, modeled as
        // the same utilization by symmetry).
        const double arrivals_per_ns = avg_cores_per_cluster *
            cluster_rate * (1.0 + traits.clusterMissRate) / per_instr_ns;
        rho = std::min(0.995, arrivals_per_ns * s);
        const double wq = rho * s / (2.0 * (1.0 - rho));
        const double next = base_ns +
            cluster_rate *
                ((wq + s) * (1.0 + traits.clusterMissRate) +
                 mem_.clusterAccessNs * exposed_factor +
                 traits.clusterMissRate * mem_.remoteRoundTripNs *
                     exposed_factor);
        if (std::abs(next - per_instr_ns) < 1e-9 * per_instr_ns) {
            per_instr_ns = next;
            break;
        }
        per_instr_ns = next;
    }

    const std::size_t n = cores.size();
    const double rounds = std::ceil(static_cast<double>(tasks.numTasks) /
                                    static_cast<double>(n));
    const double per_task_ns =
        tasks.instrPerTask * per_instr_ns + traits.syncNsPerTask;
    const double parallel_s = rounds * per_task_ns * 1e-9;

    ExecutionEstimate est;
    est.seconds = parallel_s +
        detail::serialSeconds(tasks, traits, f_hz);
    est.totalInstructions = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * (1.0 + traits.serialFraction);
    const double used_rounds = static_cast<double>(tasks.numTasks) /
        static_cast<double>(n);
    est.avgCoreUtilization = rounds > 0.0 ? used_rounds / rounds : 0.0;
    est.maxBusUtilization = rho *
        static_cast<double>(max_cores_per_cluster) /
        std::max(1.0, avg_cores_per_cluster);
    est.maxBusUtilization = std::min(est.maxBusUtilization, 1.0);
    return est;
}

} // namespace accordion::manycore
