/**
 * @file
 * Bulk-synchronous parallel (BSP) execution of the event-driven
 * manycore timing model.
 *
 * The simulation is partitioned per active cluster: a partition
 * owns its cluster's cores, its cluster bus, and a private event
 * heap of plain-data events (no std::function, no allocation in the
 * hot loop). All partitions advance concurrently on the global
 * util::ThreadPool in epochs bounded by the conservative lookahead
 *
 *   L = 0.5 * remoteRoundTripNs (after latency scaling),
 *
 * the minimum latency of any cross-cluster message leg (Request out,
 * Response back — see event_sim.hpp). Each epoch:
 *
 *   1. T = min event time over all partitions; horizon = T + L.
 *   2. Every partition drains its events with when < horizon
 *      (strictly: a message can land exactly *at* the horizon and
 *      must wait for delivery). Cross-cluster sends go to
 *      per-(src,dst) outboxes.
 *   3. Barrier; every mailbox is merged dst-side in fixed src
 *      order, and the next T is reduced.
 *
 * Determinism argument: events order by (when, key) with key = the
 * acting core's slot, and each core has at most one in-flight event
 * (a chunk, a pending request, or a pending response), so (when,
 * key) pairs are globally unique and the execution order per
 * cluster is a pure function of the simulation — independent of
 * insertion order, mailbox batching, worker count, and thread
 * schedule. Every floating-point operation therefore happens in the
 * same sequence as in the serial EventDrivenPerfModel, making the
 * ExecutionEstimate bit-identical at any thread count (asserted
 * across a grid in tests/test_bsp_engine.cpp, with the serial
 * EventQueue::run() path as the oracle).
 *
 * Observability (when the global StatsRegistry is enabled):
 * manycore.epochs, manycore.cross_cluster_msgs, and per-partition
 * simulated busy time (manycore.partitionN.busy_ns).
 */

#ifndef ACCORDION_MANYCORE_BSP_ENGINE_HPP
#define ACCORDION_MANYCORE_BSP_ENGINE_HPP

#include "perf_model.hpp"

namespace accordion::manycore {

/** BSP-partitioned discrete-event implementation. */
class BspPerfModel : public PerfModel
{
  public:
    /**
     * @param mem Memory-system latencies (Table 2 values by default).
     * @param threads Worker team size; 0 picks min(global pool size,
     *        hardware concurrency). An explicit value forces real
     *        worker teams even on machines with fewer hardware
     *        threads (the determinism tests sweep 1/2/4/8), but is
     *        still capped by the partition count and by the helper
     *        lanes the global pool can provide. Called from inside a
     *        pool worker (e.g. a pareto sweep), the engine always
     *        runs single-threaded inline, mirroring the nested
     *        parallelFor rule.
     */
    explicit BspPerfModel(MemorySystemParams mem = {},
                          std::size_t threads = 0);

    ExecutionEstimate estimate(const vartech::ChipGeometry &geometry,
                               const std::vector<std::size_t> &cores,
                               double f_hz, const TaskSet &tasks,
                               const WorkloadTraits &traits,
                               double latency_scale) const override;
    using PerfModel::estimate;

    const MemorySystemParams &memParams() const { return mem_; }

    /** The configured team size request (0 = auto). */
    std::size_t requestedThreads() const { return threads_; }

  private:
    MemorySystemParams mem_;
    std::size_t threads_;
};

} // namespace accordion::manycore

#endif // ACCORDION_MANYCORE_BSP_ENGINE_HPP
