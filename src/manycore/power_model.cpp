#include "power_model.hpp"

#include "util/log.hpp"

namespace accordion::manycore {

PowerModel::PowerModel(const vartech::Technology &tech,
                       PowerModelParams params)
    : tech_(&tech), params_(params)
{
}

double
PowerModel::corePowerNominal(double vdd, double f,
                             double utilization) const
{
    return tech_->dynamicPower(vdd, f) * utilization +
        tech_->staticPower(vdd, tech_->params().vthNom);
}

double
PowerModel::corePower(const vartech::VariationChip &chip, std::size_t core,
                      double vdd, double f, double utilization) const
{
    return tech_->dynamicPower(vdd, f) * utilization +
        chip.coreStaticPower(core, vdd);
}

double
PowerModel::coreDynamicPower(double vdd, double f,
                             double utilization) const
{
    return tech_->dynamicPower(vdd, f) * utilization;
}

double
PowerModel::uncoreScale(double vdd) const
{
    const double vth = tech_->params().vthNom;
    const double vdd_stv = tech_->params().vddStv;
    // Memory and network are leakage- and wire-dominated; scale
    // their power like static power (the network clock is fixed).
    return tech_->staticPower(vdd, vth) /
        tech_->staticPower(vdd_stv, vth);
}

double
PowerModel::uncorePowerPerCluster(double vdd) const
{
    return (params_.clusterMemStaticStvW + params_.networkPerClusterStvW) *
        uncoreScale(vdd);
}

PowerBreakdown
PowerModel::chipPower(const vartech::VariationChip &chip,
                      const std::vector<std::size_t> &cores, double vdd,
                      double f, double utilization) const
{
    PowerBreakdown sum;
    // The dynamic term is per-core invariant at a common (vdd, f);
    // repeated addition of the hoisted value matches the historical
    // per-core recomputation bit for bit. The static column comes
    // from one gathered batch query, accumulated in selection order.
    const double dyn = tech_->dynamicPower(vdd, f) * utilization;
    std::vector<double> static_w(cores.size());
    chip.coreStaticPowers(vdd, cores, static_w);
    std::vector<unsigned char> cluster_mark(chip.numClusters(), 0);
    std::size_t clusters = 0;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        sum.coreDynamicW += dyn;
        sum.coreStaticW += static_w[i];
        unsigned char &mark =
            cluster_mark[chip.geometry().clusterOfCore(cores[i])];
        clusters += mark == 0 ? 1 : 0;
        mark = 1;
    }
    sum.uncoreW = static_cast<double>(clusters) *
        uncorePowerPerCluster(vdd);
    return sum;
}

std::size_t
PowerModel::maxCoresAtStv(std::size_t cores_per_cluster) const
{
    const double vdd = tech_->params().vddStv;
    const double per_core = corePowerNominal(vdd, tech_->fStv()) +
        uncorePowerPerCluster(vdd) /
            static_cast<double>(cores_per_cluster);
    const auto n = static_cast<std::size_t>(params_.budgetW / per_core);
    if (n == 0)
        util::fatal("PowerModel: budget %g W fits no STV core (%g W each)",
                    params_.budgetW, per_core);
    return n;
}

} // namespace accordion::manycore
