/**
 * @file
 * The event-driven manycore timing model, factored as a header-only
 * per-core state machine shared by two execution engines:
 *
 *  - EventDrivenPerfModel (perf_model.cpp): drains one serial
 *    EventQueue — the readable reference implementation and the
 *    test oracle for the parallel engine.
 *  - BspPerfModel (bsp_engine.cpp): per-cluster event heaps advanced
 *    concurrently in lookahead-bounded epochs.
 *
 * Both engines execute the *same* Machine<> member functions in the
 * same order on the same state, so every floating-point operation
 * sequence — per core and per cluster bus — is identical, which is
 * what makes their ExecutionEstimates bit-identical.
 *
 * Simulation semantics (one core):
 *  - Work advances in chunks of ~1 expected cluster transaction.
 *    A Chunk event at time `now` advances the core's local clock to
 *    t = now + instr * computeNsPerInstr and then replays the bus
 *    transactions the chunk earned.
 *  - A cluster-local transaction acquires the home bus at t and
 *    exposes wait + clusterAccessNs * exposedFactor.
 *  - A remote transaction becomes a message exchange: a Request
 *    departs when the home bus grants it and reaches the peer
 *    cluster half a round trip later; the peer's bus serves it in
 *    arrival order; a Response returns after another half round
 *    trip. The requesting core is suspended until the Response.
 *    Both message legs take at least lookaheadNs = 0.5 * rtt — the
 *    conservative lookahead the BSP epochs are bounded by.
 *  - Task completion adds syncNsPerTask and either reloads
 *    instrPerTask or, with no tasks left, records the finish time.
 */

#ifndef ACCORDION_MANYCORE_EVENT_SIM_HPP
#define ACCORDION_MANYCORE_EVENT_SIM_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "event_queue.hpp"
#include "perf_model.hpp"
#include "vartech/geometry.hpp"

namespace accordion::manycore::detail {

/** What a scheduled event does when it fires. */
enum class EvKind : std::uint8_t
{
    Chunk = 0, //!< core advances one chunk of instructions
    Request = 1, //!< remote access arrives at the peer cluster
    Response = 2, //!< remote line returns to the requesting core
};

/**
 * Exposed (non-overlapped) stall per private-memory access: the
 * access latency beyond one pipelined cycle, reduced by the memory-
 * level overlap the core supports.
 */
inline double
privateExposedNs(const MemorySystemParams &mem,
                 const WorkloadTraits &traits, double f_hz)
{
    const double cycle_ns = 1e9 / f_hz;
    const double beyond = std::max(0.0, mem.privateAccessNs - cycle_ns);
    return beyond * (1.0 - traits.overlapFactor);
}

/** Serial (control-core) tail after the parallel phase [s]. */
inline double
serialSeconds(const TaskSet &tasks, const WorkloadTraits &traits,
              double f_hz)
{
    const double serial_instr = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * traits.serialFraction;
    const double cc_f =
        tasks.ccFrequencyHz > 0.0 ? tasks.ccFrequencyHz : f_hz;
    return serial_instr * traits.cpiBase / cc_f;
}

/** Everything the per-event code needs, derived once per estimate. */
struct SimConfig
{
    double chunkInstr = 0.0;
    double computeNsPerInstr = 0.0;
    double clusterRate = 0.0; //!< bus transactions per instruction
    double clusterMissRate = 0.0;
    double exposedFactor = 0.0;
    double clusterAccessNs = 0.0;
    double remoteRoundTripNs = 0.0;
    double halfRemoteNs = 0.0; //!< one message leg; the BSP lookahead
    double instrPerTask = 0.0;
    double syncNsPerTask = 0.0;
    std::size_t numClusters = 0; //!< active clusters (bus count)
};

inline SimConfig
deriveConfig(const MemorySystemParams &mem, const WorkloadTraits &traits,
             double f_hz, const TaskSet &tasks, std::size_t num_clusters)
{
    SimConfig cfg;
    // Chunking: aim for ~1 cluster transaction per chunk so bus
    // contention interleaves realistically.
    cfg.clusterRate = traits.memOpsPerInstr * traits.privateMissRate;
    cfg.chunkInstr = cfg.clusterRate > 0.0
        ? std::max(64.0, 1.0 / cfg.clusterRate)
        : 4096.0;
    const double priv_exposed = privateExposedNs(mem, traits, f_hz);
    cfg.computeNsPerInstr = traits.cpiBase * 1e9 / f_hz +
        traits.memOpsPerInstr * (1.0 - traits.privateMissRate) *
            priv_exposed;
    cfg.clusterMissRate = traits.clusterMissRate;
    cfg.exposedFactor = 1.0 - traits.overlapFactor;
    cfg.clusterAccessNs = mem.clusterAccessNs;
    cfg.remoteRoundTripNs = mem.remoteRoundTripNs;
    cfg.halfRemoteNs = 0.5 * mem.remoteRoundTripNs;
    cfg.instrPerTask = tasks.instrPerTask;
    cfg.syncNsPerTask = traits.syncNsPerTask;
    cfg.numClusters = num_clusters;
    return cfg;
}

/**
 * Maps engaged cores to dense *active-cluster slots* in order of
 * first appearance (so slot numbering is a pure function of the
 * core list, independent of engine).
 */
struct Partitioning
{
    std::vector<std::uint32_t> coreCluster; //!< core slot -> cluster slot
    std::vector<std::size_t> activeClusters; //!< cluster slot -> cluster id
};

inline Partitioning
partitionCores(const vartech::ChipGeometry &geometry,
               const std::vector<std::size_t> &cores)
{
    Partitioning part;
    part.coreCluster.resize(cores.size());
    std::vector<std::uint32_t> slot_of(geometry.numClusters(),
                                       UINT32_MAX);
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const std::size_t cl = geometry.clusterOfCore(cores[i]);
        if (slot_of[cl] == UINT32_MAX) {
            slot_of[cl] =
                static_cast<std::uint32_t>(part.activeClusters.size());
            part.activeClusters.push_back(cl);
        }
        part.coreCluster[i] = slot_of[cl];
    }
    return part;
}

/**
 * The peer cluster serving a remote access: a fixed offset walk
 * roughly halfway around the active-cluster ring, so remote traffic
 * spreads without landing on a neighbour.
 */
inline std::uint32_t
peerOf(std::uint32_t cluster_slot, std::size_t num_clusters)
{
    return static_cast<std::uint32_t>(
        (cluster_slot + 1 + num_clusters / 2) % num_clusters);
}

/** Per-core simulation state. */
struct CoreSim
{
    std::size_t tasksLeft = 0;
    double instrLeftInTask = 0.0;
    double clusterDebt = 0.0; //!< fractional pending bus accesses
    double remoteDebt = 0.0;
    double t = 0.0; //!< local clock while executing a chunk
    double busy = 0.0;
    double finish = 0.0;
    double chunkInstr = 0.0; //!< instructions of the chunk in flight
    double pendingWait = 0.0; //!< home-bus wait of the pending remote
    double pendingReqArrival = 0.0; //!< when the Request reached the peer
    std::uint32_t cluster = 0; //!< home active-cluster slot
};

/**
 * Initial core states: round-robin task assignment (core i runs
 * tasks i, i+N, ...), home-cluster slots attached.
 */
inline std::vector<CoreSim>
initialCores(const TaskSet &tasks, const Partitioning &part)
{
    const std::size_t n = part.coreCluster.size();
    std::vector<CoreSim> state(n);
    for (std::size_t i = 0; i < n; ++i) {
        state[i].tasksLeft =
            tasks.numTasks / n + (i < tasks.numTasks % n ? 1 : 0);
        state[i].instrLeftInTask =
            state[i].tasksLeft > 0 ? tasks.instrPerTask : 0.0;
        state[i].cluster = part.coreCluster[i];
    }
    return state;
}

/**
 * The per-core state machine, templated on the engine ("sink")
 * that owns event delivery and bus storage. A Sink provides:
 *
 *   FifoResource &busOf(std::uint32_t cluster_slot);
 *   void post(std::uint32_t dst_cluster_slot, SimTime when,
 *             std::uint32_t core, EvKind kind, double payload);
 *
 * Machine only ever touches busOf(c) for the cluster c an event
 * *executes* at (Chunk/Response: the core's home; Request: the
 * peer), so a partitioned sink can keep each bus private to the
 * worker that owns its cluster.
 */
template <typename Sink> struct Machine
{
    const SimConfig &cfg;
    CoreSim *cores;
    Sink &sink;

    void
    onEvent(EvKind kind, std::uint32_t core, double payload, SimTime now)
    {
        switch (kind) {
        case EvKind::Chunk:
            onChunk(core, now);
            break;
        case EvKind::Request:
            onRequest(core, now);
            break;
        case EvKind::Response:
            onResponse(core, payload, now);
            break;
        }
    }

  private:
    void
    onChunk(std::uint32_t core, SimTime now)
    {
        CoreSim &cs = cores[core];
        if (cs.tasksLeft == 0) {
            cs.finish = now;
            return;
        }
        const double instr = std::min(cfg.chunkInstr, cs.instrLeftInTask);
        const double compute = instr * cfg.computeNsPerInstr;
        cs.chunkInstr = instr;
        cs.t = now + compute;
        cs.busy += compute;
        // Cluster-memory transactions earned by this chunk.
        cs.clusterDebt += instr * cfg.clusterRate;
        runTransactions(core, now);
    }

    /**
     * Replay the chunk's pending bus transactions. Suspends (and
     * returns early) when a transaction goes remote; onResponse
     * resumes here with the remaining debt.
     */
    void
    runTransactions(std::uint32_t core, SimTime now)
    {
        CoreSim &cs = cores[core];
        FifoResource &bus = sink.busOf(cs.cluster);
        while (cs.clusterDebt >= 1.0) {
            cs.clusterDebt -= 1.0;
            cs.remoteDebt += cfg.clusterMissRate;
            const bool remote = cs.remoteDebt >= 1.0;
            if (remote)
                cs.remoteDebt -= 1.0;
            const SimTime granted = bus.acquire(cs.t);
            const double wait = granted - cs.t;
            if (remote) {
                // The request departs once the home bus grants it
                // (never before the current event: messages must not
                // travel into this cluster's past) and reaches the
                // peer half a round trip later.
                cs.pendingWait = wait;
                const SimTime depart = std::max(granted, now);
                cs.pendingReqArrival = depart + cfg.halfRemoteNs;
                sink.post(peerOf(cs.cluster, cfg.numClusters),
                          cs.pendingReqArrival, core, EvKind::Request,
                          0.0);
                return;
            }
            const double exposed =
                wait + cfg.clusterAccessNs * cfg.exposedFactor;
            cs.t += exposed;
            cs.busy += exposed;
        }
        finishChunk(core, now);
    }

    void
    finishChunk(std::uint32_t core, SimTime now)
    {
        CoreSim &cs = cores[core];
        cs.instrLeftInTask -= cs.chunkInstr;
        cs.chunkInstr = 0.0;
        if (cs.instrLeftInTask <= 0.5) {
            --cs.tasksLeft;
            cs.t += cfg.syncNsPerTask;
            if (cs.tasksLeft > 0)
                cs.instrLeftInTask = cfg.instrPerTask;
        }
        sink.post(cs.cluster, std::max(cs.t, now), core, EvKind::Chunk,
                  0.0);
    }

    /** Request arrival: the peer bus serves the line in FIFO order. */
    void
    onRequest(std::uint32_t core, SimTime now)
    {
        CoreSim &cs = cores[core];
        const std::uint32_t peer = peerOf(cs.cluster, cfg.numClusters);
        const SimTime remote_granted = sink.busOf(peer).acquire(now);
        sink.post(cs.cluster, remote_granted + cfg.halfRemoteNs, core,
                  EvKind::Response, remote_granted);
    }

    /** Response arrival: charge the remote latency, resume the chunk. */
    void
    onResponse(std::uint32_t core, double remote_granted, SimTime now)
    {
        CoreSim &cs = cores[core];
        const double peer_wait = remote_granted - cs.pendingReqArrival;
        const double latency = cfg.remoteRoundTripNs + peer_wait;
        const double exposed =
            cs.pendingWait + latency * cfg.exposedFactor;
        cs.t += exposed;
        cs.busy += exposed;
        runTransactions(core, now);
    }
};

/**
 * Fold the drained simulation into an ExecutionEstimate. Reduction
 * order is fixed (core slots ascending, then cluster slots
 * ascending) so both engines sum in the same sequence.
 */
template <typename Sink>
ExecutionEstimate
assembleEstimate(const std::vector<CoreSim> &cores,
                 std::size_t num_clusters, Sink &sink,
                 const TaskSet &tasks, const WorkloadTraits &traits,
                 double f_hz)
{
    double makespan_ns = 0.0;
    double busy_total = 0.0;
    for (const CoreSim &cs : cores) {
        makespan_ns = std::max(makespan_ns, cs.finish);
        busy_total += cs.busy;
    }
    double max_bus_util = 0.0;
    for (std::size_t c = 0; c < num_clusters; ++c)
        max_bus_util = std::max(
            max_bus_util,
            sink.busOf(static_cast<std::uint32_t>(c))
                .utilization(makespan_ns));

    ExecutionEstimate est;
    const double parallel_s = makespan_ns * 1e-9;
    est.seconds = parallel_s + serialSeconds(tasks, traits, f_hz);
    est.totalInstructions = static_cast<double>(tasks.numTasks) *
        tasks.instrPerTask * (1.0 + traits.serialFraction);
    est.avgCoreUtilization = makespan_ns > 0.0
        ? busy_total /
            (static_cast<double>(cores.size()) * makespan_ns)
        : 0.0;
    est.maxBusUtilization = max_bus_util;
    return est;
}

} // namespace accordion::manycore::detail

#endif // ACCORDION_MANYCORE_EVENT_SIM_HPP
