/**
 * @file
 * Workload execution traits and memory-system parameters consumed
 * by the manycore performance model. A WorkloadTraits instance
 * abstracts how one RMS kernel exercises the machine: instruction
 * mix, locality, memory-level overlap, and synchronization cost.
 * Each kernel in src/rms reports its own traits.
 */

#ifndef ACCORDION_MANYCORE_TRAITS_HPP
#define ACCORDION_MANYCORE_TRAITS_HPP

namespace accordion::manycore {

/**
 * Memory-system latencies and service rates of the Table 2 machine:
 * 64 KB write-through private memory (2 ns), 2 MB write-back cluster
 * memory (10 ns), bus inside the cluster, 2D torus across clusters,
 * ~80 ns average uncontended remote round trip.
 */
struct MemorySystemParams
{
    double privateAccessNs = 2.0; //!< core-private memory access
    double clusterAccessNs = 10.0; //!< cluster memory access
    double remoteRoundTripNs = 80.0; //!< avg uncontended remote trip
    double busServiceNs = 5.0; //!< cluster-bus occupancy per line
    double torusHopNs = 6.25; //!< per-hop latency at f_network=0.8GHz
    double networkFreqGhz = 0.8; //!< Table 2
};

/**
 * How a kernel loads the machine. All rates are per dynamic
 * instruction unless noted.
 */
struct WorkloadTraits
{
    /** Base CPI of the single-issue core with all accesses hitting
     *  the private memory (private hits are pipelined). */
    double cpiBase = 1.0;
    /** Memory operations per instruction. */
    double memOpsPerInstr = 0.25;
    /** Fraction of memory ops missing the private memory and going
     *  to the cluster memory. */
    double privateMissRate = 0.03;
    /** Fraction of cluster accesses that go to a remote cluster. */
    double clusterMissRate = 0.10;
    /** Fraction of miss latency hidden by overlap with computation
     *  (memory accesses can be overlapped, Section 5.1). */
    double overlapFactor = 0.4;
    /** Fixed per-task synchronization/dispatch overhead [ns],
     *  independent of the operating frequency (mailbox/queue work
     *  runs at the network clock). */
    double syncNsPerTask = 200.0;
    /** Serial (control) work on the master core per parallel task,
     *  as a fraction of one task's instructions — the CC-side merge
     *  and housekeeping of Section 4.1. */
    double serialFraction = 0.01;
};

} // namespace accordion::manycore

#endif // ACCORDION_MANYCORE_TRAITS_HPP
