#include "hotspot.hpp"

#include <cmath>

#include "util/grid.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

/** Synthetic floorplan power map: a few hot functional blocks. */
util::Grid2D<double>
makePowerMap(const HotspotConfig &cfg, util::Rng &rng)
{
    util::Grid2D<double> power(cfg.rows, cfg.cols, 0.05);
    const std::size_t blocks = 6;
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t r0 = rng.uniformInt(cfg.rows * 3 / 4);
        const std::size_t c0 = rng.uniformInt(cfg.cols * 3 / 4);
        const std::size_t h = 4 + rng.uniformInt(cfg.rows / 4);
        const std::size_t w = 4 + rng.uniformInt(cfg.cols / 4);
        const double level = cfg.maxPower *
            (0.3 + 0.7 * rng.uniform());
        for (std::size_t r = r0; r < std::min(cfg.rows, r0 + h); ++r)
            for (std::size_t c = c0; c < std::min(cfg.cols, c0 + w); ++c)
                power.at(r, c) += level;
    }
    return power;
}

} // namespace

Hotspot::Hotspot(HotspotConfig config) : config_(config) {}

std::vector<double>
Hotspot::inputSweep() const
{
    return {12, 16, 24, 32, 48, 64, 96, 128};
}

RunResult
Hotspot::run(const RunConfig &config) const
{
    if (config.input < 1.0)
        util::fatal("hotspot: iteration count must be >= 1");
    const auto iterations = static_cast<std::size_t>(config.input);
    util::Rng rng(config.seed, 0x407590);
    const util::Grid2D<double> power = makePowerMap(config_, rng);

    // Initial temperatures: a plausible local estimate (ambient plus
    // the cell's own dissipation through the sink), as Rodinia's
    // input files provide.
    util::Grid2D<double> temp(config_.rows, config_.cols, 0.0);
    for (std::size_t r = 0; r < config_.rows; ++r)
        for (std::size_t c = 0; c < config_.cols; ++c)
            temp.at(r, c) = config_.ambient +
                power.at(r, c) * config_.rz * 0.6;

    // Row ownership: contiguous row bands per thread.
    auto owner = [&](std::size_t row) {
        return row * config.threads / config_.rows;
    };

    util::Grid2D<double> next = temp;
    for (std::size_t it = 0; it < iterations; ++it) {
        for (std::size_t r = 0; r < config_.rows; ++r) {
            const std::size_t t = owner(r);
            if (config.fault.infected(t, config.threads) &&
                config.fault.drops())
                continue; // temperature equation skipped
            for (std::size_t c = 0; c < config_.cols; ++c) {
                const double here = temp.at(r, c);
                const double north =
                    r > 0 ? temp.at(r - 1, c) : here;
                const double south =
                    r + 1 < config_.rows ? temp.at(r + 1, c) : here;
                const double west =
                    c > 0 ? temp.at(r, c - 1) : here;
                const double east =
                    c + 1 < config_.cols ? temp.at(r, c + 1) : here;
                const double delta = config_.step *
                    (power.at(r, c) +
                     (north + south - 2.0 * here) / config_.ry +
                     (east + west - 2.0 * here) / config_.rx +
                     (config_.ambient - here) / config_.rz);
                next.at(r, c) = here + delta;
            }
        }
        std::swap(temp, next);
        // Rows skipped this iteration keep their previous values in
        // `next` too (they were copied on the prior swap), matching
        // "prevent update of the corresponding cell temperature".
        for (std::size_t r = 0; r < config_.rows; ++r) {
            const std::size_t t = owner(r);
            if (config.fault.infected(t, config.threads) &&
                config.fault.drops())
                for (std::size_t c = 0; c < config_.cols; ++c)
                    next.at(r, c) = temp.at(r, c);
        }
    }

    RunResult result;
    result.output = temp.data();
    result.problemSize = static_cast<double>(iterations) *
        static_cast<double>(config_.rows * config_.cols);
    result.taskSet.numTasks = config.threads;
    // ~14 dynamic instructions per stencil cell update.
    result.taskSet.instrPerTask = result.problemSize /
        static_cast<double>(config.threads) * 14.0;
    return result;
}

double
Hotspot::quality(const RunResult &result, const RunResult &reference) const
{
    if (result.output.size() != reference.output.size())
        util::fatal("hotspot: output size mismatch");
    double ssd = 0.0;
    for (std::size_t i = 0; i < result.output.size(); ++i) {
        const double d = result.output[i] - reference.output[i];
        ssd += d * d;
    }
    const double mse = ssd / static_cast<double>(result.output.size());
    // SSD-based distortion: larger temperature deviation, lower
    // quality; errors are scored against the acceptable tolerance
    // and mapped into (0, 1].
    const double tol2 = config_.toleranceC * config_.toleranceC;
    return 1.0 / (1.0 + mse / tol2);
}

manycore::WorkloadTraits
Hotspot::traits() const
{
    manycore::WorkloadTraits t;
    // Regular stencil: streaming accesses, good locality, high
    // overlap.
    t.cpiBase = 1.0;
    t.memOpsPerInstr = 0.35;
    t.privateMissRate = 0.02;
    t.clusterMissRate = 0.10;
    t.overlapFactor = 0.6;
    t.syncNsPerTask = 250.0;
    t.serialFraction = 0.0004;
    return t;
}

} // namespace accordion::rms
