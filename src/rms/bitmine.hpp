/**
 * @file
 * bitmine: the strict-weak-scaling workload the paper's Discussion
 * (Section 7) points to — "novel application domains such as
 * bitcoin mining". A proof-of-work nonce search: each thread scans
 * a private nonce range for hashes below a difficulty target. The
 * Accordion input is the nonces searched per thread, so per-thread
 * work stays *exactly* constant as the problem scales with the
 * core count — weak scaling in the strict Gustafson sense, unlike
 * the six PARSEC/Rodinia kernels whose per-thread work grows with
 * problem size. Quality (shares found) is exactly proportional to
 * the surviving work, making this the best-case Accordion
 * workload: dropping tasks or compressing the problem trades
 * quality for cores one-for-one.
 *
 * Not part of the paper's Table 3 six; exposed via
 * extendedWorkloads().
 */

#ifndef ACCORDION_RMS_BITMINE_HPP
#define ACCORDION_RMS_BITMINE_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Search shape. */
struct BitmineConfig
{
    /** A share is found when hash < 2^64 / difficulty. */
    double difficulty = 4096.0;
};

/** bitmine workload. */
class Bitmine : public Workload
{
  public:
    explicit Bitmine(BitmineConfig config = {});

    std::string name() const override { return "bitmine"; }
    std::string domain() const override
    {
        return "Proof-of-work search";
    }
    std::string qualityMetricName() const override
    {
        return "Valid shares found";
    }
    std::string accordionInputName() const override
    {
        return "Nonces per thread";
    }
    double defaultInput() const override { return 65536.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 1048576.0; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Linear;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Linear;
    }

    const BitmineConfig &config() const { return config_; }

  private:
    BitmineConfig config_;
};

/** The Table 3 six plus the Section 7 extension workloads. */
const std::vector<const Workload *> &extendedWorkloads();

} // namespace accordion::rms

#endif // ACCORDION_RMS_BITMINE_HPP
