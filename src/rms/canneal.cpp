#include "canneal.hpp"

#include <cmath>
#include <algorithm>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

/** Synthetic netlist: elements with random nets, placed on a grid. */
struct Netlist
{
    std::size_t gridSide;
    std::vector<std::vector<std::size_t>> nets; //!< per element
    std::vector<std::size_t> slotOf; //!< element -> grid slot

    Netlist(const CannealConfig &cfg, util::Rng &rng)
        : gridSide(cfg.gridSide), nets(cfg.elements),
          slotOf(cfg.elements)
    {
        if (cfg.elements > cfg.gridSide * cfg.gridSide)
            util::fatal("canneal: %zu elements exceed %zu slots",
                        cfg.elements, cfg.gridSide * cfg.gridSide);
        // Real netlists are local: elements mostly connect to
        // latent neighbors. Lay elements on a latent grid, wire
        // each to nearby peers, then scramble the initial
        // placement — the annealer's job is to rediscover the
        // latent locality.
        const auto side = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(cfg.elements))));
        for (std::size_t e = 0; e < cfg.elements; ++e) {
            const long ex = static_cast<long>(e % side);
            const long ey = static_cast<long>(e / side);
            nets[e].reserve(cfg.fanout);
            for (std::size_t k = 0; k < cfg.fanout; ++k) {
                const long dx =
                    static_cast<long>(std::lround(rng.normal(0, 2.0)));
                const long dy =
                    static_cast<long>(std::lround(rng.normal(0, 2.0)));
                const long px = std::clamp<long>(
                    ex + dx, 0, static_cast<long>(side) - 1);
                const long py = std::clamp<long>(
                    ey + dy, 0, static_cast<long>(side) - 1);
                auto peer = static_cast<std::size_t>(
                    py * static_cast<long>(side) + px);
                if (peer >= cfg.elements || peer == e)
                    peer = (e + 1 + k) % cfg.elements;
                nets[e].push_back(peer);
            }
        }
        // Random initial placement (Fisher-Yates).
        for (std::size_t e = 0; e < cfg.elements; ++e)
            slotOf[e] = e;
        for (std::size_t e = cfg.elements - 1; e > 0; --e)
            std::swap(slotOf[e], slotOf[rng.uniformInt(e + 1)]);
    }

    double
    wireLength(std::size_t slot_a, std::size_t slot_b) const
    {
        const auto ax = slot_a % gridSide, ay = slot_a / gridSide;
        const auto bx = slot_b % gridSide, by = slot_b / gridSide;
        const double dx = ax > bx ? ax - bx : bx - ax;
        const double dy = ay > by ? ay - by : by - ay;
        return dx + dy;
    }

    /** Total routing cost (each directed net counted once). */
    double
    routingCost() const
    {
        double cost = 0.0;
        for (std::size_t e = 0; e < nets.size(); ++e)
            for (std::size_t peer : nets[e])
                cost += wireLength(slotOf[e], slotOf[peer]);
        return cost;
    }

    /** Cost change of swapping the slots of elements a and b. */
    double
    swapDelta(std::size_t a, std::size_t b) const
    {
        double delta = 0.0;
        for (std::size_t peer : nets[a]) {
            if (peer == a || peer == b)
                continue;
            delta += wireLength(slotOf[b], slotOf[peer]) -
                wireLength(slotOf[a], slotOf[peer]);
        }
        for (std::size_t peer : nets[b]) {
            if (peer == a || peer == b)
                continue;
            delta += wireLength(slotOf[a], slotOf[peer]) -
                wireLength(slotOf[b], slotOf[peer]);
        }
        return delta;
    }
};

} // namespace

Canneal::Canneal(CannealConfig config) : config_(config) {}

std::vector<double>
Canneal::inputSweep() const
{
    return {48, 64, 96, 128, 192, 256, 384, 512, 768};
}

RunResult
Canneal::run(const RunConfig &config) const
{
    if (config.input < 1.0)
        util::fatal("canneal: swaps per temperature step must be >= 1");
    const auto swaps_per_step =
        static_cast<std::size_t>(config.input);
    util::Rng data_rng(config.seed, 0xca22ea1);
    Netlist netlist(config_, data_rng);

    std::vector<util::Rng> thread_rng;
    thread_rng.reserve(config.threads);
    for (std::size_t t = 0; t < config.threads; ++t)
        thread_rng.push_back(data_rng.fork(1000 + t));

    util::Rng corrupt_rng(config.seed, 0xc044);
    double temperature = config_.startTemperature;
    std::size_t work_units = 0;
    for (std::size_t step = 0; step < config_.tempSteps; ++step) {
        for (std::size_t t = 0; t < config.threads; ++t) {
            const bool infected =
                config.fault.infected(t, config.threads);
            if (infected && config.fault.drops())
                continue; // swap() prevented (paper footnote 1)
            for (std::size_t s = 0; s < swaps_per_step; ++s) {
                util::Rng &rng = thread_rng[t];
                const std::size_t a =
                    rng.uniformInt(config_.elements);
                std::size_t b = rng.uniformInt(config_.elements);
                if (b == a)
                    b = (b + 1) % config_.elements;
                double delta = netlist.swapDelta(a, b);
                ++work_units;
                if (infected)
                    delta = fault::corruptDouble(delta,
                                                 config.fault.mode(),
                                                 corrupt_rng);
                bool accept = delta < 0.0 ||
                    rng.uniform() < std::exp(-delta / temperature);
                if (std::isnan(delta))
                    accept = false;
                if (infected &&
                    config.fault.mode() ==
                        fault::ErrorMode::InvertDecision)
                    accept = !accept;
                if (accept)
                    std::swap(netlist.slotOf[a], netlist.slotOf[b]);
            }
        }
        temperature *= config_.coolingRate;
    }

    RunResult result;
    result.output = {netlist.routingCost()};
    result.problemSize = static_cast<double>(config_.tempSteps) *
        static_cast<double>(swaps_per_step) *
        static_cast<double>(config.threads);
    result.taskSet.numTasks = config.threads;
    // ~50 dynamic instructions per swap attempt (two fanout-4 cost
    // scans plus the Metropolis test).
    result.taskSet.instrPerTask = static_cast<double>(config_.tempSteps) *
        static_cast<double>(swaps_per_step) * 50.0;
    (void)work_units;
    return result;
}

double
Canneal::quality(const RunResult &result, const RunResult &reference) const
{
    if (result.output.empty() || reference.output.empty())
        util::fatal("canneal: empty output");
    const double cost = result.output.front();
    const double ref = reference.output.front();
    if (cost <= 0.0)
        return 0.0;
    // Relative routing cost: hyper-accurate cost over achieved cost;
    // 1.0 means the annealer matched the reference.
    return ref / cost;
}

manycore::WorkloadTraits
Canneal::traits() const
{
    manycore::WorkloadTraits t;
    // Pointer-chasing over a large netlist: memory-bound, poor
    // locality, little overlap.
    t.cpiBase = 1.0;
    t.memOpsPerInstr = 0.30;
    t.privateMissRate = 0.08;
    t.clusterMissRate = 0.25;
    t.overlapFactor = 0.30;
    t.syncNsPerTask = 400.0;
    t.serialFraction = 0.0005;
    return t;
}

} // namespace accordion::rms
