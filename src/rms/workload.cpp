#include "workload.hpp"

#include "bitmine.hpp"
#include "bodytrack.hpp"
#include "canneal.hpp"
#include "ferret.hpp"
#include "hotspot.hpp"
#include "srad.hpp"
#include "util/log.hpp"
#include "x264.hpp"

namespace accordion::rms {

std::string
dependencyName(Dependency dep)
{
    return dep == Dependency::Linear ? "linear" : "complex";
}

RunResult
Workload::runReference(std::uint64_t seed) const
{
    RunConfig config;
    config.input = hyperAccurateInput();
    config.threads = defaultThreads();
    config.seed = seed;
    return run(config);
}

double
Workload::qualityOf(const RunConfig &config,
                    const RunResult &reference) const
{
    return quality(run(config), reference);
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const Canneal canneal;
    static const Ferret ferret;
    static const Bodytrack bodytrack;
    static const X264 x264;
    static const Hotspot hotspot;
    static const Srad srad;
    static const std::vector<const Workload *> workloads = {
        &canneal, &ferret, &bodytrack, &x264, &hotspot, &srad,
    };
    return workloads;
}

const std::vector<const Workload *> &
extendedWorkloads()
{
    static const Bitmine bitmine;
    static const std::vector<const Workload *> workloads = [] {
        std::vector<const Workload *> all = allWorkloads();
        all.push_back(&bitmine);
        return all;
    }();
    return workloads;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload *w : extendedWorkloads())
        if (w->name() == name)
            return *w;
    util::fatal("findWorkload: unknown benchmark '%s'", name.c_str());
}

} // namespace accordion::rms
