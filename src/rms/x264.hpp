/**
 * @file
 * x264 (PARSEC): H.264-style video encoding. A synthetic moving
 * scene is encoded with motion-compensated prediction, an 8x8
 * floating-point DCT, and uniform quantization controlled by the
 * quantizer QP — the Accordion input. A smaller QP keeps more
 * coefficients (more coding work: complex problem-size dependency)
 * and yields higher fidelity (quality measured with SSIM, which
 * tracks human perception better than PSNR; near-linear in QP over
 * the operating range). The hyper-accurate reference encodes at a
 * tiny QP.
 *
 * Drop semantics (paper footnote 1, x264_slice_write): infected
 * threads' macroblock stripes are never encoded; the decoder-side
 * reconstruction repeats the co-located blocks of the previous
 * reconstructed frame.
 */

#ifndef ACCORDION_RMS_X264_HPP
#define ACCORDION_RMS_X264_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Sequence and encoder shape. */
struct X264Config
{
    std::size_t frames = 8;
    std::size_t width = 64;
    std::size_t height = 64;
    std::size_t blockSize = 8;
    int searchRange = 4; //!< motion search window (+/- pixels)
    int searchStep = 2; //!< full-search stride
};

/** x264 workload. */
class X264 : public Workload
{
  public:
    explicit X264(X264Config config = {});

    std::string name() const override { return "x264"; }
    std::string domain() const override { return "Multimedia"; }
    std::string qualityMetricName() const override
    {
        return "SSIM based";
    }
    std::string accordionInputName() const override
    {
        return "Quantizer";
    }
    double defaultInput() const override { return 24.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 4.0; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Complex;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Linear;
    }

    const X264Config &config() const { return config_; }

  private:
    X264Config config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_X264_HPP
