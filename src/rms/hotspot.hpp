/**
 * @file
 * hotspot (Rodinia): transient thermal simulation that iteratively
 * solves the heat-transfer differential equations over a grid
 * super-imposed on a floorplan. The Accordion input is the number
 * of iterations; problem size and quality both depend on it
 * linearly (Table 3). The output is the temperature at each grid
 * point; the quality metric is SSD-based distortion against a
 * hyper-accurate (near-converged) execution.
 *
 * Drop semantics (paper footnote 1): infected threads skip the
 * solution of the temperature equation and the update of their
 * rows' cell temperatures, leaving the initial estimates in place.
 */

#ifndef ACCORDION_RMS_HOTSPOT_HPP
#define ACCORDION_RMS_HOTSPOT_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Thermal-grid shape and physical constants. */
struct HotspotConfig
{
    std::size_t rows = 64;
    std::size_t cols = 64;
    double ambient = 80.0; //!< ambient temperature [C]
    double maxPower = 12.0; //!< hottest functional unit [W-equiv]
    double rx = 1.0; //!< lateral thermal resistance (east-west)
    double ry = 1.0; //!< lateral thermal resistance (north-south)
    double rz = 4.0; //!< vertical resistance to the heat sink
    double step = 0.1; //!< time step x inverse heat capacity
    double toleranceC = 3.0; //!< temperature error scale for quality
};

/** hotspot workload. */
class Hotspot : public Workload
{
  public:
    explicit Hotspot(HotspotConfig config = {});

    std::string name() const override { return "hotspot"; }
    std::string domain() const override { return "Physics simulation"; }
    std::string qualityMetricName() const override
    {
        return "SSD based";
    }
    std::string accordionInputName() const override
    {
        return "Number of iterations";
    }
    double defaultInput() const override { return 32.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 1024.0; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Linear;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Linear;
    }

    const HotspotConfig &config() const { return config_; }

  private:
    HotspotConfig config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_HOTSPOT_HPP
