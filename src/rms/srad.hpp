/**
 * @file
 * srad (Rodinia): Speckle Reducing Anisotropic Diffusion, an
 * iterative PDE solver that removes correlated (multiplicative)
 * noise from imaging applications. The Accordion input is the
 * number of iterations (linear in both problem size and quality,
 * Table 3); the quality metric is PSNR-based distortion against a
 * hyper-accurate execution. The paper profiles srad at 32 threads.
 *
 * Drop semantics (paper footnote 1): infected threads skip the
 * calculation of directional derivatives, ICOV and diffusion
 * coefficients, along with divergence and image update, for their
 * rows in each iteration.
 */

#ifndef ACCORDION_RMS_SRAD_HPP
#define ACCORDION_RMS_SRAD_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Image shape and diffusion constants. */
struct SradConfig
{
    std::size_t rows = 64;
    std::size_t cols = 64;
    double lambda = 0.5; //!< diffusion update rate
    double speckleSigma = 0.25; //!< multiplicative noise level
};

/** srad workload. */
class Srad : public Workload
{
  public:
    explicit Srad(SradConfig config = {});

    std::string name() const override { return "srad"; }
    std::string domain() const override { return "Image processing"; }
    std::string qualityMetricName() const override
    {
        return "PSNR based";
    }
    std::string accordionInputName() const override
    {
        return "Number of iterations";
    }
    double defaultInput() const override { return 24.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 256.0; }
    std::size_t defaultThreads() const override { return 32; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Linear;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Linear;
    }

    const SradConfig &config() const { return config_; }

  private:
    SradConfig config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_SRAD_HPP
