#include "x264.hpp"

#include <algorithm>
#include <cmath>

#include "quality/metrics.hpp"
#include "util/grid.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

using Frame = util::Grid2D<double>;

/** Synthetic luma sequence: textured background + moving objects. */
std::vector<Frame>
makeSequence(const X264Config &cfg, util::Rng &rng)
{
    std::vector<Frame> frames;
    frames.reserve(cfg.frames);
    // Static textured background.
    Frame background(cfg.height, cfg.width, 0.0);
    for (std::size_t r = 0; r < cfg.height; ++r)
        for (std::size_t c = 0; c < cfg.width; ++c) {
            const double x = static_cast<double>(c);
            const double y = static_cast<double>(r);
            background.at(r, c) = 110.0 + 40.0 * std::sin(0.21 * x) *
                    std::cos(0.17 * y) +
                8.0 * rng.normal();
        }
    for (std::size_t f = 0; f < cfg.frames; ++f) {
        Frame frame = background;
        // A bright square panning right and a dark disc panning down.
        const double t = static_cast<double>(f);
        const double sq_x = 6.0 + 3.0 * t;
        const double sq_y = 12.0 + 1.0 * t;
        const double disc_x = 40.0 - 1.5 * t;
        const double disc_y = 8.0 + 4.0 * t;
        for (std::size_t r = 0; r < cfg.height; ++r)
            for (std::size_t c = 0; c < cfg.width; ++c) {
                const double x = static_cast<double>(c);
                const double y = static_cast<double>(r);
                if (x >= sq_x && x < sq_x + 14 && y >= sq_y &&
                    y < sq_y + 14)
                    frame.at(r, c) = 225.0;
                const double dx = x - disc_x, dy = y - disc_y;
                if (dx * dx + dy * dy < 64.0)
                    frame.at(r, c) = 35.0;
                frame.at(r, c) = std::clamp(frame.at(r, c), 0.0,
                                            255.0);
            }
        frames.push_back(std::move(frame));
    }
    return frames;
}

/** 8x8 orthonormal DCT-II, straightforward O(n^4). */
void
dct8x8(const double *in, double *out, bool inverse)
{
    constexpr std::size_t n = 8;
    auto alpha = [](std::size_t k) {
        return k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
    };
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = 0; v < n; ++v) {
            double sum = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t c = 0; c < n; ++c) {
                    if (!inverse) {
                        sum += in[r * n + c] *
                            std::cos((2 * r + 1) * u * M_PI /
                                     (2.0 * n)) *
                            std::cos((2 * c + 1) * v * M_PI /
                                     (2.0 * n));
                    } else {
                        sum += alpha(r) * alpha(c) * in[r * n + c] *
                            std::cos((2 * u + 1) * r * M_PI /
                                     (2.0 * n)) *
                            std::cos((2 * v + 1) * c * M_PI /
                                     (2.0 * n));
                    }
                }
            }
            out[u * n + v] = inverse ? sum : alpha(u) * alpha(v) * sum;
        }
    }
}

/** H.264-style quantization step for a QP. */
double
qstep(double qp)
{
    return 0.625 * std::pow(2.0, qp / 6.0);
}

} // namespace

X264::X264(X264Config config) : config_(config) {}

std::vector<double>
X264::inputSweep() const
{
    // Ordered by increasing problem size: smaller QP keeps more
    // coefficients.
    return {40, 36, 32, 28, 24, 20, 16, 12};
}

RunResult
X264::run(const RunConfig &config) const
{
    if (config.input < 1.0 || config.input > 51.0)
        util::fatal("x264: QP %g outside [1, 51]", config.input);
    const double qp = config.input;
    const std::size_t bs = config_.blockSize;
    util::Rng rng(config.seed, 0x264);
    const std::vector<Frame> sequence = makeSequence(config_, rng);

    const std::size_t block_rows = config_.height / bs;
    const std::size_t block_cols = config_.width / bs;
    // Thread ownership: (frame, macroblock row) stripes, the
    // x264_slice_write granularity.
    auto owner = [&](std::size_t frame, std::size_t brow) {
        const std::size_t stripe = frame * block_rows + brow;
        return stripe * config.threads /
            (config_.frames * block_rows);
    };

    std::vector<Frame> recon(
        config_.frames, Frame(config_.height, config_.width, 128.0));
    double coded_coeffs = 0.0;
    double block_work = 0.0;
    double in_block[64], coef[64], rec[64], pred[64];

    for (std::size_t f = 0; f < config_.frames; ++f) {
        for (std::size_t br = 0; br < block_rows; ++br) {
            const bool dropped =
                config.fault.infected(owner(f, br), config.threads) &&
                config.fault.drops();
            for (std::size_t bc = 0; bc < block_cols; ++bc) {
                const std::size_t r0 = br * bs, c0 = bc * bs;
                if (dropped) {
                    // Macroblock never encoded: repeat the
                    // co-located reconstructed block of the
                    // previous frame (128-gray for frame 0).
                    if (f > 0)
                        for (std::size_t r = 0; r < bs; ++r)
                            for (std::size_t c = 0; c < bs; ++c)
                                recon[f].at(r0 + r, c0 + c) =
                                    recon[f - 1].at(r0 + r, c0 + c);
                    continue;
                }
                // Prediction: motion search on the previous
                // reconstructed frame (intra DC for frame 0).
                if (f == 0) {
                    double dc = 0.0;
                    for (std::size_t r = 0; r < bs; ++r)
                        for (std::size_t c = 0; c < bs; ++c)
                            dc += sequence[f].at(r0 + r, c0 + c);
                    dc /= static_cast<double>(bs * bs);
                    std::fill(pred, pred + 64, dc);
                    block_work += 64.0;
                } else {
                    double best_sad = 1e300;
                    int best_dx = 0, best_dy = 0;
                    for (int dy = -config_.searchRange;
                         dy <= config_.searchRange;
                         dy += config_.searchStep) {
                        for (int dx = -config_.searchRange;
                             dx <= config_.searchRange;
                             dx += config_.searchStep) {
                            double sad = 0.0;
                            for (std::size_t r = 0; r < bs; ++r) {
                                for (std::size_t c = 0; c < bs; ++c) {
                                    const auto rr = std::clamp<long>(
                                        static_cast<long>(r0 + r) + dy,
                                        0, config_.height - 1);
                                    const auto cc = std::clamp<long>(
                                        static_cast<long>(c0 + c) + dx,
                                        0, config_.width - 1);
                                    sad += std::abs(
                                        sequence[f].at(r0 + r, c0 + c) -
                                        recon[f - 1].at(rr, cc));
                                }
                            }
                            block_work += static_cast<double>(bs * bs);
                            if (sad < best_sad) {
                                best_sad = sad;
                                best_dx = dx;
                                best_dy = dy;
                            }
                        }
                    }
                    for (std::size_t r = 0; r < bs; ++r)
                        for (std::size_t c = 0; c < bs; ++c) {
                            const auto rr = std::clamp<long>(
                                static_cast<long>(r0 + r) + best_dy, 0,
                                config_.height - 1);
                            const auto cc = std::clamp<long>(
                                static_cast<long>(c0 + c) + best_dx, 0,
                                config_.width - 1);
                            pred[r * bs + c] = recon[f - 1].at(rr, cc);
                        }
                }

                // Residual transform coding.
                for (std::size_t r = 0; r < bs; ++r)
                    for (std::size_t c = 0; c < bs; ++c)
                        in_block[r * bs + c] =
                            sequence[f].at(r0 + r, c0 + c) -
                            pred[r * bs + c];
                dct8x8(in_block, coef, false);
                block_work += 512.0;
                const double step = qstep(qp);
                for (double &v : coef) {
                    v = std::round(v / step);
                    if (v != 0.0)
                        coded_coeffs += 1.0;
                    v *= step;
                }
                dct8x8(coef, rec, true);
                block_work += 512.0;
                for (std::size_t r = 0; r < bs; ++r)
                    for (std::size_t c = 0; c < bs; ++c)
                        recon[f].at(r0 + r, c0 + c) = std::clamp(
                            rec[r * bs + c] + pred[r * bs + c], 0.0,
                            255.0);
            }
        }
    }

    RunResult result;
    result.output.reserve(config_.frames * config_.height *
                          config_.width);
    for (const Frame &frame : recon)
        result.output.insert(result.output.end(),
                             frame.data().begin(), frame.data().end());
    // Encoding work: fixed per-block search/transform cost plus
    // entropy coding proportional to surviving coefficients (CABAC
    // context modeling costs a few hundred ops per coded level).
    result.problemSize = block_work + 220.0 * coded_coeffs;
    result.taskSet.numTasks = config.threads;
    result.taskSet.instrPerTask =
        result.problemSize / static_cast<double>(config.threads) * 4.0;
    return result;
}

double
X264::quality(const RunResult &result, const RunResult &reference) const
{
    if (result.output.size() != reference.output.size())
        util::fatal("x264: output size mismatch");
    const std::size_t frame_px = config_.height * config_.width;
    const std::size_t frames = result.output.size() / frame_px;
    double total = 0.0;
    for (std::size_t f = 0; f < frames; ++f) {
        Frame a(config_.height, config_.width, 0.0);
        Frame b(config_.height, config_.width, 0.0);
        for (std::size_t i = 0; i < frame_px; ++i) {
            a.flat(i) = result.output[f * frame_px + i];
            b.flat(i) = reference.output[f * frame_px + i];
        }
        total += quality::ssim(a, b, 255.0);
    }
    return total / static_cast<double>(frames);
}

manycore::WorkloadTraits
X264::traits() const
{
    manycore::WorkloadTraits t;
    // Block-local compute with neighbor-frame references.
    t.cpiBase = 0.95;
    t.memOpsPerInstr = 0.28;
    t.privateMissRate = 0.035;
    t.clusterMissRate = 0.18;
    t.overlapFactor = 0.5;
    t.syncNsPerTask = 450.0;
    t.serialFraction = 0.0015;
    return t;
}

} // namespace accordion::rms
