#include "bitmine.hpp"

#include <cmath>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

Bitmine::Bitmine(BitmineConfig config) : config_(config) {}

std::vector<double>
Bitmine::inputSweep() const
{
    return {8192, 16384, 32768, 65536, 131072, 262144, 524288};
}

RunResult
Bitmine::run(const RunConfig &config) const
{
    if (config.input < 1.0)
        util::fatal("bitmine: nonces per thread must be >= 1");
    const auto nonces =
        static_cast<std::uint64_t>(config.input);
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(~0ULL) / config_.difficulty);

    double shares = 0.0;
    std::uint64_t best = ~0ULL;
    for (std::size_t t = 0; t < config.threads; ++t) {
        if (config.fault.infected(t, config.threads) &&
            config.fault.drops())
            continue; // the thread's range is never searched
        // The "hash" is the splitmix-seeded PRNG keyed by the block
        // header (seed) and the thread's nonce range.
        std::uint64_t state = config.seed ^
            (0xb17c011ULL * (t + 1));
        for (std::uint64_t n = 0; n < nonces; ++n) {
            const std::uint64_t h = util::splitMix64(state);
            if (h < target)
                shares += 1.0;
            if (h < best)
                best = h;
        }
    }

    RunResult result;
    result.output = {shares, static_cast<double>(best >> 32)};
    result.problemSize = static_cast<double>(nonces) *
        static_cast<double>(config.threads);
    result.taskSet.numTasks = config.threads;
    // ~8 dynamic instructions per hash evaluation.
    result.taskSet.instrPerTask = static_cast<double>(nonces) * 8.0;
    return result;
}

double
Bitmine::quality(const RunResult &result,
                 const RunResult &reference) const
{
    if (result.output.empty() || reference.output.empty())
        util::fatal("bitmine: empty output");
    const double ref = reference.output.front();
    if (ref <= 0.0)
        return result.output.front() > 0.0 ? 1.0 : 0.0;
    // Shares found relative to the reference search: exactly
    // proportional to the surviving work.
    return result.output.front() / ref;
}

manycore::WorkloadTraits
Bitmine::traits() const
{
    manycore::WorkloadTraits t;
    // Pure compute: register-resident hashing, almost no memory
    // traffic or synchronization.
    t.cpiBase = 0.9;
    t.memOpsPerInstr = 0.04;
    t.privateMissRate = 0.005;
    t.clusterMissRate = 0.02;
    t.overlapFactor = 0.8;
    t.syncNsPerTask = 100.0;
    t.serialFraction = 0.0001;
    return t;
}

} // namespace accordion::rms
