/**
 * @file
 * Common interface of the six RMS kernels (Table 3 of the paper).
 * Each kernel is a faithful, self-contained implementation of the
 * PARSEC/Rodinia algorithm it stands in for, exposing:
 *  - the *Accordion input*: the single application parameter that
 *    governs both the problem size and the output accuracy,
 *  - a parallel task decomposition (threads == tasks) whose
 *    per-thread work can be Dropped or corrupted at exactly the
 *    code sites the paper's footnote 1 lists,
 *  - the application-specific quality metric, evaluated against a
 *    hyper-accurate execution, and
 *  - execution traits for the manycore performance model.
 *
 * Kernels run single-threaded but partition work by thread index
 * with per-thread RNG streams, so executions are deterministic and
 * dropping a thread is well-defined.
 */

#ifndef ACCORDION_RMS_WORKLOAD_HPP
#define ACCORDION_RMS_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "manycore/traits.hpp"
#include "manycore/perf_model.hpp"

namespace accordion::rms {

/** One kernel execution request. */
struct RunConfig
{
    double input = 0.0; //!< Accordion input value
    std::size_t threads = 64; //!< parallel tasks (srad profiles at 32)
    fault::FaultPlan fault; //!< drop/corruption plan
    std::uint64_t seed = 42; //!< input-data seed
};

/** One kernel execution outcome. */
struct RunResult
{
    /** Numeric output values the quality metric is computed over. */
    std::vector<double> output;
    /** Problem size in the kernel's own work units (the paper
     *  normalizes it to the default input downstream). */
    double problemSize = 0.0;
    /** Work shape for the manycore performance model. */
    manycore::TaskSet taskSet;
};

/** How a quantity depends on the Accordion input (Table 3). */
enum class Dependency
{
    Linear,
    Complex,
};

/** Name of a dependency class. */
std::string dependencyName(Dependency dep);

/** Abstract RMS kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name, e.g. "canneal". */
    virtual std::string name() const = 0;

    /** Application domain (Table 3), e.g. "Optimization". */
    virtual std::string domain() const = 0;

    /** Quality-metric label (Table 3). */
    virtual std::string qualityMetricName() const = 0;

    /** Accordion input label (Table 3). */
    virtual std::string accordionInputName() const = 0;

    /** Default Accordion input (the paper's simsmall/as-provided). */
    virtual double defaultInput() const = 0;

    /**
     * Accordion input sweep ordered by *increasing problem size*
     * (for ferret and x264 the raw input decreases along the
     * sweep).
     */
    virtual std::vector<double> inputSweep() const = 0;

    /** Input of the hyper-accurate reference execution. */
    virtual double hyperAccurateInput() const = 0;

    /** Thread count the paper profiles this kernel with. */
    virtual std::size_t defaultThreads() const { return 64; }

    /** Execute the kernel. */
    virtual RunResult run(const RunConfig &config) const = 0;

    /**
     * Application-specific quality of @p result against the
     * hyper-accurate @p reference; higher is better. The paper
     * normalizes this to the default-input quality downstream.
     */
    virtual double quality(const RunResult &result,
                           const RunResult &reference) const = 0;

    /** Machine-load traits for the performance model. */
    virtual manycore::WorkloadTraits traits() const = 0;

    /** Table 3 dependency class of the problem size on the input. */
    virtual Dependency problemSizeDependency() const = 0;

    /** Table 3 dependency class of the quality on the input. */
    virtual Dependency qualityDependency() const = 0;

    /**
     * Convenience: run the hyper-accurate reference execution.
     */
    RunResult runReference(std::uint64_t seed = 42) const;

    /**
     * Convenience: quality of a configuration, computed against a
     * caller-supplied reference.
     */
    double qualityOf(const RunConfig &config,
                     const RunResult &reference) const;
};

/** All registered kernels (canneal, ferret, bodytrack, x264,
 *  hotspot, srad), in the paper's Table 3 order. */
const std::vector<const Workload *> &allWorkloads();

/** Find a kernel by name; fatal() if unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace accordion::rms

#endif // ACCORDION_RMS_WORKLOAD_HPP
