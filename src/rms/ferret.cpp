#include "ferret.hpp"

#include <algorithm>
#include <cmath>

#include "util/grid.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

/** Separable cosine basis indexed by descriptor dimension. */
double
basis(std::size_t k, double x, double y)
{
    const std::size_t a = 1 + k % 3;
    const std::size_t b = 1 + k / 3;
    return std::cos(M_PI * static_cast<double>(a) * x) *
        std::cos(M_PI * static_cast<double>(b) * y);
}

/** Render an image from its latent descriptor plus noise. */
util::Grid2D<double>
render(const FerretConfig &cfg, const std::vector<double> &descriptor,
       util::Rng &rng)
{
    util::Grid2D<double> img(cfg.imageSide, cfg.imageSide, 0.0);
    for (std::size_t r = 0; r < cfg.imageSide; ++r) {
        for (std::size_t c = 0; c < cfg.imageSide; ++c) {
            const double x = (static_cast<double>(c) + 0.5) /
                static_cast<double>(cfg.imageSide);
            const double y = (static_cast<double>(r) + 0.5) /
                static_cast<double>(cfg.imageSide);
            double v = 0.0;
            for (std::size_t k = 0; k < descriptor.size(); ++k)
                v += descriptor[k] * basis(k, x, y);
            img.at(r, c) = v + cfg.pixelNoise * rng.normal();
        }
    }
    return img;
}

/**
 * Region-based feature extraction: the image is tiled into regions
 * of at least min_region_size pixels; each descriptor coefficient
 * is the quadrature of image x basis over the region grid. Fewer
 * (larger) regions mean a coarser quadrature and a noisier
 * descriptor — exactly the accuracy lever the size factor pulls.
 */
std::vector<double>
extractDescriptor(const FerretConfig &cfg,
                  const util::Grid2D<double> &img,
                  double min_region_size)
{
    const double pixels = static_cast<double>(img.size());
    const double side = std::sqrt(std::max(1.0, min_region_size));
    const auto tiles = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(cfg.imageSide) / side));
    const std::size_t tile_px = (cfg.imageSide + tiles - 1) / tiles;

    std::vector<double> desc(cfg.descriptorDims, 0.0);
    for (std::size_t tr = 0; tr < tiles; ++tr) {
        for (std::size_t tc = 0; tc < tiles; ++tc) {
            const std::size_t r0 = tr * tile_px;
            const std::size_t c0 = tc * tile_px;
            if (r0 >= cfg.imageSide || c0 >= cfg.imageSide)
                continue;
            const std::size_t r1 =
                std::min(cfg.imageSide, r0 + tile_px);
            const std::size_t c1 =
                std::min(cfg.imageSide, c0 + tile_px);
            double mean = 0.0;
            for (std::size_t r = r0; r < r1; ++r)
                for (std::size_t c = c0; c < c1; ++c)
                    mean += img.at(r, c);
            const double area =
                static_cast<double>((r1 - r0) * (c1 - c0));
            mean /= area;
            const double cx =
                (static_cast<double>(c0 + c1)) * 0.5 /
                static_cast<double>(cfg.imageSide);
            const double cy =
                (static_cast<double>(r0 + r1)) * 0.5 /
                static_cast<double>(cfg.imageSide);
            for (std::size_t k = 0; k < desc.size(); ++k)
                desc[k] += mean * basis(k, cx, cy) * area;
        }
    }
    // Basis functions have L2 norm^2 of pixels/4 on the grid.
    for (double &d : desc)
        d /= pixels / 4.0;
    return desc;
}

double
l2sq(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

} // namespace

Ferret::Ferret(FerretConfig config) : config_(config) {}

std::vector<double>
Ferret::inputSweep() const
{
    // Ordered by increasing problem size: smaller size factor means
    // more regions. Factors are chosen just below 1/k^2 so each
    // sweep point lands on a distinct k x k region tiling.
    return {0.24, 0.105, 0.06, 0.039, 0.026, 0.019, 0.0145, 0.0115,
            0.0094};
}

RunResult
Ferret::run(const RunConfig &config) const
{
    if (config.input <= 0.0 || config.input > 1.0)
        util::fatal("ferret: size factor %g not in (0,1]", config.input);
    const double pixels = static_cast<double>(config_.imageSide) *
        static_cast<double>(config_.imageSide);
    const double min_region_size = pixels * config.input;

    // Latent database: clustered descriptors.
    util::Rng rng(config.seed, 0xfe44e7);
    std::vector<std::vector<double>> centers(config_.categories);
    for (auto &center : centers) {
        center.resize(config_.descriptorDims);
        for (double &v : center)
            v = rng.normal(0.0, 30.0);
    }
    std::vector<std::vector<double>> latent(config_.dbImages);
    for (std::size_t i = 0; i < config_.dbImages; ++i) {
        latent[i] = centers[i % config_.categories];
        for (double &v : latent[i])
            v += rng.normal(0.0, 8.0);
    }

    // Database-side extraction at the configured granularity.
    std::vector<std::vector<double>> db_desc(config_.dbImages);
    double regions_per_image = 0.0;
    {
        const double side =
            std::sqrt(std::max(1.0, min_region_size));
        const auto tiles = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(config_.imageSide) / side));
        regions_per_image = static_cast<double>(tiles * tiles);
    }
    for (std::size_t i = 0; i < config_.dbImages; ++i) {
        util::Rng img_rng = rng.fork(i);
        const auto img = render(config_, latent[i], img_rng);
        db_desc[i] = extractDescriptor(config_, img, min_region_size);
    }

    // Queries: noisy re-renders of random database images.
    std::vector<std::size_t> query_truth(config_.queries);
    std::vector<std::vector<double>> query_desc(config_.queries);
    for (std::size_t q = 0; q < config_.queries; ++q) {
        query_truth[q] = rng.uniformInt(config_.dbImages);
        util::Rng img_rng = rng.fork(100000 + q);
        const auto img =
            render(config_, latent[query_truth[q]], img_rng);
        query_desc[q] = extractDescriptor(config_, img,
                                          min_region_size);
    }

    // Ranking, partitioned as (query, database slice) tasks.
    const std::size_t slices =
        std::max<std::size_t>(1, config.threads / config_.queries);
    const std::size_t slice_len =
        (config_.dbImages + slices - 1) / slices;
    RunResult result;
    result.output.reserve(config_.queries * config_.topN);
    for (std::size_t q = 0; q < config_.queries; ++q) {
        std::vector<std::pair<double, std::size_t>> ranked;
        ranked.reserve(config_.dbImages);
        for (std::size_t s = 0; s < slices; ++s) {
            const std::size_t thread = q * slices + s;
            if (thread < config.threads &&
                config.fault.infected(thread, config.threads) &&
                config.fault.drops())
                continue; // slice contributes no candidates
            const std::size_t lo = s * slice_len;
            const std::size_t hi =
                std::min(config_.dbImages, lo + slice_len);
            for (std::size_t i = lo; i < hi; ++i)
                ranked.emplace_back(l2sq(query_desc[q], db_desc[i]),
                                    i);
        }
        std::sort(ranked.begin(), ranked.end());
        for (std::size_t k = 0; k < config_.topN; ++k)
            result.output.push_back(
                k < ranked.size()
                    ? static_cast<double>(ranked[k].second)
                    : -1.0);
    }

    const double extraction_work =
        static_cast<double>(config_.dbImages + config_.queries) *
        regions_per_image * static_cast<double>(config_.descriptorDims);
    result.problemSize = extraction_work;
    result.taskSet.numTasks = config.threads;
    // ~30 dynamic instructions per region-coefficient quadrature
    // plus the ranking work amortized in.
    result.taskSet.instrPerTask = extraction_work /
        static_cast<double>(config.threads) * 30.0;
    return result;
}

double
Ferret::quality(const RunResult &result, const RunResult &reference) const
{
    if (result.output.size() != reference.output.size() ||
        result.output.empty())
        util::fatal("ferret: output size mismatch");
    const std::size_t n = config_.topN;
    const std::size_t queries = result.output.size() / n;
    double total = 0.0;
    for (std::size_t q = 0; q < queries; ++q) {
        std::size_t common = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const double mine = result.output[q * n + i];
            if (mine < 0.0)
                continue;
            for (std::size_t j = 0; j < n; ++j)
                if (reference.output[q * n + j] == mine) {
                    ++common;
                    break;
                }
        }
        // relative error per query = 1 - common/n; quality is its
        // complement.
        total += static_cast<double>(common) / static_cast<double>(n);
    }
    return total / static_cast<double>(queries);
}

manycore::WorkloadTraits
Ferret::traits() const
{
    manycore::WorkloadTraits t;
    // Streaming image scans with modest sharing of the database.
    t.cpiBase = 1.0;
    t.memOpsPerInstr = 0.32;
    t.privateMissRate = 0.05;
    t.clusterMissRate = 0.30;
    t.overlapFactor = 0.45;
    t.syncNsPerTask = 350.0;
    t.serialFraction = 0.0012;
    return t;
}

} // namespace accordion::rms
