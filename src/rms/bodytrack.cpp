#include "bodytrack.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

constexpr std::size_t kDims = 8; //!< torso x/y/angle, 4 limbs, scale

/** Landmark positions of a body configuration. */
void
landmarksOf(const BodytrackConfig &cfg, const double *theta,
            std::vector<double> &out)
{
    // theta: [0]=x, [1]=y, [2]=torso angle, [3..6]=limb angles,
    // [7]=scale. Landmarks are spread along the torso axis and the
    // four limbs.
    out.resize(cfg.landmarks * 2);
    const double x = theta[0], y = theta[1];
    const double torso = theta[2];
    const double scale = theta[7];
    const std::size_t per_limb = cfg.landmarks / 8;
    std::size_t idx = 0;
    auto emit = [&](double px, double py) {
        if (idx + 1 < out.size()) {
            out[idx++] = px;
            out[idx++] = py;
        }
    };
    // Torso points (half the landmarks).
    const std::size_t torso_points = cfg.landmarks - 4 * per_limb;
    for (std::size_t i = 0; i < torso_points; ++i) {
        const double t = static_cast<double>(i) /
            static_cast<double>(torso_points);
        emit(x + scale * t * std::cos(torso),
             y + scale * t * std::sin(torso));
    }
    // Limbs attach at the torso ends.
    for (std::size_t limb = 0; limb < 4; ++limb) {
        const double attach = limb < 2 ? 0.0 : 1.0;
        const double ax = x + scale * attach * std::cos(torso);
        const double ay = y + scale * attach * std::sin(torso);
        const double angle = torso + theta[3 + limb];
        for (std::size_t i = 1; i <= per_limb; ++i) {
            const double t = 0.6 * static_cast<double>(i) /
                static_cast<double>(per_limb);
            emit(ax + scale * t * std::cos(angle),
                 ay + scale * t * std::sin(angle));
        }
    }
    while (idx < out.size())
        out[idx++] = 0.0;
}

} // namespace

Bodytrack::Bodytrack(BodytrackConfig config) : config_(config) {}

std::vector<double>
Bodytrack::inputSweep() const
{
    return {1, 2, 3, 4, 5, 6, 8, 10};
}

RunResult
Bodytrack::run(const RunConfig &config) const
{
    if (config.input < 1.0)
        util::fatal("bodytrack: annealing layers must be >= 1");
    const auto layers = static_cast<std::size_t>(config.input);
    const std::size_t P = config_.particles;
    util::Rng rng(config.seed, 0xb0d7);

    // Ground-truth trajectory: smooth articulated motion.
    std::vector<std::vector<double>> truth(config_.frames,
                                           std::vector<double>(kDims));
    std::vector<double> theta = {2.0, 2.0, 0.3, 0.5, -0.5, 0.9,
                                 -0.9, 3.0};
    for (std::size_t f = 0; f < config_.frames; ++f) {
        const double t = static_cast<double>(f);
        theta[0] += 0.4;
        theta[1] += 0.25 * std::sin(0.7 * t);
        theta[2] = 0.3 + 0.2 * std::sin(0.5 * t);
        for (std::size_t l = 0; l < 4; ++l)
            theta[3 + l] += 0.3 * std::sin(0.9 * t + 1.3 *
                                           static_cast<double>(l));
        truth[f] = theta;
    }

    // Noisy landmark observations per frame.
    std::vector<std::vector<double>> observations(config_.frames);
    std::vector<double> scratch;
    for (std::size_t f = 0; f < config_.frames; ++f) {
        landmarksOf(config_, truth[f].data(), scratch);
        observations[f] = scratch;
        for (double &v : observations[f])
            v += config_.observationNoise * rng.normal();
    }

    // Landmark availability: "row and column filtering" is
    // partitioned across threads; infected threads' landmarks are
    // never extracted.
    std::vector<bool> landmark_ok(config_.landmarks, true);
    for (std::size_t k = 0; k < config_.landmarks; ++k) {
        const std::size_t thread = k * config.threads /
            config_.landmarks;
        if (config.fault.infected(thread, config.threads) &&
            config.fault.drops())
            landmark_ok[k] = false;
    }

    auto energy = [&](const double *cand, std::size_t frame) {
        landmarksOf(config_, cand, scratch);
        double e = 0.0;
        std::size_t used = 0;
        for (std::size_t k = 0; k < config_.landmarks; ++k) {
            if (!landmark_ok[k])
                continue;
            const double dx =
                scratch[2 * k] - observations[frame][2 * k];
            const double dy =
                scratch[2 * k + 1] - observations[frame][2 * k + 1];
            e += dx * dx + dy * dy;
            ++used;
        }
        return used ? e / static_cast<double>(used) : 1e6;
    };

    // Particle ownership and weight-drop flags.
    auto particle_dropped = [&](std::size_t p) {
        const std::size_t thread = p * config.threads / P;
        return config.fault.infected(thread, config.threads) &&
            config.fault.drops();
    };

    // Annealed particle filter.
    std::vector<std::vector<double>> particles(
        P, std::vector<double>(kDims));
    std::vector<double> init = truth[0];
    for (std::size_t p = 0; p < P; ++p) {
        particles[p] = init;
        for (double &v : particles[p])
            v += 0.5 * rng.normal();
    }
    std::vector<double> weights(P, 1.0 / static_cast<double>(P));
    std::vector<std::vector<double>> estimates(
        config_.frames, std::vector<double>(kDims, 0.0));
    double work_units = 0.0;
    std::vector<std::vector<double>> resampled(
        P, std::vector<double>(kDims));
    std::vector<double> cand(kDims);

    for (std::size_t f = 0; f < config_.frames; ++f) {
        for (std::size_t layer = 0; layer < layers; ++layer) {
            const double beta = std::pow(
                config_.annealRate,
                static_cast<double>(layers - 1 - layer));
            const double sigma = config_.processNoise *
                std::pow(0.75, static_cast<double>(layer));
            // Progressive refinement: later layers evaluate extra
            // diffusion candidates per particle and keep the best.
            const std::size_t cands = 1 + layer / 3;
            double wsum = 0.0;
            for (std::size_t p = 0; p < P; ++p) {
                double best_e = 1e300;
                for (std::size_t k = 0; k < cands; ++k) {
                    for (std::size_t d = 0; d < kDims; ++d)
                        cand[d] = particles[p][d] +
                            sigma * rng.normal();
                    const double e = energy(cand.data(), f);
                    work_units += 1.0;
                    if (e < best_e) {
                        best_e = e;
                        particles[p] = cand;
                    }
                }
                if (particle_dropped(p)) {
                    weights[p] = 0.0; // weight calc prevented
                } else {
                    weights[p] = std::exp(
                        -beta * best_e /
                        (2.0 * config_.weightSigma *
                         config_.weightSigma));
                }
                wsum += weights[p];
            }
            if (wsum <= 0.0) {
                // Every particle dropped: keep uniform weights so
                // the run terminates (the CC would flag this).
                std::fill(weights.begin(), weights.end(),
                          1.0 / static_cast<double>(P));
                wsum = 1.0;
            }
            // Systematic resampling.
            const double step = wsum / static_cast<double>(P);
            double mark = 0.5 * step;
            double acc = weights[0];
            std::size_t src = 0;
            for (std::size_t p = 0; p < P; ++p) {
                while (acc < mark && src + 1 < P)
                    acc += weights[++src];
                resampled[p] = particles[src];
                mark += step;
            }
            particles.swap(resampled);
        }
        // Frame estimate: mean of the (resampled) particle cloud.
        auto &est = estimates[f];
        std::fill(est.begin(), est.end(), 0.0);
        for (std::size_t p = 0; p < P; ++p)
            for (std::size_t d = 0; d < kDims; ++d)
                est[d] += particles[p][d];
        for (double &v : est)
            v /= static_cast<double>(P);
        // Predict into the next frame with the (biased) constant-
        // velocity motion model.
        for (std::size_t p = 0; p < P; ++p) {
            particles[p][0] += 0.4 - config_.predictionBias;
            for (std::size_t d = 0; d < kDims; ++d)
                particles[p][d] += config_.predictionNoise *
                    rng.normal();
        }
    }

    RunResult result;
    result.output.reserve(config_.frames * kDims);
    for (const auto &est : estimates)
        result.output.insert(result.output.end(), est.begin(),
                             est.end());
    result.problemSize = work_units;
    result.taskSet.numTasks = config.threads;
    // ~80 dynamic instructions per particle-candidate evaluation
    // (landmark projection + SSD over the landmark set).
    result.taskSet.instrPerTask =
        work_units / static_cast<double>(config.threads) * 80.0;
    return result;
}

double
Bodytrack::quality(const RunResult &result,
                   const RunResult &reference) const
{
    if (result.output.size() != reference.output.size())
        util::fatal("bodytrack: output size mismatch");
    double ssd = 0.0;
    for (std::size_t i = 0; i < result.output.size(); ++i) {
        const double d = result.output[i] - reference.output[i];
        ssd += d * d;
    }
    const double mse = ssd / static_cast<double>(result.output.size());
    return 1.0 / (1.0 + mse);
}

manycore::WorkloadTraits
Bodytrack::traits() const
{
    manycore::WorkloadTraits t;
    // Compute-heavy likelihood evaluations over shared observation
    // data.
    t.cpiBase = 1.05;
    t.memOpsPerInstr = 0.22;
    t.privateMissRate = 0.03;
    t.clusterMissRate = 0.20;
    t.overlapFactor = 0.5;
    t.syncNsPerTask = 500.0;
    t.serialFraction = 0.002;
    return t;
}

} // namespace accordion::rms
