/**
 * @file
 * bodytrack (PARSEC): tracking of an articulated body through a
 * scene with an annealed particle filter. A synthetic 2D body
 * (torso plus four limbs, an 8-dimensional configuration) moves
 * over a sequence of frames; each frame yields noisy landmark
 * observations. The filter anneals the observation likelihood over
 * a number of layers — the Accordion input — resampling and
 * diffusing particles per layer, with progressively more candidate
 * evaluations in later layers (the refinement that makes problem
 * size super-linear in the layer count; Table 3 classes both
 * dependencies as complex). Output: the tracked configuration
 * vector per frame; quality metric: SSD-based distortion.
 *
 * Drop semantics (paper footnote 1): infected threads neither
 * filter their share of the observations (their landmarks are
 * unavailable to everyone) nor calculate their particles' weights
 * (those particles are ignored) — which is why bodytrack shows the
 * highest sensitivity to Drop in the paper's Fig. 4.
 */

#ifndef ACCORDION_RMS_BODYTRACK_HPP
#define ACCORDION_RMS_BODYTRACK_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Body model and filter shape. */
struct BodytrackConfig
{
    std::size_t frames = 8;
    std::size_t particles = 256;
    std::size_t landmarks = 16; //!< observed body points per frame
    double observationNoise = 0.5; //!< landmark noise [model units]
    double processNoise = 0.7; //!< initial per-layer diffusion
    double annealRate = 0.85; //!< layer-to-layer beta growth
    /** Frame-to-frame prediction noise: the motion model is weak,
     *  so the observations (and annealing depth) carry the
     *  tracking. */
    double predictionNoise = 0.45;
    /** Sharpness of the weighting function: the effective sigma of
     *  exp(-beta E / (2 sigma^2)). A peaky likelihood makes single-
     *  layer filtering degenerate, which is precisely what annealed
     *  layers fix. */
    double weightSigma = 0.5;
    /** The filter's motion model underestimates the true torso
     *  velocity; observations (hence annealing depth) must make up
     *  the difference — this is what gives the layer count its
     *  accuracy leverage. */
    double predictionBias = 0.3;
};

/** bodytrack workload. */
class Bodytrack : public Workload
{
  public:
    explicit Bodytrack(BodytrackConfig config = {});

    std::string name() const override { return "bodytrack"; }
    std::string domain() const override { return "Computer vision"; }
    std::string qualityMetricName() const override
    {
        return "SSD based";
    }
    std::string accordionInputName() const override
    {
        return "Number of annealing layers";
    }
    double defaultInput() const override { return 4.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 16.0; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Complex;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Complex;
    }

    const BodytrackConfig &config() const { return config_; }

  private:
    BodytrackConfig config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_BODYTRACK_HPP
