/**
 * @file
 * ferret (PARSEC): content-based similarity search in an image
 * database. Images are partitioned into regions and processed
 * region by region; the number of regions — and hence the work per
 * thread and the fidelity of the extracted feature descriptor —
 * follows from the minimum region size, computed as
 * pixels x size_factor. The size factor is the Accordion input: a
 * smaller factor means more regions, more work, and a more accurate
 * descriptor (problem size and quality both depend on it in a
 * complex, super-linear way). The output is a pre-set number n of
 * similar images per query; per-query relative error is
 * 1 - common_image_count / n against the reference outcome.
 *
 * Drop semantics: a thread owns (query, database-slice) ranking
 * work; an infected thread's slice never reports distances, so its
 * images cannot appear in the query's top-n.
 */

#ifndef ACCORDION_RMS_FERRET_HPP
#define ACCORDION_RMS_FERRET_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Database and query shape. */
struct FerretConfig
{
    std::size_t dbImages = 192; //!< database size
    std::size_t categories = 16; //!< latent semantic clusters
    std::size_t queries = 16; //!< queries per run
    std::size_t imageSide = 32; //!< pixels per image edge
    std::size_t descriptorDims = 12; //!< feature dimensionality
    std::size_t topN = 8; //!< output images per query
    double pixelNoise = 6.0; //!< additive render noise
};

/** ferret workload. */
class Ferret : public Workload
{
  public:
    explicit Ferret(FerretConfig config = {});

    std::string name() const override { return "ferret"; }
    std::string domain() const override { return "Similarity search"; }
    std::string qualityMetricName() const override
    {
        return "Based on number of common images";
    }
    std::string accordionInputName() const override
    {
        return "Size factor";
    }
    double defaultInput() const override { return 0.026; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 0.004; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Complex;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Complex;
    }

    const FerretConfig &config() const { return config_; }

  private:
    FerretConfig config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_FERRET_HPP
