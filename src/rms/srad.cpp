#include "srad.hpp"

#include <algorithm>
#include <cmath>

#include "quality/metrics.hpp"
#include "util/grid.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace accordion::rms {

namespace {

/** Clean synthetic ultrasound-like scene: smooth blobs and edges. */
util::Grid2D<double>
makeScene(const SradConfig &cfg)
{
    util::Grid2D<double> scene(cfg.rows, cfg.cols, 0.0);
    for (std::size_t r = 0; r < cfg.rows; ++r) {
        for (std::size_t c = 0; c < cfg.cols; ++c) {
            const double x = static_cast<double>(c) /
                static_cast<double>(cfg.cols);
            const double y = static_cast<double>(r) /
                static_cast<double>(cfg.rows);
            double v = 90.0 + 60.0 * std::sin(3.0 * x) *
                std::cos(2.0 * y);
            if ((x - 0.35) * (x - 0.35) + (y - 0.4) * (y - 0.4) < 0.04)
                v += 80.0; // bright lesion
            if (x > 0.7 && y > 0.6)
                v -= 50.0; // dark quadrant
            scene.at(r, c) = std::max(10.0, v);
        }
    }
    return scene;
}

} // namespace

Srad::Srad(SradConfig config) : config_(config) {}

std::vector<double>
Srad::inputSweep() const
{
    return {8, 12, 16, 24, 32, 48, 64, 96};
}

RunResult
Srad::run(const RunConfig &config) const
{
    if (config.input < 1.0)
        util::fatal("srad: iteration count must be >= 1");
    const auto iterations = static_cast<std::size_t>(config.input);
    const std::size_t rows = config_.rows, cols = config_.cols;

    // Speckle-corrupted observation of the clean scene.
    util::Rng rng(config.seed, 0x54ad);
    util::Grid2D<double> image = makeScene(config_);
    for (std::size_t i = 0; i < image.size(); ++i)
        image.flat(i) *= std::max(
            0.05, 1.0 + config_.speckleSigma * rng.normal());

    auto owner = [&](std::size_t row) {
        return row * config.threads / rows;
    };
    auto dropped = [&](std::size_t row) {
        const std::size_t t = owner(row);
        return config.fault.infected(t, config.threads) &&
            config.fault.drops();
    };

    util::Grid2D<double> coeff(rows, cols, 0.0);
    util::Grid2D<double> dn(rows, cols, 0.0), ds(rows, cols, 0.0),
        dw(rows, cols, 0.0), de(rows, cols, 0.0);
    for (std::size_t it = 0; it < iterations; ++it) {
        // ROI statistics (the whole image) give the speckle scale.
        double sum = 0.0, sum2 = 0.0;
        for (std::size_t i = 0; i < image.size(); ++i) {
            sum += image.flat(i);
            sum2 += image.flat(i) * image.flat(i);
        }
        const double n = static_cast<double>(image.size());
        const double mean = sum / n;
        const double var = std::max(1e-12, sum2 / n - mean * mean);
        const double q0sqr = var / (mean * mean);

        // Phase 1: directional derivatives, ICOV, diffusion
        // coefficient.
        for (std::size_t r = 0; r < rows; ++r) {
            if (dropped(r))
                continue;
            for (std::size_t c = 0; c < cols; ++c) {
                const double here = image.at(r, c);
                const double north =
                    r > 0 ? image.at(r - 1, c) : here;
                const double south =
                    r + 1 < rows ? image.at(r + 1, c) : here;
                const double west = c > 0 ? image.at(r, c - 1) : here;
                const double east =
                    c + 1 < cols ? image.at(r, c + 1) : here;
                dn.at(r, c) = north - here;
                ds.at(r, c) = south - here;
                dw.at(r, c) = west - here;
                de.at(r, c) = east - here;
                const double g2 =
                    (dn.at(r, c) * dn.at(r, c) +
                     ds.at(r, c) * ds.at(r, c) +
                     dw.at(r, c) * dw.at(r, c) +
                     de.at(r, c) * de.at(r, c)) /
                    (here * here + 1e-12);
                const double l =
                    (dn.at(r, c) + ds.at(r, c) + dw.at(r, c) +
                     de.at(r, c)) /
                    (here + 1e-12);
                const double num = 0.5 * g2 - 0.0625 * l * l;
                const double den = 1.0 + 0.25 * l;
                const double qsqr =
                    std::max(0.0, num / (den * den + 1e-12));
                const double cval = 1.0 /
                    (1.0 +
                     (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr) + 1e-12));
                coeff.at(r, c) = std::clamp(cval, 0.0, 1.0);
            }
        }

        // Phase 2: divergence and image update.
        for (std::size_t r = 0; r < rows; ++r) {
            if (dropped(r))
                continue;
            for (std::size_t c = 0; c < cols; ++c) {
                const double c_here = coeff.at(r, c);
                const double c_south =
                    r + 1 < rows ? coeff.at(r + 1, c) : c_here;
                const double c_east =
                    c + 1 < cols ? coeff.at(r, c + 1) : c_here;
                const double div = c_here * dn.at(r, c) +
                    c_south * ds.at(r, c) + c_here * dw.at(r, c) +
                    c_east * de.at(r, c);
                image.at(r, c) += 0.25 * config_.lambda * div;
            }
        }
    }

    RunResult result;
    result.output = image.data();
    result.problemSize = static_cast<double>(iterations) *
        static_cast<double>(rows * cols);
    result.taskSet.numTasks = config.threads;
    // ~40 dynamic instructions per pixel per iteration across both
    // phases.
    result.taskSet.instrPerTask = result.problemSize /
        static_cast<double>(config.threads) * 40.0;
    return result;
}

double
Srad::quality(const RunResult &result, const RunResult &reference) const
{
    // PSNR of the produced image against the hyper-accurate
    // execution, over the scene's dynamic range.
    return quality::psnr(result.output, reference.output, 230.0, 60.0);
}

manycore::WorkloadTraits
Srad::traits() const
{
    manycore::WorkloadTraits t;
    // Two streaming stencil phases per iteration.
    t.cpiBase = 1.1;
    t.memOpsPerInstr = 0.38;
    t.privateMissRate = 0.025;
    t.clusterMissRate = 0.12;
    t.overlapFactor = 0.55;
    t.syncNsPerTask = 300.0;
    t.serialFraction = 0.0006;
    return t;
}

} // namespace accordion::rms
