/**
 * @file
 * canneal (PARSEC): simulated-annealing minimization of the routing
 * cost of a chip design. Elements of a synthetic netlist are placed
 * on a grid; at each temperature step every thread attempts
 * swaps-per-temperature-step random element swaps, accepting cost
 * increases with Boltzmann probability. The Accordion input is the
 * number of swaps per temperature step (per thread); both the
 * problem size and the quality depend on it linearly (Table 3).
 * Quality metric: relative routing cost.
 *
 * Drop semantics (paper footnote 1): an infected thread's swap()
 * calls are prevented entirely. For the Section 6.2 validation the
 * swap *decision variable* (the cost delta) can instead be
 * bit-corrupted, or the accept/reject decision inverted.
 */

#ifndef ACCORDION_RMS_CANNEAL_HPP
#define ACCORDION_RMS_CANNEAL_HPP

#include "workload.hpp"

namespace accordion::rms {

/** Shape of the synthetic netlist. */
struct CannealConfig
{
    std::size_t elements = 1024; //!< netlist elements
    std::size_t gridSide = 36; //!< placement grid (gridSide^2 slots)
    std::size_t fanout = 5; //!< nets per element
    std::size_t tempSteps = 24; //!< annealing temperature steps
    double startTemperature = 30.0;
    double coolingRate = 0.7;
};

/** canneal workload. */
class Canneal : public Workload
{
  public:
    explicit Canneal(CannealConfig config = {});

    std::string name() const override { return "canneal"; }
    std::string domain() const override { return "Optimization"; }
    std::string qualityMetricName() const override
    {
        return "Relative routing cost";
    }
    std::string accordionInputName() const override
    {
        return "Swaps per temperature step";
    }
    double defaultInput() const override { return 192.0; }
    std::vector<double> inputSweep() const override;
    double hyperAccurateInput() const override { return 1536.0; }
    RunResult run(const RunConfig &config) const override;
    double quality(const RunResult &result,
                   const RunResult &reference) const override;
    manycore::WorkloadTraits traits() const override;
    Dependency problemSizeDependency() const override
    {
        return Dependency::Linear;
    }
    Dependency qualityDependency() const override
    {
        return Dependency::Linear;
    }

    const CannealConfig &config() const { return config_; }

  private:
    CannealConfig config_;
};

} // namespace accordion::rms

#endif // ACCORDION_RMS_CANNEAL_HPP
