/**
 * @file
 * Application output-quality metrics (Section 5.2 of the paper).
 * The generic metric is Misailovic et al.'s *distortion*: the
 * average, across all output values, of the relative error per
 * output value; relative quality = 1 - distortion. Benchmarks
 * specialize how relative error is computed: SSD for bodytrack and
 * hotspot, PSNR for srad, SSIM for x264, common-image count for
 * ferret, relative routing cost for canneal.
 */

#ifndef ACCORDION_QUALITY_METRICS_HPP
#define ACCORDION_QUALITY_METRICS_HPP

#include <cstddef>
#include <vector>

#include "util/grid.hpp"

namespace accordion::quality {

/**
 * Distortion (Misailovic et al.): mean over output values of
 * |x_i - ref_i| / |ref_i|. Reference values with magnitude below
 * @p eps contribute absolute error instead to avoid division blowup.
 *
 * @pre values.size() == reference.size(), both non-empty.
 */
double distortion(const std::vector<double> &values,
                  const std::vector<double> &reference,
                  double eps = 1e-12);

/** Relative quality = 1 - distortion, clamped below at 0. */
double relativeQuality(const std::vector<double> &values,
                       const std::vector<double> &reference);

/** Sum of squared differences. @pre equal non-empty sizes. */
double ssd(const std::vector<double> &values,
           const std::vector<double> &reference);

/** Mean squared error. */
double mse(const std::vector<double> &values,
           const std::vector<double> &reference);

/**
 * Peak signal-to-noise ratio in dB against the given peak value;
 * capped at @p cap_db so identical signals compare finitely.
 */
double psnr(const std::vector<double> &values,
            const std::vector<double> &reference, double peak,
            double cap_db = 60.0);

/**
 * Structural similarity index over two images, computed on 8x8
 * windows with the standard SSIM constants; returns the mean SSIM
 * across windows in [-1, 1] (1 = identical).
 *
 * @param peak Dynamic range of the pixel values.
 */
double ssim(const util::Grid2D<double> &a, const util::Grid2D<double> &b,
            double peak);

/**
 * Number of common elements between two top-n result lists
 * (order-insensitive) — ferret's quality basis.
 */
std::size_t commonCount(const std::vector<std::size_t> &a,
                        const std::vector<std::size_t> &b);

} // namespace accordion::quality

#endif // ACCORDION_QUALITY_METRICS_HPP
