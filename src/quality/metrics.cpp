#include "metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/log.hpp"

namespace accordion::quality {

double
distortion(const std::vector<double> &values,
           const std::vector<double> &reference, double eps)
{
    if (values.size() != reference.size() || values.empty())
        util::fatal("distortion: size mismatch (%zu vs %zu) or empty",
                    values.size(), reference.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double err = std::abs(values[i] - reference[i]);
        const double denom = std::abs(reference[i]);
        sum += denom > eps ? err / denom : err;
    }
    return sum / static_cast<double>(values.size());
}

double
relativeQuality(const std::vector<double> &values,
                const std::vector<double> &reference)
{
    return std::max(0.0, 1.0 - distortion(values, reference));
}

double
ssd(const std::vector<double> &values, const std::vector<double> &reference)
{
    if (values.size() != reference.size() || values.empty())
        util::fatal("ssd: size mismatch (%zu vs %zu) or empty",
                    values.size(), reference.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double d = values[i] - reference[i];
        sum += d * d;
    }
    return sum;
}

double
mse(const std::vector<double> &values, const std::vector<double> &reference)
{
    return ssd(values, reference) / static_cast<double>(values.size());
}

double
psnr(const std::vector<double> &values,
     const std::vector<double> &reference, double peak, double cap_db)
{
    const double m = mse(values, reference);
    if (m <= 0.0)
        return cap_db;
    const double db = 10.0 * std::log10(peak * peak / m);
    return std::min(db, cap_db);
}

double
ssim(const util::Grid2D<double> &a, const util::Grid2D<double> &b,
     double peak)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() || a.size() == 0)
        util::fatal("ssim: image shape mismatch or empty");
    const double c1 = (0.01 * peak) * (0.01 * peak);
    const double c2 = (0.03 * peak) * (0.03 * peak);
    const std::size_t win = 8;
    double total = 0.0;
    std::size_t windows = 0;
    for (std::size_t r0 = 0; r0 + win <= a.rows(); r0 += win) {
        for (std::size_t c0 = 0; c0 + win <= a.cols(); c0 += win) {
            double ma = 0, mb = 0;
            for (std::size_t r = r0; r < r0 + win; ++r)
                for (std::size_t c = c0; c < c0 + win; ++c) {
                    ma += a.at(r, c);
                    mb += b.at(r, c);
                }
            const double n = static_cast<double>(win * win);
            ma /= n;
            mb /= n;
            double va = 0, vb = 0, cov = 0;
            for (std::size_t r = r0; r < r0 + win; ++r)
                for (std::size_t c = c0; c < c0 + win; ++c) {
                    const double da = a.at(r, c) - ma;
                    const double db = b.at(r, c) - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            va /= n - 1;
            vb /= n - 1;
            cov /= n - 1;
            total += (2 * ma * mb + c1) * (2 * cov + c2) /
                ((ma * ma + mb * mb + c1) * (va + vb + c2));
            ++windows;
        }
    }
    if (windows == 0)
        util::fatal("ssim: image smaller than the 8x8 window");
    return total / static_cast<double>(windows);
}

std::size_t
commonCount(const std::vector<std::size_t> &a,
            const std::vector<std::size_t> &b)
{
    const std::set<std::size_t> sa(a.begin(), a.end());
    std::size_t common = 0;
    std::set<std::size_t> counted;
    for (std::size_t x : b)
        if (sa.count(x) && counted.insert(x).second)
            ++common;
    return common;
}

} // namespace accordion::quality
