#include "geometry.hpp"

#include <cmath>

#include "util/log.hpp"

namespace accordion::vartech {

double
distance(const Point &a, const Point &b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

ChipGeometry::ChipGeometry() : ChipGeometry(Params{}) {}

ChipGeometry::ChipGeometry(Params params) : params_(params)
{
    if (params_.clustersX == 0 || params_.clustersY == 0 ||
        params_.coresPerClusterX == 0 || params_.coresPerClusterY == 0)
        util::fatal("ChipGeometry: degenerate shape");
}

std::size_t
ChipGeometry::numClusters() const
{
    return params_.clustersX * params_.clustersY;
}

std::size_t
ChipGeometry::coresPerCluster() const
{
    return params_.coresPerClusterX * params_.coresPerClusterY;
}

std::size_t
ChipGeometry::numCores() const
{
    return numClusters() * coresPerCluster();
}

std::size_t
ChipGeometry::clusterOfCore(std::size_t core) const
{
    if (core >= numCores())
        util::panic("clusterOfCore: core %zu out of range", core);
    return core / coresPerCluster();
}

std::vector<std::size_t>
ChipGeometry::coresOfCluster(std::size_t cluster) const
{
    std::vector<std::size_t> cores(coresPerCluster());
    const std::size_t first = firstCoreOfCluster(cluster);
    for (std::size_t i = 0; i < cores.size(); ++i)
        cores[i] = first + i;
    return cores;
}

std::size_t
ChipGeometry::firstCoreOfCluster(std::size_t cluster) const
{
    if (cluster >= numClusters())
        util::panic("firstCoreOfCluster: cluster %zu out of range",
                    cluster);
    return cluster * coresPerCluster();
}

std::pair<std::size_t, std::size_t>
ChipGeometry::clusterCoords(std::size_t cluster) const
{
    return {cluster % params_.clustersX, cluster / params_.clustersX};
}

Point
ChipGeometry::corePosition(std::size_t core) const
{
    const std::size_t cluster = clusterOfCore(core);
    const auto [cx, cy] = clusterCoords(cluster);
    const std::size_t within = core % coresPerCluster();
    const std::size_t wx = within % params_.coresPerClusterX;
    const std::size_t wy = within / params_.coresPerClusterX;

    const double cluster_w = 1.0 / static_cast<double>(params_.clustersX);
    const double cluster_h = 1.0 / static_cast<double>(params_.clustersY);
    // Cores occupy the left ~70% of the cluster tile; the cluster
    // memory block sits on the right.
    const double core_region_w = 0.7 * cluster_w;
    const double x = static_cast<double>(cx) * cluster_w +
        (static_cast<double>(wx) + 0.5) * core_region_w /
            static_cast<double>(params_.coresPerClusterX);
    const double y = static_cast<double>(cy) * cluster_h +
        (static_cast<double>(wy) + 0.5) * cluster_h /
            static_cast<double>(params_.coresPerClusterY);
    return {x, y};
}

Point
ChipGeometry::privateMemPosition(std::size_t core) const
{
    // The private memory sits immediately below its core within the
    // core tile (offset by a quarter of the core pitch).
    Point p = corePosition(core);
    const double pitch_y = 1.0 /
        static_cast<double>(params_.clustersY *
                            params_.coresPerClusterY);
    p.y += 0.25 * pitch_y;
    return p;
}

Point
ChipGeometry::clusterMemPosition(std::size_t cluster) const
{
    const auto [cx, cy] = clusterCoords(cluster);
    const double cluster_w = 1.0 / static_cast<double>(params_.clustersX);
    const double cluster_h = 1.0 / static_cast<double>(params_.clustersY);
    return {(static_cast<double>(cx) + 0.85) * cluster_w,
            (static_cast<double>(cy) + 0.5) * cluster_h};
}

std::size_t
ChipGeometry::torusHops(std::size_t a, std::size_t b) const
{
    const auto [ax, ay] = clusterCoords(a);
    const auto [bx, by] = clusterCoords(b);
    auto wrap = [](std::size_t p, std::size_t q, std::size_t n) {
        const std::size_t d = p > q ? p - q : q - p;
        return std::min(d, n - d);
    };
    return wrap(ax, bx, params_.clustersX) + wrap(ay, by, params_.clustersY);
}

} // namespace accordion::vartech
