#include "variation.hpp"

#include <cmath>

#include "util/log.hpp"

namespace accordion::vartech {

double
sphericalCorrelation(double r, double phi)
{
    if (r <= 0.0)
        return 1.0;
    if (r >= phi)
        return 0.0;
    const double t = r / phi;
    return 1.0 - 1.5 * t + 0.5 * t * t * t;
}

CorrelatedFieldSampler::CorrelatedFieldSampler(std::vector<Point> positions,
                                               double phi)
    : positions_(std::move(positions)), cholesky_(1, 1)
{
    if (positions_.empty())
        util::fatal("CorrelatedFieldSampler: no sites");
    const std::size_t n = positions_.size();
    util::Matrix corr(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double rho = sphericalCorrelation(
                distance(positions_[i], positions_[j]), phi);
            corr.at(i, j) = rho;
            corr.at(j, i) = rho;
        }
        // Small nugget keeps the matrix comfortably positive
        // definite without visibly changing the field.
        corr.at(i, i) += 1e-9;
    }
    cholesky_ = util::choleskyFactor(corr);
}

std::vector<double>
CorrelatedFieldSampler::sample(util::Rng &rng) const
{
    std::vector<double> iid(size());
    for (auto &v : iid)
        v = rng.normal();
    return cholesky_.multiply(iid);
}

std::vector<double>
CorrelatedFieldSampler::sampleCorrelatedWith(const std::vector<double> &base,
                                             double rho,
                                             util::Rng &rng) const
{
    if (base.size() != size())
        util::panic("sampleCorrelatedWith: base size %zu != %zu",
                    base.size(), size());
    std::vector<double> fresh = sample(rng);
    const double mix = std::sqrt(1.0 - rho * rho);
    for (std::size_t i = 0; i < fresh.size(); ++i)
        fresh[i] = rho * base[i] + mix * fresh[i];
    return fresh;
}

VariationRealization::VariationRealization(
    const CorrelatedFieldSampler &sampler, const VariationParams &params,
    util::Rng &rng)
{
    const double sys_frac = params.systematicFraction;
    if (sys_frac < 0.0 || sys_frac > 1.0)
        util::fatal("VariationRealization: systematicFraction %g not in "
                    "[0,1]", sys_frac);
    const double sigma_vth_sys =
        params.sigmaVthTotal * std::sqrt(sys_frac);
    const double sigma_leff_sys =
        params.sigmaLeffTotal * std::sqrt(sys_frac);
    sigmaVthRandom_ = params.sigmaVthTotal * std::sqrt(1.0 - sys_frac);
    sigmaLeffRandom_ = params.sigmaLeffTotal * std::sqrt(1.0 - sys_frac);

    const std::vector<double> vth_field = sampler.sample(rng);
    const std::vector<double> leff_field = sampler.sampleCorrelatedWith(
        vth_field, params.vthLeffCorrelation, rng);

    vthDev_.resize(vth_field.size());
    leffDev_.resize(leff_field.size());
    pathSigmaScale_.resize(vth_field.size());
    for (std::size_t i = 0; i < vth_field.size(); ++i) {
        vthDev_[i] = sigma_vth_sys * vth_field[i];
        leffDev_[i] = sigma_leff_sys * leff_field[i];
        pathSigmaScale_[i] = rng.uniform(0.7, 1.3);
    }
}

} // namespace accordion::vartech
