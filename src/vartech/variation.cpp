#include "variation.hpp"

#include <cmath>

#include "util/log.hpp"

namespace accordion::vartech {

double
sphericalCorrelation(double r, double phi)
{
    if (r <= 0.0)
        return 1.0;
    if (r >= phi)
        return 0.0;
    const double t = r / phi;
    return 1.0 - 1.5 * t + 0.5 * t * t * t;
}

CorrelatedFieldSampler::CorrelatedFieldSampler(std::vector<Point> positions,
                                               double phi)
    : positions_(std::move(positions))
{
    if (positions_.empty())
        util::fatal("CorrelatedFieldSampler: no sites");
    const std::size_t n = positions_.size();
    util::Matrix corr(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double rho = sphericalCorrelation(
                distance(positions_[i], positions_[j]), phi);
            corr.at(i, j) = rho;
            corr.at(j, i) = rho;
        }
        // Small nugget keeps the matrix comfortably positive
        // definite without visibly changing the field.
        corr.at(i, i) += 1e-9;
    }
    cholesky_ = util::TriangularFactor(util::choleskyFactor(corr));
}

void
CorrelatedFieldSampler::sampleInto(util::Rng &rng, Workspace &ws,
                                   std::vector<double> &out) const
{
    ws.iid.resize(size());
    for (auto &v : ws.iid)
        v = rng.normal();
    cholesky_.multiplyInto(ws.iid, out);
}

void
CorrelatedFieldSampler::sampleCorrelatedWithInto(
    const std::vector<double> &base, double rho, util::Rng &rng,
    Workspace &ws, std::vector<double> &out) const
{
    if (base.size() != size())
        util::panic("sampleCorrelatedWith: base size %zu != %zu",
                    base.size(), size());
    if (&base == &out)
        util::panic("sampleCorrelatedWith: aliased base and out");
    sampleInto(rng, ws, out);
    const double mix = std::sqrt(1.0 - rho * rho);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = rho * base[i] + mix * out[i];
}

std::vector<double>
CorrelatedFieldSampler::sample(util::Rng &rng) const
{
    Workspace ws;
    std::vector<double> out;
    sampleInto(rng, ws, out);
    return out;
}

std::vector<double>
CorrelatedFieldSampler::sampleCorrelatedWith(const std::vector<double> &base,
                                             double rho,
                                             util::Rng &rng) const
{
    Workspace ws;
    std::vector<double> out;
    sampleCorrelatedWithInto(base, rho, rng, ws, out);
    return out;
}

VariationRealization::VariationRealization(
    const CorrelatedFieldSampler &sampler, const VariationParams &params,
    util::Rng &rng)
{
    const double sys_frac = params.systematicFraction;
    if (sys_frac < 0.0 || sys_frac > 1.0)
        util::fatal("VariationRealization: systematicFraction %g not in "
                    "[0,1]", sys_frac);
    const double sigma_vth_sys =
        params.sigmaVthTotal * std::sqrt(sys_frac);
    const double sigma_leff_sys =
        params.sigmaLeffTotal * std::sqrt(sys_frac);
    sigmaVthRandom_ = params.sigmaVthTotal * std::sqrt(1.0 - sys_frac);
    sigmaLeffRandom_ = params.sigmaLeffTotal * std::sqrt(1.0 - sys_frac);

    // Sample the unit fields straight into the member vectors and
    // scale in place; one shared workspace serves both draws. The
    // RNG call sequence (2n normals, then n uniforms) and every
    // floating-point operation match the historical allocating
    // path, so realizations are bit-identical.
    CorrelatedFieldSampler::Workspace ws;
    sampler.sampleInto(rng, ws, vthDev_);
    sampler.sampleCorrelatedWithInto(vthDev_, params.vthLeffCorrelation,
                                     rng, ws, leffDev_);

    pathSigmaScale_.resize(vthDev_.size());
    for (std::size_t i = 0; i < vthDev_.size(); ++i) {
        vthDev_[i] = sigma_vth_sys * vthDev_[i];
        leffDev_[i] = sigma_leff_sys * leffDev_[i];
        pathSigmaScale_[i] = rng.uniform(0.7, 1.3);
    }
}

} // namespace accordion::vartech
