/**
 * @file
 * Logic-side timing model of a variation-afflicted core
 * (VARIUS-NTV's logic model). A core's critical-path population is
 * log-normal around the EKV delay at the core's systematic
 * (Vth, Leff) point; the log-delay spread comes from the random
 * (within-core) Vth component averaged over the gates of a path,
 * amplified by the delay-vs-Vth sensitivity, which grows sharply as
 * Vdd approaches Vth.
 *
 * Per-cycle timing error probability:
 *
 *   Perr(f) = 1 - P(all exercised paths meet 1/f)
 *           = -expm1( N_paths * log Phi( (ln(1/f) - ln mu) / sigma ) )
 *
 * evaluated in log space so that Perr is accurate from ~1e-300 up
 * to 1. This produces the steep S-curves of the paper's Fig. 5b.
 */

#ifndef ACCORDION_VARTECH_TIMING_HPP
#define ACCORDION_VARTECH_TIMING_HPP

#include "technology.hpp"

namespace accordion::vartech {

/** Knobs of the timing-error model. */
struct TimingModelParams
{
    /** Logic depth: gates per critical path (averages the random
     *  Vth component by sqrt(gatesPerPath)). */
    double gatesPerPath = 24.0;
    /** Effective number of near-critical paths exercised per cycle. */
    double pathsPerCycle = 5000.0;
    /** Error-rate ceiling that still counts as "safe" operation. */
    double perrSafe = 1e-14;
};

/**
 * Timing model of one core at a fixed systematic variation point.
 */
class CoreTimingModel
{
  public:
    /**
     * @param tech Technology node.
     * @param params Model knobs.
     * @param vth_dev Systematic Vth deviation (fraction of nominal).
     * @param leff_dev Systematic Leff deviation (fraction).
     * @param sigma_vth_random Random Vth component (fraction).
     */
    CoreTimingModel(const Technology &tech, const TimingModelParams &params,
                    double vth_dev, double leff_dev,
                    double sigma_vth_random);

    /** The core's actual threshold voltage [V]. */
    double vth() const { return vth_; }

    /** Systematic Leff deviation (fraction). */
    double leffDev() const { return leffDev_; }

    /** Mean critical-path delay at @p vdd [s]. */
    double pathDelayMean(double vdd) const;

    /** Log-delay sigma of the path population at @p vdd. */
    double pathDelaySigmaLn(double vdd) const;

    /**
     * Frequency at which the *mean* path exactly meets timing [Hz];
     * the variation-free (guardband-free) speed of this core.
     */
    double meanPathFrequency(double vdd) const;

    /** Per-cycle timing error probability at (vdd, f). */
    double errorRate(double vdd, double f) const;

    /**
     * Highest frequency with errorRate <= params.perrSafe [Hz]
     * (bisection).
     */
    double safeFrequency(double vdd) const;

    /**
     * Frequency at which errorRate == @p perr [Hz]. Used by the
     * Speculative modes, which pick an error-rate budget first and
     * derive the clock from it (Section 6.3). @pre perr in (0, 1).
     */
    double frequencyForErrorRate(double vdd, double perr) const;

    const TimingModelParams &params() const { return params_; }

  private:
    const Technology &tech_;
    TimingModelParams params_;
    double vth_; //!< core threshold [V]
    double leffDev_;
    double sigmaVthRandomVolts_; //!< per-path random Vth sigma [V]
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_TIMING_HPP
