/**
 * @file
 * Logic-side timing model of a variation-afflicted core
 * (VARIUS-NTV's logic model). A core's critical-path population is
 * log-normal around the EKV delay at the core's systematic
 * (Vth, Leff) point; the log-delay spread comes from the random
 * (within-core) Vth component averaged over the gates of a path,
 * amplified by the delay-vs-Vth sensitivity, which grows sharply as
 * Vdd approaches Vth.
 *
 * Per-cycle timing error probability:
 *
 *   Perr(f) = 1 - P(all exercised paths meet 1/f)
 *           = -expm1( N_paths * log Phi( (ln(1/f) - ln mu) / sigma ) )
 *
 * evaluated in log space so that Perr is accurate from ~1e-300 up
 * to 1. This produces the steep S-curves of the paper's Fig. 5b.
 */

#ifndef ACCORDION_VARTECH_TIMING_HPP
#define ACCORDION_VARTECH_TIMING_HPP

#include <span>

#include "technology.hpp"

namespace accordion::vartech {

/** Knobs of the timing-error model. */
struct TimingModelParams
{
    /** Logic depth: gates per critical path (averages the random
     *  Vth component by sqrt(gatesPerPath)). */
    double gatesPerPath = 24.0;
    /** Effective number of near-critical paths exercised per cycle. */
    double pathsPerCycle = 5000.0;
    /** Error-rate ceiling that still counts as "safe" operation. */
    double perrSafe = 1e-14;
};

/**
 * Timing model of one core at a fixed systematic variation point.
 */
class CoreTimingModel
{
  public:
    /**
     * The two vdd-dependent quantities every timing query reduces
     * to, hoisted so hot loops at a fixed supply (pareto scans,
     * Monte Carlo sweeps at VddNTV) evaluate the EKV delay model
     * once instead of per query.
     */
    struct DelayPoint
    {
        double delayMean = 0.0; //!< mean critical-path delay [s]
        double logDelayMean = 0.0; //!< ln(delayMean), pre-taken
        double sigmaLn = 0.0; //!< log-delay sigma of the population
    };

    /**
     * @param tech Technology node.
     * @param params Model knobs.
     * @param vth_dev Systematic Vth deviation (fraction of nominal).
     * @param leff_dev Systematic Leff deviation (fraction).
     * @param sigma_vth_random Random Vth component (fraction).
     */
    CoreTimingModel(const Technology &tech, const TimingModelParams &params,
                    double vth_dev, double leff_dev,
                    double sigma_vth_random);

    /**
     * Rebuild a model from already-derived state — the structure-of-
     * arrays chip layout stores (vth [V], leff_dev, path sigma [V])
     * per core and materializes a model view on demand. Bit-identical
     * to the deviation-based constructor that produced the state.
     */
    static CoreTimingModel fromState(const Technology &tech,
                                     const TimingModelParams &params,
                                     double vth_volts, double leff_dev,
                                     double path_sigma_volts);

    /** The core's actual threshold voltage [V]. */
    double vth() const { return vth_; }

    /** Systematic Leff deviation (fraction). */
    double leffDev() const { return leffDev_; }

    /** Path-effective random Vth sigma [V] (post sqrt-G averaging). */
    double pathSigmaVolts() const { return sigmaVthRandomVolts_; }

    /** Mean critical-path delay at @p vdd [s]. */
    double pathDelayMean(double vdd) const;

    /** Log-delay sigma of the path population at @p vdd. */
    double pathDelaySigmaLn(double vdd) const;

    /**
     * Frequency at which the *mean* path exactly meets timing [Hz];
     * the variation-free (guardband-free) speed of this core.
     */
    double meanPathFrequency(double vdd) const;

    /** Per-cycle timing error probability at (vdd, f). */
    double errorRate(double vdd, double f) const;

    /** The hoisted (delay mean, log-delay sigma) pair at @p vdd. */
    DelayPoint delayPoint(double vdd) const;

    /**
     * errorRate() evaluated against a precomputed DelayPoint —
     * bit-identical to errorRate(vdd, f) for the point's vdd, minus
     * the per-call EKV model evaluations.
     */
    double errorRateAt(const DelayPoint &point, double f) const;

    /**
     * Highest frequency with errorRate <= params.perrSafe [Hz]
     * (closed form).
     */
    double safeFrequency(double vdd) const;

    /**
     * Frequency at which errorRate == @p perr [Hz]. Used by the
     * Speculative modes, which pick an error-rate budget first and
     * derive the clock from it (Section 6.3). @pre perr in (0, 1).
     *
     * Closed form: the error-rate model inverts analytically,
     *   z* = Q^-1(-expm1(log1p(-perr) / pathsPerCycle)),
     *   f  = exp(-z* sigma_ln) / delayMean,
     * clamped into the same [0.01, 4] x meanPathFrequency bracket
     * the historical bisection searched, so degenerate cores report
     * the identical floor frequency.
     */
    double frequencyForErrorRate(double vdd, double perr) const;

    /** Closed-form inversion against a precomputed DelayPoint. */
    double frequencyForErrorRateAt(const DelayPoint &point,
                                   double perr) const;

    /**
     * The pre-closed-form implementation: 100 bisection steps of
     * errorRate(). Kept only as the reference oracle for the
     * inversion property tests — production paths must use
     * frequencyForErrorRate().
     */
    double frequencyForErrorRateBisect(double vdd, double perr) const;

    const TimingModelParams &params() const { return params_; }

    // ------------------------------------------------------------------
    // Batch kernels over structure-of-arrays core state. Each kernel is
    // the exact per-element math of the scalar accessor above with every
    // per-batch invariant (log period, inverted z*) hoisted out of the
    // loop, and the loop body branch-free so it auto-vectorizes. The
    // scalar members remain the bit-identity oracle: for every element,
    // batch output == scalar output, bit for bit.
    // ------------------------------------------------------------------

    /**
     * The z* at which the per-cycle error rate equals @p perr — a pure
     * function of (perr, pathsPerCycle), so batch inversions compute it
     * once per batch. @pre perr in (0, 1) (fatal otherwise).
     */
    static double criticalZ(double paths_per_cycle, double perr);

    /**
     * The closed-form inversion at a precomputed z* (clamped into the
     * historical [0.01, 4] x meanPathFrequency bracket). Gathered
     * reductions hoist z* via criticalZ and call this per element.
     */
    static double frequencyForCriticalZ(double z, double delay_mean,
                                        double sigma_ln);

    /**
     * Batch errorRateAt: per-cycle error probability at frequency @p f
     * for cores with log-delay means / sigmas in the given spans.
     * @pre f > 0 (panics otherwise); spans have equal length.
     */
    static void errorRatesAt(double paths_per_cycle, double f,
                             std::span<const double> log_delay_mean,
                             std::span<const double> sigma_ln,
                             std::span<double> out);

    /**
     * Batch frequencyForErrorRateAt: the closed-form inversion with z*
     * hoisted (see criticalZ). @pre perr in (0, 1); spans equal length.
     */
    static void frequenciesForErrorRateAt(double paths_per_cycle,
                                          double perr,
                                          std::span<const double> delay_mean,
                                          std::span<const double> sigma_ln,
                                          std::span<double> out);

    /**
     * Batch delayPoint at @p vdd over structure-of-arrays core state
     * (vth [V], leff_dev, path sigma [V]); fills mean delay [s] and
     * log-delay sigma spans. Spans must all have equal length.
     */
    static void delayPointsAt(const Technology &tech, double vdd,
                              std::span<const double> vth_volts,
                              std::span<const double> leff_dev,
                              std::span<const double> path_sigma_volts,
                              std::span<double> delay_mean,
                              std::span<double> sigma_ln);

  private:
    struct FromState
    {
    };

    CoreTimingModel(FromState, const Technology &tech,
                    const TimingModelParams &params, double vth_volts,
                    double leff_dev, double path_sigma_volts);

    const Technology &tech_;
    TimingModelParams params_;
    double vth_; //!< core threshold [V]
    double leffDev_;
    double sigmaVthRandomVolts_; //!< per-path random Vth sigma [V]
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_TIMING_HPP
