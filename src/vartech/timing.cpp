#include "timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace accordion::vartech {
namespace {

// Shared per-element math of the scalar accessors and the batch
// kernels: both sides call these, so batch-vs-scalar bit-identity
// holds by construction (identical expressions, identical order).

inline double
errorRateOne(double paths_per_cycle, double log_period,
             double log_delay_mean, double sigma_ln)
{
    const double z = (log_period - log_delay_mean) / sigma_ln;
    const double log_survive_all =
        paths_per_cycle * util::logNormalCdf(z);
    return -std::expm1(log_survive_all);
}

} // namespace

double
CoreTimingModel::frequencyForCriticalZ(double z, double delay_mean,
                                       double sigma_ln)
{
    // ln(1/f) = ln(mu) + z sigma  =>  f = exp(-z sigma) / mu.
    const double f = std::exp(-z * sigma_ln) / delay_mean;
    // Clamp into the bracket the historical bisection searched:
    // degenerate cores (errors even at crawl speed) report the same
    // floor, runaway targets the same ceiling.
    const double mean_f = 1.0 / delay_mean;
    return std::clamp(f, 0.01 * mean_f, 4.0 * mean_f);
}

CoreTimingModel::CoreTimingModel(const Technology &tech,
                                 const TimingModelParams &params,
                                 double vth_dev, double leff_dev,
                                 double sigma_vth_random)
    : tech_(tech), params_(params), leffDev_(leff_dev)
{
    const double vth_nom = tech.params().vthNom;
    vth_ = vth_nom * (1.0 + vth_dev);
    // A path of G gates averages G independent random Vth draws, so
    // the path-effective random sigma shrinks by sqrt(G).
    sigmaVthRandomVolts_ = sigma_vth_random * vth_nom /
        std::sqrt(params_.gatesPerPath);
}

CoreTimingModel::CoreTimingModel(FromState, const Technology &tech,
                                 const TimingModelParams &params,
                                 double vth_volts, double leff_dev,
                                 double path_sigma_volts)
    : tech_(tech), params_(params), vth_(vth_volts), leffDev_(leff_dev),
      sigmaVthRandomVolts_(path_sigma_volts)
{
}

CoreTimingModel
CoreTimingModel::fromState(const Technology &tech,
                           const TimingModelParams &params,
                           double vth_volts, double leff_dev,
                           double path_sigma_volts)
{
    return CoreTimingModel(FromState{}, tech, params, vth_volts,
                           leff_dev, path_sigma_volts);
}

double
CoreTimingModel::pathDelayMean(double vdd) const
{
    return tech_.relativeDelay(vdd, vth_, leffDev_) /
        tech_.params().fNom;
}

double
CoreTimingModel::pathDelaySigmaLn(double vdd) const
{
    return tech_.delayVthSensitivity(vdd, vth_) * sigmaVthRandomVolts_;
}

double
CoreTimingModel::meanPathFrequency(double vdd) const
{
    return 1.0 / pathDelayMean(vdd);
}

CoreTimingModel::DelayPoint
CoreTimingModel::delayPoint(double vdd) const
{
    DelayPoint point;
    point.delayMean = pathDelayMean(vdd);
    point.logDelayMean = std::log(point.delayMean);
    point.sigmaLn = pathDelaySigmaLn(vdd);
    return point;
}

double
CoreTimingModel::errorRate(double vdd, double f) const
{
    return errorRateAt(delayPoint(vdd), f);
}

double
CoreTimingModel::errorRateAt(const DelayPoint &point, double f) const
{
    if (f <= 0.0)
        util::panic("errorRate: non-positive frequency %g", f);
    const double period = 1.0 / f;
    return errorRateOne(params_.pathsPerCycle, std::log(period),
                        point.logDelayMean, point.sigmaLn);
}

double
CoreTimingModel::safeFrequency(double vdd) const
{
    return frequencyForErrorRate(vdd, params_.perrSafe);
}

double
CoreTimingModel::frequencyForErrorRate(double vdd, double perr) const
{
    return frequencyForErrorRateAt(delayPoint(vdd), perr);
}

double
CoreTimingModel::frequencyForErrorRateAt(const DelayPoint &point,
                                         double perr) const
{
    const double z = criticalZ(params_.pathsPerCycle, perr);
    return frequencyForCriticalZ(z, point.delayMean, point.sigmaLn);
}

double
CoreTimingModel::criticalZ(double paths_per_cycle, double perr)
{
    if (perr <= 0.0 || perr >= 1.0)
        util::fatal("frequencyForErrorRate: perr %g not in (0,1)", perr);
    // Invert Perr = -expm1(N log Phi(z)) analytically. The survival
    // probability per cycle is exp(L) with L = log1p(-perr)/N; its
    // complement q = -expm1(L) stays accurate down to ~1e-308 where
    // Phi(z) itself would round to 1.0.
    const double log_survive = std::log1p(-perr) / paths_per_cycle;
    const double q = -std::expm1(log_survive);
    return util::normalInvCdfUpper(q);
}

void
CoreTimingModel::errorRatesAt(double paths_per_cycle, double f,
                              std::span<const double> log_delay_mean,
                              std::span<const double> sigma_ln,
                              std::span<double> out)
{
    if (f <= 0.0)
        util::panic("errorRate: non-positive frequency %g", f);
    if (log_delay_mean.size() != out.size() ||
        sigma_ln.size() != out.size())
        util::panic("errorRatesAt: span sizes %zu/%zu/%zu differ",
                    log_delay_mean.size(), sigma_ln.size(), out.size());
    const double period = 1.0 / f;
    const double log_period = std::log(period);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = errorRateOne(paths_per_cycle, log_period,
                              log_delay_mean[i], sigma_ln[i]);
}

void
CoreTimingModel::frequenciesForErrorRateAt(
    double paths_per_cycle, double perr,
    std::span<const double> delay_mean, std::span<const double> sigma_ln,
    std::span<double> out)
{
    if (delay_mean.size() != out.size() || sigma_ln.size() != out.size())
        util::panic("frequenciesForErrorRateAt: span sizes %zu/%zu/%zu "
                    "differ", delay_mean.size(), sigma_ln.size(),
                    out.size());
    const double z = criticalZ(paths_per_cycle, perr);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = frequencyForCriticalZ(z, delay_mean[i], sigma_ln[i]);
}

void
CoreTimingModel::delayPointsAt(const Technology &tech, double vdd,
                               std::span<const double> vth_volts,
                               std::span<const double> leff_dev,
                               std::span<const double> path_sigma_volts,
                               std::span<double> delay_mean,
                               std::span<double> sigma_ln)
{
    const std::size_t n = delay_mean.size();
    if (vth_volts.size() != n || leff_dev.size() != n ||
        path_sigma_volts.size() != n || sigma_ln.size() != n)
        util::panic("delayPointsAt: span sizes differ (%zu cores)", n);
    const double f_nom = tech.params().fNom;
    for (std::size_t i = 0; i < n; ++i) {
        delay_mean[i] =
            tech.relativeDelay(vdd, vth_volts[i], leff_dev[i]) / f_nom;
        sigma_ln[i] = tech.delayVthSensitivity(vdd, vth_volts[i]) *
            path_sigma_volts[i];
    }
}

double
CoreTimingModel::frequencyForErrorRateBisect(double vdd,
                                             double perr) const
{
    if (perr <= 0.0 || perr >= 1.0)
        util::fatal("frequencyForErrorRate: perr %g not in (0,1)", perr);
    // errorRate is monotonically increasing in f; bracket and bisect.
    double lo = 0.01 * meanPathFrequency(vdd);
    double hi = 4.0 * meanPathFrequency(vdd);
    if (errorRate(vdd, lo) > perr)
        return lo; // pathological: even crawl speed errors out
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (errorRate(vdd, mid) <= perr)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace accordion::vartech
