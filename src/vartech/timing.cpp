#include "timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace accordion::vartech {

CoreTimingModel::CoreTimingModel(const Technology &tech,
                                 const TimingModelParams &params,
                                 double vth_dev, double leff_dev,
                                 double sigma_vth_random)
    : tech_(tech), params_(params), leffDev_(leff_dev)
{
    const double vth_nom = tech.params().vthNom;
    vth_ = vth_nom * (1.0 + vth_dev);
    // A path of G gates averages G independent random Vth draws, so
    // the path-effective random sigma shrinks by sqrt(G).
    sigmaVthRandomVolts_ = sigma_vth_random * vth_nom /
        std::sqrt(params_.gatesPerPath);
}

double
CoreTimingModel::pathDelayMean(double vdd) const
{
    return tech_.relativeDelay(vdd, vth_, leffDev_) /
        tech_.params().fNom;
}

double
CoreTimingModel::pathDelaySigmaLn(double vdd) const
{
    return tech_.delayVthSensitivity(vdd, vth_) * sigmaVthRandomVolts_;
}

double
CoreTimingModel::meanPathFrequency(double vdd) const
{
    return 1.0 / pathDelayMean(vdd);
}

CoreTimingModel::DelayPoint
CoreTimingModel::delayPoint(double vdd) const
{
    DelayPoint point;
    point.delayMean = pathDelayMean(vdd);
    point.logDelayMean = std::log(point.delayMean);
    point.sigmaLn = pathDelaySigmaLn(vdd);
    return point;
}

double
CoreTimingModel::errorRate(double vdd, double f) const
{
    return errorRateAt(delayPoint(vdd), f);
}

double
CoreTimingModel::errorRateAt(const DelayPoint &point, double f) const
{
    if (f <= 0.0)
        util::panic("errorRate: non-positive frequency %g", f);
    const double period = 1.0 / f;
    const double z =
        (std::log(period) - point.logDelayMean) / point.sigmaLn;
    const double log_survive_all =
        params_.pathsPerCycle * util::logNormalCdf(z);
    return -std::expm1(log_survive_all);
}

double
CoreTimingModel::safeFrequency(double vdd) const
{
    return frequencyForErrorRate(vdd, params_.perrSafe);
}

double
CoreTimingModel::frequencyForErrorRate(double vdd, double perr) const
{
    return frequencyForErrorRateAt(delayPoint(vdd), perr);
}

double
CoreTimingModel::frequencyForErrorRateAt(const DelayPoint &point,
                                         double perr) const
{
    if (perr <= 0.0 || perr >= 1.0)
        util::fatal("frequencyForErrorRate: perr %g not in (0,1)", perr);
    // Invert Perr = -expm1(N log Phi(z)) analytically. The survival
    // probability per cycle is exp(L) with L = log1p(-perr)/N; its
    // complement q = -expm1(L) stays accurate down to ~1e-308 where
    // Phi(z) itself would round to 1.0.
    const double log_survive =
        std::log1p(-perr) / params_.pathsPerCycle;
    const double q = -std::expm1(log_survive);
    const double z = util::normalInvCdfUpper(q);
    // ln(1/f) = ln(mu) + z sigma  =>  f = exp(-z sigma) / mu.
    const double f = std::exp(-z * point.sigmaLn) / point.delayMean;
    // Clamp into the bracket the historical bisection searched:
    // degenerate cores (errors even at crawl speed) report the same
    // floor, runaway targets the same ceiling.
    const double mean_f = 1.0 / point.delayMean;
    return std::clamp(f, 0.01 * mean_f, 4.0 * mean_f);
}

double
CoreTimingModel::frequencyForErrorRateBisect(double vdd,
                                             double perr) const
{
    if (perr <= 0.0 || perr >= 1.0)
        util::fatal("frequencyForErrorRate: perr %g not in (0,1)", perr);
    // errorRate is monotonically increasing in f; bracket and bisect.
    double lo = 0.01 * meanPathFrequency(vdd);
    double hi = 4.0 * meanPathFrequency(vdd);
    if (errorRate(vdd, lo) > perr)
        return lo; // pathological: even crawl speed errors out
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (errorRate(vdd, mid) <= perr)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace accordion::vartech
