#include "variation_chip.hpp"

#include <algorithm>
#include <optional>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::vartech {

VariationChip::VariationChip(const Technology &tech,
                             const ChipGeometry &geometry,
                             const TimingModelParams &timing_params,
                             const SramParams &sram_params,
                             const VariationRealization &realization,
                             std::uint64_t chip_id,
                             std::size_t private_mem_bits,
                             std::size_t cluster_mem_bits)
    : tech_(&tech), geometry_(geometry), chipId_(chip_id)
{
    const std::size_t n_cores = geometry_.numCores();
    const std::size_t n_clusters = geometry_.numClusters();
    // Site layout (fixed by ChipFactory): cores, then private
    // memories, then cluster memories.
    if (realization.size() != 2 * n_cores + n_clusters)
        util::panic("VariationChip: realization has %zu sites, expected "
                    "%zu", realization.size(), 2 * n_cores + n_clusters);

    coreVthDev_.resize(n_cores);
    coreLeffDev_.resize(n_cores);
    coreTiming_.reserve(n_cores);
    privateMemVddMin_.resize(n_cores);
    for (std::size_t c = 0; c < n_cores; ++c) {
        coreVthDev_[c] = realization.vthDev(c);
        coreLeffDev_[c] = realization.leffDev(c);
        coreTiming_.emplace_back(tech, timing_params, coreVthDev_[c],
                                 coreLeffDev_[c],
                                 realization.sigmaVthRandom() *
                                     realization.pathSigmaScale(c));
    }

    const double vth_nom = tech.params().vthNom;
    const std::size_t private_bits = private_mem_bits;
    const std::size_t cluster_bits = cluster_mem_bits;
    for (std::size_t c = 0; c < n_cores; ++c) {
        const std::size_t site = n_cores + c;
        SramBlockModel block(sram_params, private_bits,
                             realization.vthDev(site) * vth_nom,
                             realization.leffDev(site));
        privateMemVddMin_[c] = block.vddMin();
    }
    clusterMemVddMin_.resize(n_clusters);
    for (std::size_t k = 0; k < n_clusters; ++k) {
        const std::size_t site = 2 * n_cores + k;
        SramBlockModel block(sram_params, cluster_bits,
                             realization.vthDev(site) * vth_nom,
                             realization.leffDev(site));
        clusterMemVddMin_[k] = block.vddMin();
    }

    clusterVddMin_.resize(n_clusters);
    for (std::size_t k = 0; k < n_clusters; ++k) {
        double vmin = clusterMemVddMin_[k];
        for (std::size_t core : geometry_.coresOfCluster(k))
            vmin = std::max(vmin, privateMemVddMin_[core]);
        clusterVddMin_[k] = vmin;
    }
    vddNtv_ = *std::max_element(clusterVddMin_.begin(),
                                clusterVddMin_.end());
    // Filled eagerly: every downstream path (core selection, CC
    // ranking, pareto scans) reads all of it anyway, and a
    // write-once table keeps concurrent pareto sweeps over the same
    // chip free of data races. The hoisted NTV delay points turn
    // every later error-rate / speculative-frequency query at
    // VddNTV into pure CDF math.
    coreSafeF_.resize(n_cores);
    coreNtvPoint_.resize(n_cores);
    for (std::size_t c = 0; c < n_cores; ++c) {
        coreNtvPoint_[c] = coreTiming_[c].delayPoint(vddNtv_);
        coreSafeF_[c] = coreTiming_[c].frequencyForErrorRateAt(
            coreNtvPoint_[c], timing_params.perrSafe);
    }
}

// The per-core/per-cluster accessors sit inside the pareto,
// core-selection and CC-ranking inner loops (hundreds of calls per
// operating point, thousands of points per chip), so they index
// unchecked in release builds; debug builds keep a hard bounds
// panic.

double
VariationChip::coreVthDev(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreVthDev_.size(),
                     "coreVthDev: core %zu out of %zu", core,
                     coreVthDev_.size());
    return coreVthDev_[core];
}

double
VariationChip::coreLeffDev(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreLeffDev_.size(),
                     "coreLeffDev: core %zu out of %zu", core,
                     coreLeffDev_.size());
    return coreLeffDev_[core];
}

const CoreTimingModel &
VariationChip::coreTiming(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreTiming_.size(),
                     "coreTiming: core %zu out of %zu", core,
                     coreTiming_.size());
    return coreTiming_[core];
}

double
VariationChip::privateMemVddMin(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < privateMemVddMin_.size(),
                     "privateMemVddMin: core %zu out of %zu", core,
                     privateMemVddMin_.size());
    return privateMemVddMin_[core];
}

double
VariationChip::clusterMemVddMin(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < clusterMemVddMin_.size(),
                     "clusterMemVddMin: cluster %zu out of %zu",
                     cluster, clusterMemVddMin_.size());
    return clusterMemVddMin_[cluster];
}

double
VariationChip::clusterVddMin(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < clusterVddMin_.size(),
                     "clusterVddMin: cluster %zu out of %zu", cluster,
                     clusterVddMin_.size());
    return clusterVddMin_[cluster];
}

double
VariationChip::coreSafeF(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreSafeF_.size(),
                     "coreSafeF: core %zu out of %zu", core,
                     coreSafeF_.size());
    return coreSafeF_[core];
}

double
VariationChip::clusterSafeF(std::size_t cluster) const
{
    double f = 1e300;
    for (std::size_t core : geometry_.coresOfCluster(cluster))
        f = std::min(f, coreSafeF(core));
    return f;
}

std::size_t
VariationChip::slowestCoreOfCluster(std::size_t cluster) const
{
    const auto cores = geometry_.coresOfCluster(cluster);
    std::size_t slowest = cores.front();
    for (std::size_t core : cores)
        if (coreSafeF(core) < coreSafeF(slowest))
            slowest = core;
    return slowest;
}

double
VariationChip::coreSafeFAt(std::size_t core, double vdd) const
{
    return coreTiming(core).safeFrequency(vdd);
}

double
VariationChip::coreErrorRate(std::size_t core, double f) const
{
    ACC_DEBUG_ASSERT(core < coreNtvPoint_.size(),
                     "coreErrorRate: core %zu out of %zu", core,
                     coreNtvPoint_.size());
    return coreTiming_[core].errorRateAt(coreNtvPoint_[core], f);
}

double
VariationChip::coreFrequencyForErrorRate(std::size_t core,
                                         double perr) const
{
    ACC_DEBUG_ASSERT(core < coreNtvPoint_.size(),
                     "coreFrequencyForErrorRate: core %zu out of %zu",
                     core, coreNtvPoint_.size());
    return coreTiming_[core].frequencyForErrorRateAt(
        coreNtvPoint_[core], perr);
}

double
VariationChip::coreStaticPower(std::size_t core, double vdd) const
{
    return tech_->staticPower(vdd, coreTiming(core).vth(),
                              coreLeffDev(core));
}

ChipFactory::ChipFactory(const Technology &tech, Params params,
                         std::uint64_t seed)
    : tech_(&tech), params_(std::move(params)),
      geometry_(params_.geometry), seed_(seed)
{
    std::vector<Point> sites;
    const std::size_t n_cores = geometry_.numCores();
    sites.reserve(2 * n_cores + geometry_.numClusters());
    for (std::size_t c = 0; c < n_cores; ++c)
        sites.push_back(geometry_.corePosition(c));
    for (std::size_t c = 0; c < n_cores; ++c)
        sites.push_back(geometry_.privateMemPosition(c));
    for (std::size_t k = 0; k < geometry_.numClusters(); ++k)
        sites.push_back(geometry_.clusterMemPosition(k));
    sampler_ = std::make_unique<CorrelatedFieldSampler>(
        std::move(sites), params_.variation.phi);
}

VariationChip
ChipFactory::make(std::uint64_t chip_id) const
{
    ACC_SCOPED_TIMER("chip.manufacture");
    obs::StatsRegistry::global().counter("chip.manufactured").inc();
    util::Rng rng(seed_, chip_id);
    VariationRealization realization(*sampler_, params_.variation, rng);
    return VariationChip(*tech_, geometry_, params_.timing, params_.sram,
                         realization, chip_id, params_.privateMemBits,
                         params_.clusterMemBits);
}

std::vector<VariationChip>
ChipFactory::makeSample(std::size_t count) const
{
    // Chips are pure functions of (seed, id), so manufacture
    // parallelizes with bit-identical results at any thread count;
    // each iteration fills only its own slot and the final vector
    // is assembled in id order.
    std::vector<std::optional<VariationChip>> slots(count);
    util::parallelFor(0, count, [&](std::size_t i) {
        slots[i].emplace(make(static_cast<std::uint64_t>(i)));
    });
    std::vector<VariationChip> chips;
    chips.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        chips.push_back(std::move(*slots[i]));
    return chips;
}

} // namespace accordion::vartech
