#include "variation_chip.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace accordion::vartech {

VariationChip::VariationChip(const Technology &tech,
                             const ChipGeometry &geometry,
                             const TimingModelParams &timing_params,
                             const SramParams &sram_params,
                             const VariationRealization &realization,
                             std::uint64_t chip_id,
                             std::size_t private_mem_bits,
                             std::size_t cluster_mem_bits)
    : tech_(&tech), geometry_(geometry), chipId_(chip_id),
      timingParams_(timing_params)
{
    const std::size_t n_cores = geometry_.numCores();
    const std::size_t n_clusters = geometry_.numClusters();
    // Site layout (fixed by ChipFactory): cores, then private
    // memories, then cluster memories.
    if (realization.size() != 2 * n_cores + n_clusters)
        util::panic("VariationChip: realization has %zu sites, expected "
                    "%zu", realization.size(), 2 * n_cores + n_clusters);

    coreVthDev_.resize(n_cores);
    coreLeffDev_.resize(n_cores);
    coreVth_.resize(n_cores);
    corePathSigmaVolts_.resize(n_cores);
    privateMemVddMin_.resize(n_cores);
    for (std::size_t c = 0; c < n_cores; ++c) {
        coreVthDev_[c] = realization.vthDev(c);
        coreLeffDev_[c] = realization.leffDev(c);
        // Derive (vth [V], path sigma [V]) through the same model
        // constructor the per-core object layout used, then keep only
        // the structure-of-arrays state; coreTiming() re-materializes
        // the identical model from it on demand.
        const CoreTimingModel model(tech, timing_params, coreVthDev_[c],
                                    coreLeffDev_[c],
                                    realization.sigmaVthRandom() *
                                        realization.pathSigmaScale(c));
        coreVth_[c] = model.vth();
        corePathSigmaVolts_[c] = model.pathSigmaVolts();
    }

    const double vth_nom = tech.params().vthNom;
    const std::size_t private_bits = private_mem_bits;
    const std::size_t cluster_bits = cluster_mem_bits;
    for (std::size_t c = 0; c < n_cores; ++c) {
        const std::size_t site = n_cores + c;
        SramBlockModel block(sram_params, private_bits,
                             realization.vthDev(site) * vth_nom,
                             realization.leffDev(site));
        privateMemVddMin_[c] = block.vddMin();
    }
    clusterMemVddMin_.resize(n_clusters);
    for (std::size_t k = 0; k < n_clusters; ++k) {
        const std::size_t site = 2 * n_cores + k;
        SramBlockModel block(sram_params, cluster_bits,
                             realization.vthDev(site) * vth_nom,
                             realization.leffDev(site));
        clusterMemVddMin_[k] = block.vddMin();
    }

    clusterVddMin_.resize(n_clusters);
    for (std::size_t k = 0; k < n_clusters; ++k) {
        double vmin = clusterMemVddMin_[k];
        for (std::size_t core : geometry_.coresOfCluster(k))
            vmin = std::max(vmin, privateMemVddMin_[core]);
        clusterVddMin_[k] = vmin;
    }
    vddNtv_ = *std::max_element(clusterVddMin_.begin(),
                                clusterVddMin_.end());
    // Filled eagerly: every downstream path (core selection, CC
    // ranking, pareto scans) reads all of it anyway, and a
    // write-once table keeps concurrent pareto sweeps over the same
    // chip free of data races. The hoisted NTV delay statistics turn
    // every later error-rate / speculative-frequency query at
    // VddNTV into pure CDF math; the safe-f fill shares the batch
    // kernel with every downstream batch query (z* inverted once for
    // the whole chip instead of per core).
    ntvDelayMean_.resize(n_cores);
    ntvLogDelayMean_.resize(n_cores);
    ntvSigmaLn_.resize(n_cores);
    CoreTimingModel::delayPointsAt(tech, vddNtv_, coreVth_,
                                   coreLeffDev_, corePathSigmaVolts_,
                                   ntvDelayMean_, ntvSigmaLn_);
    for (std::size_t c = 0; c < n_cores; ++c)
        ntvLogDelayMean_[c] = std::log(ntvDelayMean_[c]);
    coreSafeF_.resize(n_cores);
    CoreTimingModel::frequenciesForErrorRateAt(
        timingParams_.pathsPerCycle, timingParams_.perrSafe,
        ntvDelayMean_, ntvSigmaLn_, coreSafeF_);

    clusterSafeF_.resize(n_clusters);
    clusterSafeFs(clusterSafeF_);
    slowestCore_.resize(n_clusters);
    for (std::size_t k = 0; k < n_clusters; ++k) {
        const std::size_t begin = geometry_.firstCoreOfCluster(k);
        const std::size_t end = begin + geometry_.coresPerCluster();
        std::size_t slowest = begin;
        for (std::size_t core = begin; core < end; ++core)
            if (coreSafeF_[core] < coreSafeF_[slowest])
                slowest = core;
        slowestCore_[k] = slowest;
    }
}

// The per-core/per-cluster accessors sit inside the pareto,
// core-selection and CC-ranking inner loops (hundreds of calls per
// operating point, thousands of points per chip), so they index
// unchecked in release builds; debug builds keep a hard bounds
// panic.

double
VariationChip::coreVthDev(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreVthDev_.size(),
                     "coreVthDev: core %zu out of %zu", core,
                     coreVthDev_.size());
    return coreVthDev_[core];
}

double
VariationChip::coreLeffDev(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreLeffDev_.size(),
                     "coreLeffDev: core %zu out of %zu", core,
                     coreLeffDev_.size());
    return coreLeffDev_[core];
}

CoreTimingModel
VariationChip::coreTiming(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreVth_.size(),
                     "coreTiming: core %zu out of %zu", core,
                     coreVth_.size());
    return CoreTimingModel::fromState(*tech_, timingParams_,
                                      coreVth_[core], coreLeffDev_[core],
                                      corePathSigmaVolts_[core]);
}

double
VariationChip::privateMemVddMin(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < privateMemVddMin_.size(),
                     "privateMemVddMin: core %zu out of %zu", core,
                     privateMemVddMin_.size());
    return privateMemVddMin_[core];
}

double
VariationChip::clusterMemVddMin(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < clusterMemVddMin_.size(),
                     "clusterMemVddMin: cluster %zu out of %zu",
                     cluster, clusterMemVddMin_.size());
    return clusterMemVddMin_[cluster];
}

double
VariationChip::clusterVddMin(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < clusterVddMin_.size(),
                     "clusterVddMin: cluster %zu out of %zu", cluster,
                     clusterVddMin_.size());
    return clusterVddMin_[cluster];
}

double
VariationChip::coreSafeF(std::size_t core) const
{
    ACC_DEBUG_ASSERT(core < coreSafeF_.size(),
                     "coreSafeF: core %zu out of %zu", core,
                     coreSafeF_.size());
    return coreSafeF_[core];
}

double
VariationChip::clusterSafeF(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < clusterSafeF_.size(),
                     "clusterSafeF: cluster %zu out of %zu", cluster,
                     clusterSafeF_.size());
    return clusterSafeF_[cluster];
}

std::size_t
VariationChip::slowestCoreOfCluster(std::size_t cluster) const
{
    ACC_DEBUG_ASSERT(cluster < slowestCore_.size(),
                     "slowestCoreOfCluster: cluster %zu out of %zu",
                     cluster, slowestCore_.size());
    return slowestCore_[cluster];
}

double
VariationChip::coreSafeFAt(std::size_t core, double vdd) const
{
    return coreTiming(core).safeFrequency(vdd);
}

double
VariationChip::coreErrorRate(std::size_t core, double f) const
{
    ACC_DEBUG_ASSERT(core < ntvSigmaLn_.size(),
                     "coreErrorRate: core %zu out of %zu", core,
                     ntvSigmaLn_.size());
    double out;
    errorRates(f, std::span<double>(&out, 1), core);
    return out;
}

double
VariationChip::coreFrequencyForErrorRate(std::size_t core,
                                         double perr) const
{
    ACC_DEBUG_ASSERT(core < ntvSigmaLn_.size(),
                     "coreFrequencyForErrorRate: core %zu out of %zu",
                     core, ntvSigmaLn_.size());
    double out;
    frequenciesForErrorRate(perr, std::span<double>(&out, 1), core);
    return out;
}

double
VariationChip::coreStaticPower(std::size_t core, double vdd) const
{
    return tech_->staticPower(vdd, coreTiming(core).vth(),
                              coreLeffDev(core));
}

// ---------------------------------------------------------------------
// Batch queries. Each kernel hoists the per-batch invariants and
// streams over the parallel arrays; the scalar accessors above stay
// the bit-identity oracle.
// ---------------------------------------------------------------------

void
VariationChip::errorRates(double f, std::span<double> out,
                          std::size_t first) const
{
    ACC_DEBUG_ASSERT(first + out.size() <= ntvSigmaLn_.size(),
                     "errorRates: range [%zu, %zu) out of %zu", first,
                     first + out.size(), ntvSigmaLn_.size());
    CoreTimingModel::errorRatesAt(
        timingParams_.pathsPerCycle, f,
        std::span<const double>(ntvLogDelayMean_)
            .subspan(first, out.size()),
        std::span<const double>(ntvSigmaLn_).subspan(first, out.size()),
        out);
}

void
VariationChip::safeFrequencies(double vdd, std::span<double> out,
                               std::size_t first) const
{
    ACC_DEBUG_ASSERT(first + out.size() <= coreVth_.size(),
                     "safeFrequencies: range [%zu, %zu) out of %zu",
                     first, first + out.size(), coreVth_.size());
    // EKV delay statistics at this supply, then the hoisted-z
    // inversion — the same two steps coreSafeFAt performs per core.
    std::vector<double> delay_mean(out.size());
    std::vector<double> sigma_ln(out.size());
    CoreTimingModel::delayPointsAt(
        *tech_, vdd,
        std::span<const double>(coreVth_).subspan(first, out.size()),
        std::span<const double>(coreLeffDev_).subspan(first, out.size()),
        std::span<const double>(corePathSigmaVolts_)
            .subspan(first, out.size()),
        delay_mean, sigma_ln);
    CoreTimingModel::frequenciesForErrorRateAt(
        timingParams_.pathsPerCycle, timingParams_.perrSafe, delay_mean,
        sigma_ln, out);
}

void
VariationChip::frequenciesForErrorRate(double perr, std::span<double> out,
                                       std::size_t first) const
{
    ACC_DEBUG_ASSERT(first + out.size() <= ntvSigmaLn_.size(),
                     "frequenciesForErrorRate: range [%zu, %zu) out of "
                     "%zu", first, first + out.size(),
                     ntvSigmaLn_.size());
    CoreTimingModel::frequenciesForErrorRateAt(
        timingParams_.pathsPerCycle, perr,
        std::span<const double>(ntvDelayMean_).subspan(first, out.size()),
        std::span<const double>(ntvSigmaLn_).subspan(first, out.size()),
        out);
}

void
VariationChip::coreStaticPowers(double vdd, std::span<double> out,
                                std::size_t first) const
{
    ACC_DEBUG_ASSERT(first + out.size() <= coreVth_.size(),
                     "coreStaticPowers: range [%zu, %zu) out of %zu",
                     first, first + out.size(), coreVth_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = tech_->staticPower(vdd, coreVth_[first + i],
                                    coreLeffDev_[first + i]);
}

void
VariationChip::coreStaticPowers(double vdd,
                                std::span<const std::size_t> cores,
                                std::span<double> out) const
{
    ACC_DEBUG_ASSERT(cores.size() == out.size(),
                     "coreStaticPowers: %zu cores but %zu outputs",
                     cores.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::size_t core = cores[i];
        ACC_DEBUG_ASSERT(core < coreVth_.size(),
                         "coreStaticPowers: core %zu out of %zu", core,
                         coreVth_.size());
        out[i] = tech_->staticPower(vdd, coreVth_[core],
                                    coreLeffDev_[core]);
    }
}

void
VariationChip::clusterSafeFs(std::span<double> out,
                             std::size_t first) const
{
    ACC_DEBUG_ASSERT(first + out.size() <= geometry_.numClusters(),
                     "clusterSafeFs: range [%zu, %zu) out of %zu", first,
                     first + out.size(), geometry_.numClusters());
    const std::size_t per_cluster = geometry_.coresPerCluster();
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::size_t begin =
            geometry_.firstCoreOfCluster(first + i);
        double f = 1e300;
        for (std::size_t core = begin; core < begin + per_cluster;
             ++core)
            f = std::min(f, coreSafeF_[core]);
        out[i] = f;
    }
}

double
VariationChip::minSafeF(std::span<const std::size_t> cores) const
{
    double f = 1e300;
    for (std::size_t core : cores) {
        ACC_DEBUG_ASSERT(core < coreSafeF_.size(),
                         "minSafeF: core %zu out of %zu", core,
                         coreSafeF_.size());
        f = std::min(f, coreSafeF_[core]);
    }
    return f;
}

double
VariationChip::minFrequencyForErrorRate(
    double perr, std::span<const std::size_t> cores) const
{
    const double z =
        CoreTimingModel::criticalZ(timingParams_.pathsPerCycle, perr);
    double f = 1e300;
    for (std::size_t core : cores) {
        ACC_DEBUG_ASSERT(core < ntvSigmaLn_.size(),
                         "minFrequencyForErrorRate: core %zu out of %zu",
                         core, ntvSigmaLn_.size());
        f = std::min(f, CoreTimingModel::frequencyForCriticalZ(
                            z, ntvDelayMean_[core], ntvSigmaLn_[core]));
    }
    return f;
}

ChipFactory::ChipFactory(const Technology &tech, Params params,
                         std::uint64_t seed)
    : tech_(&tech), params_(std::move(params)),
      geometry_(params_.geometry), seed_(seed)
{
    std::vector<Point> sites;
    const std::size_t n_cores = geometry_.numCores();
    sites.reserve(2 * n_cores + geometry_.numClusters());
    for (std::size_t c = 0; c < n_cores; ++c)
        sites.push_back(geometry_.corePosition(c));
    for (std::size_t c = 0; c < n_cores; ++c)
        sites.push_back(geometry_.privateMemPosition(c));
    for (std::size_t k = 0; k < geometry_.numClusters(); ++k)
        sites.push_back(geometry_.clusterMemPosition(k));
    sampler_ = std::make_unique<CorrelatedFieldSampler>(
        std::move(sites), params_.variation.phi);
}

VariationChip
ChipFactory::make(std::uint64_t chip_id) const
{
    ACC_SCOPED_TIMER("chip.manufacture");
    obs::StatsRegistry::global().counter("chip.manufactured").inc();
    util::Rng rng(seed_, chip_id);
    VariationRealization realization(*sampler_, params_.variation, rng);
    return VariationChip(*tech_, geometry_, params_.timing, params_.sram,
                         realization, chip_id, params_.privateMemBits,
                         params_.clusterMemBits);
}

std::vector<VariationChip>
ChipFactory::makeSample(std::size_t count) const
{
    // Chips are pure functions of (seed, id), so manufacture
    // parallelizes with bit-identical results at any thread count;
    // each iteration fills only its own slot and the final vector
    // is assembled in id order.
    std::vector<std::optional<VariationChip>> slots(count);
    util::parallelFor(0, count, [&](std::size_t i) {
        slots[i].emplace(make(static_cast<std::uint64_t>(i)));
    });
    std::vector<VariationChip> chips;
    chips.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        chips.push_back(std::move(*slots[i]));
    return chips;
}

} // namespace accordion::vartech
