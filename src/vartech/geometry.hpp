/**
 * @file
 * Floorplan geometry of the hypothetical 288-core NTV chip of the
 * paper's Table 2: 36 clusters in a 6x6 arrangement, 8 cores per
 * cluster (4x2) plus one shared cluster memory block. Positions are
 * normalized to a unit chip edge (the physical edge is ~20 mm) so
 * that the variation correlation range phi is expressed as a
 * fraction of the chip edge, as in VARIUS.
 */

#ifndef ACCORDION_VARTECH_GEOMETRY_HPP
#define ACCORDION_VARTECH_GEOMETRY_HPP

#include <cstddef>
#include <vector>

namespace accordion::vartech {

/** A 2D point in normalized chip coordinates ([0,1] x [0,1]). */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** Euclidean distance between two points. */
double distance(const Point &a, const Point &b);

/**
 * Chip geometry: cluster grid, cores per cluster, and the derived
 * site positions for every core and memory block.
 */
class ChipGeometry
{
  public:
    /** Shape parameters. */
    struct Params
    {
        std::size_t clustersX = 6; //!< cluster grid columns
        std::size_t clustersY = 6; //!< cluster grid rows
        std::size_t coresPerClusterX = 4; //!< core grid inside a cluster
        std::size_t coresPerClusterY = 2;
        double chipEdgeMm = 20.0; //!< physical edge (Table 2)
    };

    /** Construct the default Table 2 shape (6x6 clusters of 4x2). */
    ChipGeometry();

    explicit ChipGeometry(Params params);

    const Params &params() const { return params_; }

    /** Total cluster count. */
    std::size_t numClusters() const;

    /** Cores per cluster. */
    std::size_t coresPerCluster() const;

    /** Total core count (288 for the default shape). */
    std::size_t numCores() const;

    /** Cluster that owns a core. */
    std::size_t clusterOfCore(std::size_t core) const;

    /** Cores belonging to a cluster, in core-index order. */
    std::vector<std::size_t> coresOfCluster(std::size_t cluster) const;

    /**
     * First core index of a cluster. Cores of cluster k are the
     * contiguous range [firstCoreOfCluster(k),
     * firstCoreOfCluster(k) + coresPerCluster()) — the invariant the
     * batch cluster reductions in VariationChip stream over.
     */
    std::size_t firstCoreOfCluster(std::size_t cluster) const;

    /** Normalized position of a core's center. */
    Point corePosition(std::size_t core) const;

    /**
     * Normalized position of a core's private memory block
     * (adjacent to the core).
     */
    Point privateMemPosition(std::size_t core) const;

    /** Normalized position of a cluster's shared memory block. */
    Point clusterMemPosition(std::size_t cluster) const;

    /** Cluster grid coordinates (x, y) of a cluster index. */
    std::pair<std::size_t, std::size_t>
    clusterCoords(std::size_t cluster) const;

    /**
     * Manhattan hop distance between two clusters on the 2D torus
     * that connects clusters (Table 2's network).
     */
    std::size_t torusHops(std::size_t a, std::size_t b) const;

  private:
    Params params_;
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_GEOMETRY_HPP
