#include "sram.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace accordion::vartech {

SramBlockModel::SramBlockModel(const SramParams &params, std::size_t bits,
                               double vth_dev_volts, double leff_dev)
    : params_(params), bits_(bits)
{
    if (bits == 0)
        util::fatal("SramBlockModel: zero-capacity block");
    meanVmin_ = params_.vminBase + params_.kVth * vth_dev_volts +
        params_.kLeff * leff_dev;

    // The block is functional while the expected number of failing
    // cells stays within the redundancy budget.
    const double mbits = static_cast<double>(bits_) / (1024.0 * 1024.0);
    const double repairable =
        std::max(1.0, params_.redundancyPerSqrtMbit * std::sqrt(mbits));
    const double p_max = repairable / static_cast<double>(bits_);
    // p_cell(vdd) = Phi((mean - vdd)/sigma) <= p_max
    //   <=>  vdd >= mean - sigma * Phi^{-1}(p_max).
    vddMin_ = meanVmin_ - params_.sigmaCell * util::normalQuantile(p_max);
}

double
SramBlockModel::cellFailureProbability(double vdd) const
{
    return util::normalCdf((meanVmin_ - vdd) / params_.sigmaCell);
}

} // namespace accordion::vartech
