/**
 * @file
 * Technology model: drive current, delay, frequency, power, and
 * energy per operation as functions of (Vdd, Vth), spanning the
 * sub-, near-, and super-threshold regimes.
 *
 * The drive current uses the EKV all-region approximation with a
 * velocity-saturation exponent theta:
 *
 *   Ids = I0 * ( ln(1 + exp((Vdd - Vth) / (2 n phi_t))) )^(2 theta)
 *
 * which is smooth through Vth and is the same functional form the
 * VARIUS-NTV model family builds on (theta < 1 captures short-
 * channel velocity saturation at super-threshold while keeping a
 * physical ~95 mV/dec sub-threshold slope). Gate delay is Vdd / Ids
 * (up to a constant), so frequency is k_f * Ids / Vdd. The constant
 * k_f is calibrated so the nominal 11 nm corner of the paper's
 * Table 2 holds: f(VddNom = 0.55 V, VthNom = 0.33 V) = 1.0 GHz,
 * with f(1.0 V) coming out near 3.3 GHz — the paper's STV
 * equivalent.
 *
 * Power per core is
 *
 *   P = Ceff * Vdd^2 * f  +  Vdd * I_leak0 * exp((-Vth + dibl*Vdd)
 *                                                / (n_leak phi_t))
 *
 * calibrated so one core at the STV corner draws ~6.25 W (hence
 * N_STV = 16 cores fit the 100 W budget of Table 2) and so the
 * static share of power grows as Vdd drops toward Vth, as Section
 * 6.2 of the paper requires.
 */

#ifndef ACCORDION_VARTECH_TECHNOLOGY_HPP
#define ACCORDION_VARTECH_TECHNOLOGY_HPP

#include <string>

namespace accordion::vartech {

/**
 * Parameter set for one technology node plus the analytic device
 * models evaluated on it. Immutable after construction.
 */
class Technology
{
  public:
    /** Named parameters; see makeItrs11nm()/makeItrs22nm(). */
    struct Params
    {
        std::string name; //!< node label, e.g. "11nm"
        double vddNom; //!< nominal NTV supply [V] (Table 2: 0.55)
        double vthNom; //!< nominal threshold [V] (Table 2: 0.33)
        double fNom; //!< frequency at (vddNom, vthNom) [Hz]
        double vddStv; //!< conventional super-threshold supply [V]
        double thermalVoltage; //!< phi_t [V] (~0.026 at 300 K)
        double ekvN; //!< EKV slope factor n (~1.5, physical)
        double ekvTheta; //!< velocity-saturation exponent on Ids
        double leakN; //!< subthreshold-slope factor for leakage
        double dibl; //!< DIBL coefficient [V/V]
        double dynPowerStv; //!< per-core dynamic power at STV corner [W]
        double statPowerStv; //!< per-core static power at STV corner [W]
        double sigmaVthTotal; //!< total (sigma/mu) of Vth (0.15 @ 11nm)
        double sigmaLeffTotal; //!< total (sigma/mu) of Leff (0.075)
    };

    explicit Technology(Params params);

    /** ITRS-derived 11 nm node per the paper's Table 2. */
    static Technology makeItrs11nm();

    /** 22 nm node used for the Fig. 1c guardband comparison. */
    static Technology makeItrs22nm();

    const Params &params() const { return params_; }

    /** Node label. */
    const std::string &name() const { return params_.name; }

    /**
     * EKV drive-current shape factor (dimensionless):
     * (ln(1 + exp((vdd - vth)/(2 n phi_t))))^(2 theta).
     */
    double driveFactor(double vdd, double vth) const;

    /**
     * Gate/path delay relative to the nominal corner
     * (vddNom, vthNom); 1.0 at nominal, grows as vdd falls or vth
     * rises. Scales linearly with effective channel length deviation
     * via @p leff_dev (fractional, 0 = nominal).
     */
    double relativeDelay(double vdd, double vth,
                         double leff_dev = 0.0) const;

    /**
     * Maximum switching frequency of a nominal-critical-path core at
     * the given operating point [Hz].
     */
    double frequency(double vdd, double vth, double leff_dev = 0.0) const;

    /** frequency() at the node's nominal Vth. */
    double frequencyAtNominalVth(double vdd) const;

    /** The STV frequency (at vddStv, vthNom) [Hz]. */
    double fStv() const { return fStv_; }

    /** The NTV nominal frequency [Hz]. */
    double fNtv() const { return params_.fNom; }

    /**
     * Per-core dynamic power [W] at supply @p vdd and clock @p f.
     */
    double dynamicPower(double vdd, double f) const;

    /**
     * Per-core static (leakage) power [W]. Leakage rises when a
     * core's threshold is low (fast core) and falls when it is high:
     * pass the core's actual @p vth. @p leff_dev shortens/lengthens
     * the channel, scaling leakage inversely.
     */
    double staticPower(double vdd, double vth,
                       double leff_dev = 0.0) const;

    /** dynamicPower + staticPower at the core's own maximum f. */
    double totalPowerAtMaxF(double vdd, double vth) const;

    /**
     * Energy per operation [J] for a core running flat-out at
     * @p vdd: total power divided by (f * ops-per-cycle == f).
     * Reproduces the U-shape of Fig. 1a with the minimum in the
     * sub-threshold region.
     */
    double energyPerOp(double vdd) const;

    /**
     * Sensitivity of log-delay to Vth [1/V] at an operating point:
     * d(ln delay)/d(vth). Grows as Vdd approaches Vth, which is the
     * physical root of NTC's amplified vulnerability to variation.
     */
    double delayVthSensitivity(double vdd, double vth) const;

  private:
    Params params_;
    double freqConstant_; //!< k_f, calibrated at construction
    double ceff_; //!< effective switched capacitance [F]
    double ileak0_; //!< leakage pre-factor [A]
    double fStv_; //!< cached frequency at the STV corner
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_TECHNOLOGY_HPP
