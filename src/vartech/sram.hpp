/**
 * @file
 * SRAM low-voltage functionality model (the VARIUS-NTV memory-side
 * model). At near-threshold voltages SRAM cells begin to fail to
 * hold or flip state; each cell has a minimum functional voltage
 * drawn from a normal distribution whose mean tracks the block's
 * systematic (Vth, Leff) deviation and whose spread comes from local
 * mismatch. A block with column redundancy is functional at Vdd as
 * long as the per-cell failure probability stays below the level the
 * redundancy can repair, which defines the block's VddMIN.
 *
 * Per-cluster VddMIN (Fig. 5a) is the maximum VddMIN across the
 * cluster's memory blocks; the chip-wide NTV supply VddNTV is the
 * maximum per-cluster VddMIN.
 */

#ifndef ACCORDION_VARTECH_SRAM_HPP
#define ACCORDION_VARTECH_SRAM_HPP

#include <cstddef>

namespace accordion::vartech {

/** Knobs of the SRAM failure model (calibrated to Fig. 5a's range). */
struct SramParams
{
    /** Mean minimum functional voltage of a nominal cell [V]. */
    double vminBase = 0.375;
    /** Local-mismatch spread of per-cell vmin [V]. */
    double sigmaCell = 0.022;
    /** Shift of mean vmin per volt of systematic Vth deviation. */
    double kVth = 1.0;
    /** Shift of mean vmin per unit fractional Leff deviation [V]. */
    double kLeff = 0.12;
    /** Repairable failing cells per block, per sqrt(Mbit): column
     *  redundancy grows with the array's column count, i.e. with
     *  the square root of capacity, so larger blocks tolerate a
     *  lower failure *rate* and need a higher VddMIN. */
    double redundancyPerSqrtMbit = 24.0;
};

/**
 * One SRAM block (a core-private 64 KB array or a 2 MB cluster
 * array) placed on a variation-afflicted die.
 */
class SramBlockModel
{
  public:
    /**
     * @param params Model knobs.
     * @param bits Capacity in bits.
     * @param vth_dev_volts Systematic Vth deviation at the block's
     *        site, in volts (fraction x nominal Vth).
     * @param leff_dev Systematic fractional Leff deviation.
     */
    SramBlockModel(const SramParams &params, std::size_t bits,
                   double vth_dev_volts, double leff_dev);

    /** Per-cell failure probability at supply @p vdd. */
    double cellFailureProbability(double vdd) const;

    /**
     * Minimum supply at which the block stays functional given its
     * redundancy budget [V].
     */
    double vddMin() const { return vddMin_; }

    /** Mean per-cell minimum functional voltage [V]. */
    double meanCellVmin() const { return meanVmin_; }

    /** Capacity in bits. */
    std::size_t bits() const { return bits_; }

  private:
    SramParams params_;
    std::size_t bits_;
    double meanVmin_;
    double vddMin_;
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_SRAM_HPP
