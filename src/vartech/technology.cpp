#include "technology.hpp"

#include <cmath>

#include "util/log.hpp"

namespace accordion::vartech {

Technology::Technology(Params params) : params_(std::move(params))
{
    if (params_.vddNom <= params_.vthNom)
        util::fatal("Technology %s: vddNom (%g) must exceed vthNom (%g)",
                    params_.name.c_str(), params_.vddNom, params_.vthNom);

    // Calibrate the frequency constant so that f(vddNom, vthNom)
    // equals the nominal NTV frequency of Table 2.
    const double g_nom = driveFactor(params_.vddNom, params_.vthNom);
    freqConstant_ = params_.fNom * params_.vddNom / g_nom;

    // Calibrate power so the per-core STV corner matches the
    // requested dynamic/static split.
    const double f_stv = freqConstant_ *
        driveFactor(params_.vddStv, params_.vthNom) / params_.vddStv;
    ceff_ = params_.dynPowerStv /
        (params_.vddStv * params_.vddStv * f_stv);
    const double leak_exp = std::exp(
        (-params_.vthNom + params_.dibl * params_.vddStv) /
        (params_.leakN * params_.thermalVoltage));
    ileak0_ = params_.statPowerStv / (params_.vddStv * leak_exp);
    fStv_ = f_stv;
}

Technology
Technology::makeItrs11nm()
{
    Params p;
    p.name = "11nm";
    p.vddNom = 0.55;
    p.vthNom = 0.33;
    p.fNom = 1.0e9;
    p.vddStv = 1.0;
    p.thermalVoltage = 0.026;
    p.ekvN = 1.5;
    // Fitted so that f(1.0 V)/f(0.55 V) ~ 3.3 (Table 2's STV
    // equivalence: 0.55 V / 1 GHz <-> 1 V / 3.3 GHz).
    p.ekvTheta = 0.82;
    p.leakN = 1.54; // n_leak * phi_t = 0.040 V (~92 mV/dec slope)
    p.dibl = 0.10;
    // 6.25 W per core at STV => N_STV = 16 in the 100 W budget.
    p.dynPowerStv = 5.0;
    p.statPowerStv = 1.25;
    p.sigmaVthTotal = 0.15; // Table 2
    p.sigmaLeffTotal = 0.075; // Table 2
    return Technology(std::move(p));
}

Technology
Technology::makeItrs22nm()
{
    Params p;
    p.name = "22nm";
    p.vddNom = 0.60;
    p.vthNom = 0.32;
    p.fNom = 1.1e9;
    p.vddStv = 1.0;
    p.thermalVoltage = 0.026;
    p.ekvN = 1.5;
    p.ekvTheta = 0.85;
    p.leakN = 1.45;
    p.dibl = 0.08;
    p.dynPowerStv = 4.5;
    p.statPowerStv = 0.5;
    // Variation is milder one generation earlier.
    p.sigmaVthTotal = 0.09;
    p.sigmaLeffTotal = 0.05;
    return Technology(std::move(p));
}

double
Technology::driveFactor(double vdd, double vth) const
{
    const double denom = 2.0 * params_.ekvN * params_.thermalVoltage;
    const double u = (vdd - vth) / denom;
    // log1p(exp(u)) evaluated without overflow for large u.
    const double lse = u > 30.0 ? u : std::log1p(std::exp(u));
    return std::pow(lse, 2.0 * params_.ekvTheta);
}

double
Technology::relativeDelay(double vdd, double vth, double leff_dev) const
{
    const double g = driveFactor(vdd, vth);
    const double g_nom = driveFactor(params_.vddNom, params_.vthNom);
    // delay ~ Vdd / Ids; Leff deviation scales delay linearly.
    return (vdd / g) / (params_.vddNom / g_nom) * (1.0 + leff_dev);
}

double
Technology::frequency(double vdd, double vth, double leff_dev) const
{
    return freqConstant_ * driveFactor(vdd, vth) / vdd /
        (1.0 + leff_dev);
}

double
Technology::frequencyAtNominalVth(double vdd) const
{
    return frequency(vdd, params_.vthNom);
}

double
Technology::dynamicPower(double vdd, double f) const
{
    return ceff_ * vdd * vdd * f;
}

double
Technology::staticPower(double vdd, double vth, double leff_dev) const
{
    const double exponent = (-vth + params_.dibl * vdd) /
        (params_.leakN * params_.thermalVoltage);
    // Shorter channels (negative deviation) leak more.
    return vdd * ileak0_ * std::exp(exponent) / (1.0 + 2.0 * leff_dev);
}

double
Technology::totalPowerAtMaxF(double vdd, double vth) const
{
    return dynamicPower(vdd, frequency(vdd, vth)) +
        staticPower(vdd, vth);
}

double
Technology::energyPerOp(double vdd) const
{
    const double f = frequencyAtNominalVth(vdd);
    if (f <= 0.0)
        util::panic("energyPerOp: non-positive frequency at Vdd=%g", vdd);
    return (dynamicPower(vdd, f) + staticPower(vdd, params_.vthNom)) / f;
}

double
Technology::delayVthSensitivity(double vdd, double vth) const
{
    const double denom = 2.0 * params_.ekvN * params_.thermalVoltage;
    const double u = (vdd - vth) / denom;
    const double sigmoid = 1.0 / (1.0 + std::exp(-u));
    const double lse = u > 30.0 ? u : std::log1p(std::exp(u));
    // d(ln delay)/d(vth) = -d(ln g)/d(vth)
    //                    = 2 theta sigmoid / (denom lse)
    return 2.0 * params_.ekvTheta * sigmoid / (denom * lse);
}

} // namespace accordion::vartech
