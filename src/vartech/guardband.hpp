/**
 * @file
 * Worst-case timing guardband vs. Vdd (the paper's Fig. 1c). The
 * guardband is the extra clock-period margin, relative to the
 * nominal path delay, needed to cover a +k-sigma excursion of the
 * total (systematic + random) Vth and Leff variation. It explodes
 * as Vdd approaches Vth — the reason the paper argues worst-case
 * guardbanding is untenable at NTV — and is larger at 11 nm than at
 * 22 nm because variation grows each generation.
 */

#ifndef ACCORDION_VARTECH_GUARDBAND_HPP
#define ACCORDION_VARTECH_GUARDBAND_HPP

#include "technology.hpp"

namespace accordion::vartech {

/**
 * Timing guardband in percent at supply @p vdd for technology
 * @p tech, covering a +@p k_sigma excursion of total Vth and Leff
 * variation:
 *
 *   GB(vdd) = 100 * (delay(vdd, vth + k sigma_vth,
 *                          +k sigma_leff) / delay(vdd, vth) - 1)
 */
double timingGuardbandPercent(const Technology &tech, double vdd,
                              double k_sigma = 3.0);

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_GUARDBAND_HPP
