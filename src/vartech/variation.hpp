/**
 * @file
 * Process-variation modeling following the VARIUS / VARIUS-NTV
 * methodology: each transistor parameter (Vth, Leff) deviates from
 * its design value by the sum of a *systematic* component — a
 * Gaussian random field over the die with spherical spatial
 * correlation of range phi — and a *random* (white) component.
 * Total variation is split equally in variance between the two, and
 * the Leff field is correlated with the Vth field.
 */

#ifndef ACCORDION_VARTECH_VARIATION_HPP
#define ACCORDION_VARTECH_VARIATION_HPP

#include <cstdint>
#include <vector>

#include "geometry.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace accordion::vartech {

/** Knobs of the variation model (defaults per the paper's Table 2). */
struct VariationParams
{
    double phi = 0.1; //!< correlation range, fraction of chip edge
    double sigmaVthTotal = 0.15; //!< total (sigma/mu) of Vth
    double sigmaLeffTotal = 0.075; //!< total (sigma/mu) of Leff
    double systematicFraction = 0.40; //!< variance share of systematic
    double vthLeffCorrelation = 0.9; //!< corr(Vth_sys, Leff_sys)
};

/**
 * Spherical correlation: rho(r) = 1 - 1.5 (r/phi) + 0.5 (r/phi)^3
 * for r < phi, else 0. The standard VARIUS choice.
 */
double sphericalCorrelation(double r, double phi);

/**
 * Samples correlated zero-mean unit-variance Gaussian fields at a
 * fixed set of die positions. The correlation matrix is factorized
 * once (Cholesky); each sample() is then a cheap matrix-vector
 * product, which makes 100-chip Monte Carlo batches fast.
 */
class CorrelatedFieldSampler
{
  public:
    /**
     * Reusable scratch for the i.i.d. draw behind each field
     * sample. One workspace per realization (or per thread) turns
     * the three per-draw allocations of the old API into zero — the
     * Monte Carlo loop manufactures thousands of chips.
     */
    struct Workspace
    {
        std::vector<double> iid;
    };

    /**
     * @param positions Sites at which to sample the field.
     * @param phi Correlation range (fraction of chip edge).
     */
    CorrelatedFieldSampler(std::vector<Point> positions, double phi);

    /** Number of sites. */
    std::size_t size() const { return positions_.size(); }

    /**
     * Draw one field realization into @p out (resized to size()): a
     * vector of standard-normal values with the spherical spatial
     * correlation structure.
     */
    void sampleInto(util::Rng &rng, Workspace &ws,
                    std::vector<double> &out) const;

    /**
     * Draw a second field correlated with a previously drawn one:
     * out = rho * base + sqrt(1-rho^2) * fresh, where `fresh` has
     * the same spatial structure. Used to tie Leff to Vth. @p base
     * and @p out must not alias.
     */
    void sampleCorrelatedWithInto(const std::vector<double> &base,
                                  double rho, util::Rng &rng,
                                  Workspace &ws,
                                  std::vector<double> &out) const;

    /** Allocating convenience wrapper over sampleInto(). */
    std::vector<double> sample(util::Rng &rng) const;

    /** Allocating wrapper over sampleCorrelatedWithInto(). */
    std::vector<double> sampleCorrelatedWith(
        const std::vector<double> &base, double rho,
        util::Rng &rng) const;

    /** Sites the field is sampled at. */
    const std::vector<Point> &positions() const { return positions_; }

    /** Packed Cholesky factor (exposed for diagnostics/tests). */
    const util::TriangularFactor &factor() const { return cholesky_; }

  private:
    std::vector<Point> positions_;
    util::TriangularFactor cholesky_;
};

/**
 * Per-structure variation realization for a whole die: systematic
 * Vth and Leff deviations (in fractions of the nominal value) for
 * every site handed to the constructor.
 */
class VariationRealization
{
  public:
    /**
     * Generate a realization.
     *
     * @param sampler Field sampler over the die sites.
     * @param params Variation knobs.
     * @param rng Random stream (one per chip).
     */
    VariationRealization(const CorrelatedFieldSampler &sampler,
                         const VariationParams &params, util::Rng &rng);

    /** Systematic Vth deviation at site i, fraction of nominal Vth. */
    double vthDev(std::size_t i) const { return vthDev_.at(i); }

    /** Systematic Leff deviation at site i, fraction of nominal. */
    double leffDev(std::size_t i) const { return leffDev_.at(i); }

    /** Standard deviation of the *random* Vth component (fraction). */
    double sigmaVthRandom() const { return sigmaVthRandom_; }

    /**
     * Per-site scale on the path-level random component. Different
     * cores are dominated by critical structures of different logic
     * depth, so the within-core delay spread differs from core to
     * core; this is what makes Speculative frequency gains span a
     * wide band across the chip (Section 6.3's 8-41%).
     */
    double pathSigmaScale(std::size_t i) const
    {
        return pathSigmaScale_.at(i);
    }

    /** Standard deviation of the *random* Leff component (fraction). */
    double sigmaLeffRandom() const { return sigmaLeffRandom_; }

    std::size_t size() const { return vthDev_.size(); }

  private:
    std::vector<double> vthDev_;
    std::vector<double> leffDev_;
    std::vector<double> pathSigmaScale_;
    double sigmaVthRandom_;
    double sigmaLeffRandom_;
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_VARIATION_HPP
