/**
 * @file
 * A complete variation-afflicted die: per-core timing models,
 * per-memory-block VddMIN, per-cluster VddMIN and safe frequencies,
 * and the chip-wide near-threshold supply VddNTV (the maximum
 * per-cluster VddMIN, exactly as Section 6.1 of the paper
 * designates it). A ChipFactory shares the expensive Cholesky
 * factorization across the 100-chip Monte Carlo sample.
 */

#ifndef ACCORDION_VARTECH_VARIATION_CHIP_HPP
#define ACCORDION_VARTECH_VARIATION_CHIP_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geometry.hpp"
#include "sram.hpp"
#include "technology.hpp"
#include "timing.hpp"
#include "variation.hpp"

namespace accordion::vartech {

/**
 * One manufactured chip instance with its full variation
 * realization and derived reliability quantities.
 *
 * Hot per-core state lives in contiguous parallel arrays
 * (structure-of-arrays): threshold voltages, Leff deviations, the
 * hoisted NTV delay statistics, and the per-core safe frequencies.
 * Batch queries (errorRates, safeFrequencies,
 * frequenciesForErrorRate, coreStaticPowers, clusterSafeFs) stream
 * over those arrays with per-batch invariants hoisted and branch-free
 * inner loops; the scalar accessors are thin views over the same
 * arrays and double as the bit-identity oracle — for every core,
 * batch output == scalar output, bit for bit.
 */
class VariationChip
{
  public:
    /** Built by ChipFactory. */
    VariationChip(const Technology &tech, const ChipGeometry &geometry,
                  const TimingModelParams &timing_params,
                  const SramParams &sram_params,
                  const VariationRealization &realization,
                  std::uint64_t chip_id,
                  std::size_t private_mem_bits = 64ull * 1024 * 8,
                  std::size_t cluster_mem_bits = 2ull * 1024 * 1024 * 8);

    /** Manufacturing sample index. */
    std::uint64_t chipId() const { return chipId_; }

    const ChipGeometry &geometry() const { return geometry_; }
    const Technology &technology() const { return *tech_; }

    /** Systematic Vth deviation of a core (fraction of nominal). */
    double coreVthDev(std::size_t core) const;

    /** Systematic Leff deviation of a core (fraction). */
    double coreLeffDev(std::size_t core) const;

    /**
     * Timing model of a core, materialized on demand from the
     * structure-of-arrays state (bit-identical to the model the
     * chip was built from).
     */
    CoreTimingModel coreTiming(std::size_t core) const;

    /** VddMIN of a core's private memory block [V]. */
    double privateMemVddMin(std::size_t core) const;

    /** VddMIN of a cluster's shared memory block [V]. */
    double clusterMemVddMin(std::size_t cluster) const;

    /**
     * Per-cluster VddMIN: the maximum across the cluster's memory
     * blocks (Fig. 5a's histogram variable) [V].
     */
    double clusterVddMin(std::size_t cluster) const;

    /** Chip-wide NTV supply: max per-cluster VddMIN [V]. */
    double vddNtv() const { return vddNtv_; }

    /** Safe frequency of a core at the chip's VddNTV [Hz]. */
    double coreSafeF(std::size_t core) const;

    /**
     * Safe frequency of a cluster at VddNTV: the slowest core in
     * the cluster sets the domain clock (Section 6.1) [Hz].
     */
    double clusterSafeF(std::size_t cluster) const;

    /** Index of the slowest (most error-prone) core of a cluster. */
    std::size_t slowestCoreOfCluster(std::size_t cluster) const;

    /** Safe frequency of a core at an arbitrary supply [Hz]. */
    double coreSafeFAt(std::size_t core, double vdd) const;

    /** Per-cycle error rate of a core at (VddNTV, f). */
    double coreErrorRate(std::size_t core, double f) const;

    /**
     * Frequency of a core at VddNTV for a target per-cycle error
     * rate (Speculative operation) [Hz].
     */
    double coreFrequencyForErrorRate(std::size_t core, double perr) const;

    /** Core static power at a supply [W] (uses the core's Vth). */
    double coreStaticPower(std::size_t core, double vdd) const;

    /** Number of cores. */
    std::size_t numCores() const { return coreVth_.size(); }

    /** Number of clusters. */
    std::size_t numClusters() const { return geometry_.numClusters(); }

    // ------------------------------------------------------------------
    // Batch queries. Compute-into variants fill out.size() entries for
    // cores (or clusters) [first, first + out.size()); span views hand
    // whole-chip arrays to callers (Monte Carlo metric fan-out, CC
    // ranking scans) without any per-core calls. All bit-identical to
    // the scalar accessors above.
    // ------------------------------------------------------------------

    /** Batch coreErrorRate: per-cycle error rate at (VddNTV, f). */
    void errorRates(double f, std::span<double> out,
                    std::size_t first = 0) const;

    /** Batch coreSafeFAt: safe frequency at an arbitrary supply. */
    void safeFrequencies(double vdd, std::span<double> out,
                         std::size_t first = 0) const;

    /** Batch coreFrequencyForErrorRate at VddNTV (z* hoisted). */
    void frequenciesForErrorRate(double perr, std::span<double> out,
                                 std::size_t first = 0) const;

    /** Batch coreStaticPower over a contiguous core range. */
    void coreStaticPowers(double vdd, std::span<double> out,
                          std::size_t first = 0) const;

    /** Gathered coreStaticPower over an arbitrary core index list. */
    void coreStaticPowers(double vdd, std::span<const std::size_t> cores,
                          std::span<double> out) const;

    /** Batch clusterSafeF: the cluster-min reduction over coreSafeFs. */
    void clusterSafeFs(std::span<double> out, std::size_t first = 0) const;

    /** Slowest selected core's safe f (min over the gathered set). */
    double minSafeF(std::span<const std::size_t> cores) const;

    /** Slowest selected core's speculative f at @p perr (z* hoisted). */
    double minFrequencyForErrorRate(double perr,
                                    std::span<const std::size_t> cores)
        const;

    /** Whole-chip view: safe f of every core at VddNTV [Hz]. */
    std::span<const double> coreSafeFs() const { return coreSafeF_; }

    /** Whole-chip view: safe f of every cluster at VddNTV [Hz]. */
    std::span<const double> clusterSafeFs() const { return clusterSafeF_; }

    /** Whole-chip view: per-cluster VddMIN [V]. */
    std::span<const double> clusterVddMins() const { return clusterVddMin_; }

  private:
    const Technology *tech_;
    ChipGeometry geometry_;
    std::uint64_t chipId_;
    TimingModelParams timingParams_;
    // Structure-of-arrays core state: parallel arrays indexed by core.
    std::vector<double> coreVthDev_;
    std::vector<double> coreLeffDev_;
    std::vector<double> coreVth_; //!< actual threshold [V]
    std::vector<double> corePathSigmaVolts_; //!< path random-Vth sigma [V]
    std::vector<double> privateMemVddMin_;
    std::vector<double> clusterMemVddMin_;
    std::vector<double> clusterVddMin_;
    double vddNtv_;
    /** Per-core NTV delay statistics (mean delay, its log, log-delay
     *  sigma), hoisted at construction so every later error-rate /
     *  speculative-frequency query at VddNTV is pure CDF math. */
    std::vector<double> ntvDelayMean_;
    std::vector<double> ntvLogDelayMean_;
    std::vector<double> ntvSigmaLn_;
    /** Safe f of every core at VddNTV, computed at construction so
     *  concurrent readers never mutate chip state. */
    std::vector<double> coreSafeF_;
    /** Per-cluster min of coreSafeF_ and its argmin, precomputed so
     *  cluster ranking and CC selection are array reads. */
    std::vector<double> clusterSafeF_;
    std::vector<std::size_t> slowestCore_;
};

/**
 * Builds VariationChip instances; owns the field sampler so the
 * Cholesky factorization is shared by all chips of a sample.
 */
class ChipFactory
{
  public:
    /** Model knobs for a batch of chips. */
    struct Params
    {
        VariationParams variation;
        TimingModelParams timing;
        SramParams sram;
        ChipGeometry::Params geometry;
        std::size_t privateMemBits = 64ull * 1024 * 8; //!< 64 KB
        std::size_t clusterMemBits = 2ull * 1024 * 1024 * 8; //!< 2 MB
    };

    ChipFactory(const Technology &tech, Params params,
                std::uint64_t seed);

    /** Manufacture chip number @p chip_id (deterministic in id). */
    VariationChip make(std::uint64_t chip_id) const;

    /** Manufacture a batch of @p count chips (ids 0..count-1). */
    std::vector<VariationChip> makeSample(std::size_t count) const;

    const Params &params() const { return params_; }
    const ChipGeometry &geometry() const { return geometry_; }
    const Technology &technology() const { return *tech_; }

  private:
    const Technology *tech_;
    Params params_;
    ChipGeometry geometry_;
    std::uint64_t seed_;
    std::unique_ptr<CorrelatedFieldSampler> sampler_;
};

} // namespace accordion::vartech

#endif // ACCORDION_VARTECH_VARIATION_CHIP_HPP
