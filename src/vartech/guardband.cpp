#include "guardband.hpp"

namespace accordion::vartech {

double
timingGuardbandPercent(const Technology &tech, double vdd, double k_sigma)
{
    const auto &p = tech.params();
    const double vth_worst =
        p.vthNom * (1.0 + k_sigma * p.sigmaVthTotal);
    const double leff_worst = k_sigma * p.sigmaLeffTotal;
    const double d_nom = tech.relativeDelay(vdd, p.vthNom, 0.0);
    const double d_worst = tech.relativeDelay(vdd, vth_worst, leff_worst);
    return 100.0 * (d_worst / d_nom - 1.0);
}

} // namespace accordion::vartech
