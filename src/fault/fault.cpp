#include "fault.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "util/log.hpp"

namespace accordion::fault {

std::string
errorModeName(ErrorMode mode)
{
    switch (mode) {
      case ErrorMode::None: return "none";
      case ErrorMode::Drop: return "drop";
      case ErrorMode::StuckAt1All: return "stuck-at-1 all bits";
      case ErrorMode::StuckAt0All: return "stuck-at-0 all bits";
      case ErrorMode::StuckAt1High: return "stuck-at-1 high bits";
      case ErrorMode::StuckAt0High: return "stuck-at-0 high bits";
      case ErrorMode::StuckAt1Low: return "stuck-at-1 low bits";
      case ErrorMode::StuckAt0Low: return "stuck-at-0 low bits";
      case ErrorMode::RandomFlip: return "random bit flips";
      case ErrorMode::Invert: return "all bits inverted";
      case ErrorMode::InvertDecision: return "decision inverted";
    }
    util::panic("errorModeName: unknown mode %d", static_cast<int>(mode));
}

const std::vector<ErrorMode> &
corruptionModes()
{
    static const std::vector<ErrorMode> modes = {
        ErrorMode::StuckAt1All,  ErrorMode::StuckAt0All,
        ErrorMode::StuckAt1High, ErrorMode::StuckAt0High,
        ErrorMode::StuckAt1Low,  ErrorMode::StuckAt0Low,
        ErrorMode::RandomFlip,   ErrorMode::Invert,
    };
    return modes;
}

FaultPlan::FaultPlan(ErrorMode mode, double fraction)
    : mode_(mode), fraction_(fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        util::fatal("FaultPlan: fraction %g not in [0,1]", fraction);
}

std::size_t
FaultPlan::quota(std::size_t k) const
{
    // floor(k * fraction), nudged upward by a few ulps first: when
    // k * fraction should be an exact integer but rounds just
    // below it (0.7 * 10 = 6.999...9), the unnudged floor loses a
    // whole infection. The nudge is relative, so genuinely
    // non-integral products (off by far more than a few ulps) are
    // unaffected.
    const double x = static_cast<double>(k) * fraction_;
    const double nudged =
        x * (1.0 + 8.0 * std::numeric_limits<double>::epsilon());
    return static_cast<std::size_t>(std::floor(nudged));
}

bool
FaultPlan::infected(std::size_t thread, std::size_t num_threads) const
{
    if (none())
        return false;
    if (thread >= num_threads)
        util::panic("FaultPlan::infected: thread %zu of %zu", thread,
                    num_threads);
    // Uniform spread across the index space: thread i is infected
    // when the cumulative quota crosses an integer at i+1. The
    // quotas telescope, so the number of infected indices in
    // [0, n) is exactly quota(n) == infectedCount(n) for every
    // fraction.
    return quota(thread + 1) > quota(thread);
}

std::size_t
FaultPlan::infectedCount(std::size_t num_threads) const
{
    if (none())
        return 0;
    return quota(num_threads);
}

namespace {

std::uint64_t
corruptBits(std::uint64_t bits, ErrorMode mode, util::Rng &rng)
{
    constexpr std::uint64_t high = 0xffffffff00000000ULL;
    constexpr std::uint64_t low = 0x00000000ffffffffULL;
    switch (mode) {
      case ErrorMode::StuckAt1All:
        return ~0ULL;
      case ErrorMode::StuckAt0All:
        return 0ULL;
      case ErrorMode::StuckAt1High:
        return bits | high;
      case ErrorMode::StuckAt0High:
        return bits & ~high;
      case ErrorMode::StuckAt1Low:
        return bits | low;
      case ErrorMode::StuckAt0Low:
        return bits & ~low;
      case ErrorMode::RandomFlip: {
        // Flip a handful of uniformly chosen bits.
        std::uint64_t out = bits;
        const std::uint64_t flips = 1 + rng.uniformInt(8);
        for (std::uint64_t i = 0; i < flips; ++i)
            out ^= 1ULL << rng.uniformInt(64);
        return out;
      }
      case ErrorMode::Invert:
        return ~bits;
      default:
        return bits;
    }
}

} // namespace

double
corruptDouble(double value, ErrorMode mode, util::Rng &rng)
{
    switch (mode) {
      case ErrorMode::None:
      case ErrorMode::Drop:
      case ErrorMode::InvertDecision:
        return value;
      default:
        break;
    }
    const auto bits = std::bit_cast<std::uint64_t>(value);
    return std::bit_cast<double>(corruptBits(bits, mode, rng));
}

std::int64_t
corruptInt(std::int64_t value, ErrorMode mode, util::Rng &rng)
{
    switch (mode) {
      case ErrorMode::None:
      case ErrorMode::Drop:
      case ErrorMode::InvertDecision:
        return value;
      default:
        break;
    }
    const auto bits = static_cast<std::uint64_t>(value);
    return static_cast<std::int64_t>(corruptBits(bits, mode, rng));
}

} // namespace accordion::fault
