#include "fault.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "util/log.hpp"

namespace accordion::fault {

std::string
errorModeName(ErrorMode mode)
{
    switch (mode) {
      case ErrorMode::None: return "none";
      case ErrorMode::Drop: return "drop";
      case ErrorMode::StuckAt1All: return "stuck-at-1 all bits";
      case ErrorMode::StuckAt0All: return "stuck-at-0 all bits";
      case ErrorMode::StuckAt1High: return "stuck-at-1 high bits";
      case ErrorMode::StuckAt0High: return "stuck-at-0 high bits";
      case ErrorMode::StuckAt1Low: return "stuck-at-1 low bits";
      case ErrorMode::StuckAt0Low: return "stuck-at-0 low bits";
      case ErrorMode::RandomFlip: return "random bit flips";
      case ErrorMode::Invert: return "all bits inverted";
      case ErrorMode::InvertDecision: return "decision inverted";
    }
    util::panic("errorModeName: unknown mode %d", static_cast<int>(mode));
}

const std::vector<ErrorMode> &
corruptionModes()
{
    static const std::vector<ErrorMode> modes = {
        ErrorMode::StuckAt1All,  ErrorMode::StuckAt0All,
        ErrorMode::StuckAt1High, ErrorMode::StuckAt0High,
        ErrorMode::StuckAt1Low,  ErrorMode::StuckAt0Low,
        ErrorMode::RandomFlip,   ErrorMode::Invert,
    };
    return modes;
}

FaultPlan::FaultPlan(ErrorMode mode, double fraction)
    : mode_(mode), fraction_(fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        util::fatal("FaultPlan: fraction %g not in [0,1]", fraction);
}

bool
FaultPlan::infected(std::size_t thread, std::size_t num_threads) const
{
    if (none())
        return false;
    if (thread >= num_threads)
        util::panic("FaultPlan::infected: thread %zu of %zu", thread,
                    num_threads);
    // Uniform spread across the index space: thread i is infected
    // when the cumulative quota crosses an integer at i+1.
    const double before =
        std::floor(static_cast<double>(thread) * fraction_);
    const double after =
        std::floor(static_cast<double>(thread + 1) * fraction_);
    return after > before;
}

std::size_t
FaultPlan::infectedCount(std::size_t num_threads) const
{
    if (none())
        return 0;
    return static_cast<std::size_t>(
        std::floor(static_cast<double>(num_threads) * fraction_));
}

namespace {

std::uint64_t
corruptBits(std::uint64_t bits, ErrorMode mode, util::Rng &rng)
{
    constexpr std::uint64_t high = 0xffffffff00000000ULL;
    constexpr std::uint64_t low = 0x00000000ffffffffULL;
    switch (mode) {
      case ErrorMode::StuckAt1All:
        return ~0ULL;
      case ErrorMode::StuckAt0All:
        return 0ULL;
      case ErrorMode::StuckAt1High:
        return bits | high;
      case ErrorMode::StuckAt0High:
        return bits & ~high;
      case ErrorMode::StuckAt1Low:
        return bits | low;
      case ErrorMode::StuckAt0Low:
        return bits & ~low;
      case ErrorMode::RandomFlip: {
        // Flip a handful of uniformly chosen bits.
        std::uint64_t out = bits;
        const std::uint64_t flips = 1 + rng.uniformInt(8);
        for (std::uint64_t i = 0; i < flips; ++i)
            out ^= 1ULL << rng.uniformInt(64);
        return out;
      }
      case ErrorMode::Invert:
        return ~bits;
      default:
        return bits;
    }
}

} // namespace

double
corruptDouble(double value, ErrorMode mode, util::Rng &rng)
{
    switch (mode) {
      case ErrorMode::None:
      case ErrorMode::Drop:
      case ErrorMode::InvertDecision:
        return value;
      default:
        break;
    }
    const auto bits = std::bit_cast<std::uint64_t>(value);
    return std::bit_cast<double>(corruptBits(bits, mode, rng));
}

std::int64_t
corruptInt(std::int64_t value, ErrorMode mode, util::Rng &rng)
{
    switch (mode) {
      case ErrorMode::None:
      case ErrorMode::Drop:
      case ErrorMode::InvertDecision:
        return value;
      default:
        break;
    }
    const auto bits = static_cast<std::uint64_t>(value);
    return static_cast<std::int64_t>(corruptBits(bits, mode, rng));
}

} // namespace accordion::fault
