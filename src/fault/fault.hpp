/**
 * @file
 * Fault-injection plans for RMS kernels (Sections 6.2-6.3 of the
 * paper). The paper's close-to-worst-case error manifestation is
 * *Drop*: a uniformly chosen fraction of the parallel tasks never
 * contributes to computation (Drop 1/4, Drop 1/2). For the error-
 * model validation of Section 6.2, per-thread end results can
 * instead be corrupted bit-wise: stuck-at-1/0 on all / high-order /
 * low-order bits, random flips, or inversion.
 */

#ifndef ACCORDION_FAULT_FAULT_HPP
#define ACCORDION_FAULT_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace accordion::fault {

/** How an infected thread's contribution manifests. */
enum class ErrorMode
{
    None, //!< fault-free execution
    Drop, //!< infected threads contribute nothing (paper's default)
    StuckAt1All, //!< end result bits all stuck at 1
    StuckAt0All, //!< end result bits all stuck at 0
    StuckAt1High, //!< high-order half stuck at 1
    StuckAt0High, //!< high-order half stuck at 0
    StuckAt1Low, //!< low-order half stuck at 1
    StuckAt0Low, //!< low-order half stuck at 0
    RandomFlip, //!< random bit flips in the end result
    Invert, //!< all bits inverted
    InvertDecision, //!< application decision logic inverted (canneal)
};

/** Human-readable name of an error mode. */
std::string errorModeName(ErrorMode mode);

/** All corruption modes of the Section 6.2 validation sweep. */
const std::vector<ErrorMode> &corruptionModes();

/**
 * A deterministic fault plan: which threads are infected and how
 * their contribution is altered.
 */
class FaultPlan
{
  public:
    /** Fault-free plan. */
    FaultPlan() = default;

    /**
     * Plan infecting a uniform @p fraction of threads with
     * @p mode. Threads are infected uniformly across the index
     * space exactly as the paper drops tasks.
     */
    FaultPlan(ErrorMode mode, double fraction);

    /** The paper's Drop 1/4. */
    static FaultPlan dropQuarter() { return {ErrorMode::Drop, 0.25}; }

    /** The paper's Drop 1/2. */
    static FaultPlan dropHalf() { return {ErrorMode::Drop, 0.5}; }

    /** Is thread @p thread of @p num_threads infected? */
    bool infected(std::size_t thread, std::size_t num_threads) const;

    /** Number of infected threads out of @p num_threads. */
    std::size_t infectedCount(std::size_t num_threads) const;

    ErrorMode mode() const { return mode_; }
    double fraction() const { return fraction_; }

    /** True when the plan injects no faults at all. */
    bool
    none() const
    {
        return mode_ == ErrorMode::None || fraction_ <= 0.0;
    }

    /** True when infected threads should be dropped outright. */
    bool
    drops() const
    {
        return mode_ == ErrorMode::Drop;
    }

  private:
    /** Cumulative infection quota after the first @p k threads. */
    std::size_t quota(std::size_t k) const;

    ErrorMode mode_ = ErrorMode::None;
    double fraction_ = 0.0;
};

/**
 * Corrupt a double-precision end result according to @p mode,
 * operating on the IEEE-754 bit pattern. NaN/Inf outcomes are
 * passed through — the application-side quality metric decides how
 * bad they are, exactly as a real bit error would surface.
 * ErrorMode::Drop/None/InvertDecision leave the value untouched
 * (they are handled at a different level).
 */
double corruptDouble(double value, ErrorMode mode, util::Rng &rng);

/**
 * Corrupt an integer end result according to @p mode.
 */
std::int64_t corruptInt(std::int64_t value, ErrorMode mode,
                        util::Rng &rng);

} // namespace accordion::fault

#endif // ACCORDION_FAULT_FAULT_HPP
