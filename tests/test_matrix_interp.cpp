/**
 * @file
 * Tests of the dense-matrix/Cholesky helpers and piecewise-linear
 * interpolation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/interp.hpp"
#include "util/matrix.hpp"

using namespace accordion::util;

TEST(Matrix, IdentityMultiply)
{
    const Matrix id = Matrix::identity(4);
    const std::vector<double> v = {1, 2, 3, 4};
    EXPECT_EQ(id.multiply(v), v);
}

TEST(Matrix, MultiplyKnown)
{
    Matrix m(2, 3);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(0, 2) = 3;
    m.at(1, 0) = 4;
    m.at(1, 1) = 5;
    m.at(1, 2) = 6;
    const auto out = m.multiply({1, 1, 1});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Cholesky, ReconstructsInput)
{
    // A symmetric positive-definite matrix.
    Matrix a(3, 3);
    const double vals[3][3] = {
        {4, 2, 1}, {2, 5, 3}, {1, 3, 6}};
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = vals[i][j];
    const Matrix l = choleskyFactor(a);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < 3; ++k)
                sum += l.at(i, k) * l.at(j, k);
            EXPECT_NEAR(sum, vals[i][j], 1e-9)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST(Cholesky, LowerTriangular)
{
    Matrix a = Matrix::identity(4);
    const Matrix l = choleskyFactor(a);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i + 1; j < 4; ++j)
            EXPECT_DOUBLE_EQ(l.at(i, j), 0.0);
}

TEST(Cholesky, HandlesSemiDefinite)
{
    // Rank-1 PSD matrix (all-ones correlation).
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = 1.0;
    const Matrix l = choleskyFactor(a);
    double sum = 0.0;
    for (std::size_t k = 0; k < 3; ++k)
        sum += l.at(2, k) * l.at(1, k);
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(PiecewiseLinear, InterpolatesAndClamps)
{
    PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 10.0, 30.0});
    EXPECT_DOUBLE_EQ(f(0.5), 5.0);
    EXPECT_DOUBLE_EQ(f(2.0), 20.0);
    EXPECT_DOUBLE_EQ(f(-1.0), 0.0); // clamp left
    EXPECT_DOUBLE_EQ(f(9.0), 30.0); // clamp right
    EXPECT_DOUBLE_EQ(f(1.0), 10.0); // knot hit
}

TEST(PiecewiseLinear, SingleKnotIsConstant)
{
    PiecewiseLinear f({2.0}, {7.0});
    EXPECT_DOUBLE_EQ(f(-100.0), 7.0);
    EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinear, InverseOnMonotoneCurve)
{
    PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
    EXPECT_NEAR(f.inverse(0.5), 0.5, 1e-9);
    EXPECT_NEAR(f.inverse(2.5), 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(f.inverse(-1.0), 0.0); // below range clamps
    EXPECT_DOUBLE_EQ(f.inverse(9.0), 2.0); // above range clamps
}

TEST(PiecewiseLinear, AccessorsAndBounds)
{
    PiecewiseLinear f({1.0, 2.0}, {5.0, 6.0});
    EXPECT_EQ(f.size(), 2u);
    EXPECT_FALSE(f.empty());
    EXPECT_DOUBLE_EQ(f.minX(), 1.0);
    EXPECT_DOUBLE_EQ(f.maxX(), 2.0);
}
