/**
 * @file
 * Tests of the dense-matrix/Cholesky helpers and piecewise-linear
 * interpolation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/interp.hpp"
#include "util/matrix.hpp"

using namespace accordion::util;

TEST(Matrix, IdentityMultiply)
{
    const Matrix id = Matrix::identity(4);
    const std::vector<double> v = {1, 2, 3, 4};
    EXPECT_EQ(id.multiply(v), v);
}

TEST(Matrix, MultiplyKnown)
{
    Matrix m(2, 3);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(0, 2) = 3;
    m.at(1, 0) = 4;
    m.at(1, 1) = 5;
    m.at(1, 2) = 6;
    const auto out = m.multiply({1, 1, 1});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Cholesky, ReconstructsInput)
{
    // A symmetric positive-definite matrix.
    Matrix a(3, 3);
    const double vals[3][3] = {
        {4, 2, 1}, {2, 5, 3}, {1, 3, 6}};
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = vals[i][j];
    const Matrix l = choleskyFactor(a);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < 3; ++k)
                sum += l.at(i, k) * l.at(j, k);
            EXPECT_NEAR(sum, vals[i][j], 1e-9)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST(Cholesky, LowerTriangular)
{
    Matrix a = Matrix::identity(4);
    const Matrix l = choleskyFactor(a);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i + 1; j < 4; ++j)
            EXPECT_DOUBLE_EQ(l.at(i, j), 0.0);
}

TEST(Cholesky, HandlesSemiDefinite)
{
    // Rank-1 PSD matrix (all-ones correlation).
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = 1.0;
    const Matrix l = choleskyFactor(a);
    double sum = 0.0;
    for (std::size_t k = 0; k < 3; ++k)
        sum += l.at(2, k) * l.at(1, k);
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(PiecewiseLinear, InterpolatesAndClamps)
{
    PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 10.0, 30.0});
    EXPECT_DOUBLE_EQ(f(0.5), 5.0);
    EXPECT_DOUBLE_EQ(f(2.0), 20.0);
    EXPECT_DOUBLE_EQ(f(-1.0), 0.0); // clamp left
    EXPECT_DOUBLE_EQ(f(9.0), 30.0); // clamp right
    EXPECT_DOUBLE_EQ(f(1.0), 10.0); // knot hit
}

TEST(PiecewiseLinear, SingleKnotIsConstant)
{
    PiecewiseLinear f({2.0}, {7.0});
    EXPECT_DOUBLE_EQ(f(-100.0), 7.0);
    EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinear, InverseOnMonotoneCurve)
{
    PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
    EXPECT_NEAR(f.inverse(0.5), 0.5, 1e-9);
    EXPECT_NEAR(f.inverse(2.5), 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(f.inverse(-1.0), 0.0); // below range clamps
    EXPECT_DOUBLE_EQ(f.inverse(9.0), 2.0); // above range clamps
}

TEST(PiecewiseLinear, AccessorsAndBounds)
{
    PiecewiseLinear f({1.0, 2.0}, {5.0, 6.0});
    EXPECT_EQ(f.size(), 2u);
    EXPECT_FALSE(f.empty());
    EXPECT_DOUBLE_EQ(f.minX(), 1.0);
    EXPECT_DOUBLE_EQ(f.maxX(), 2.0);
}

namespace {

/** Deterministic PSD matrix A = B B^T + n I from a tiny LCG. */
Matrix
randomPsd(std::size_t n, std::uint64_t seed)
{
    std::uint64_t state = seed;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(state >> 11) /
            static_cast<double>(1ull << 53);
    };
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b.at(r, c) = 2.0 * next() - 1.0;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            double sum = r == c ? static_cast<double>(n) : 0.0;
            for (std::size_t k = 0; k < n; ++k)
                sum += b.at(r, k) * b.at(c, k);
            a.at(r, c) = sum;
        }
    return a;
}

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    std::uint64_t state = seed;
    std::vector<double> v(n);
    for (double &x : v) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<double>(state >> 11) /
                static_cast<double>(1ull << 53) -
            0.5;
    }
    return v;
}

} // namespace

TEST(TriangularFactor, BitIdenticalToDenseMultiplyOnRandomPsd)
{
    // The packed factor skips stored zeros but accumulates the
    // surviving terms in the same ascending-column order as the
    // dense matvec, so the results must match bit for bit -- the
    // sampled variation fields cannot move by even one ulp.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const std::size_t n = 17 + 4 * seed;
        const Matrix lower = choleskyFactor(randomPsd(n, seed));
        const TriangularFactor factor(lower);
        EXPECT_EQ(factor.size(), n);
        const std::vector<double> v = randomVector(n, seed + 100);
        const std::vector<double> dense = lower.multiply(v);
        const std::vector<double> packed = factor.multiply(v);
        ASSERT_EQ(packed.size(), dense.size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(packed[i], dense[i]) << "row " << i;
    }
}

TEST(TriangularFactor, ExploitsBlockDiagonalSparsity)
{
    // Two uncoupled PSD blocks: the factor of the block-diagonal
    // matrix is itself block-diagonal, so the packed form must drop
    // the cross-block zeros (this is the short-range spherical
    // correlation case that motivates the packing).
    const std::size_t half = 12, n = 2 * half;
    const Matrix blk = randomPsd(half, 7);
    Matrix a(n, n);
    for (std::size_t r = 0; r < half; ++r)
        for (std::size_t c = 0; c < half; ++c) {
            a.at(r, c) = blk.at(r, c);
            a.at(half + r, half + c) = blk.at(r, c);
        }
    const Matrix lower = choleskyFactor(a);
    const TriangularFactor factor(lower);
    // A full lower triangle stores n(n+1)/2 entries; the block
    // factor stores at most two half-sized triangles.
    EXPECT_LE(factor.nonZeros(), half * (half + 1));
    EXPECT_LT(factor.density(), 0.30);
    const std::vector<double> v = randomVector(n, 9);
    const std::vector<double> dense = lower.multiply(v);
    std::vector<double> packed;
    factor.multiplyInto(v, packed);
    ASSERT_EQ(packed.size(), dense.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(packed[i], dense[i]) << "row " << i;
}

TEST(TriangularFactor, ReusesTheOutputBufferWithoutReallocating)
{
    const Matrix lower = choleskyFactor(randomPsd(8, 3));
    const TriangularFactor factor(lower);
    std::vector<double> out(8);
    const double *data = out.data();
    factor.multiplyInto(randomVector(8, 4), out);
    EXPECT_EQ(out.data(), data);
    EXPECT_EQ(out.size(), 8u);
}
