/**
 * @file
 * Tests of the Accordion framework: modes, quality profiles, core
 * selection, and the iso-execution-time pareto extraction whose
 * outputs are Figures 6 and 7.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/accordion.hpp"
#include "core/core_selection.hpp"
#include "core/modes.hpp"
#include "core/pareto.hpp"
#include "core/quality_profile.hpp"

using namespace accordion;
using namespace accordion::core;

TEST(Modes, Classification)
{
    EXPECT_EQ(classifySizeMode(0.5), SizeMode::Compress);
    EXPECT_EQ(classifySizeMode(1.0), SizeMode::Still);
    EXPECT_EQ(classifySizeMode(2.0), SizeMode::Expand);
    EXPECT_EQ(classifySizeMode(1.005, 0.01), SizeMode::Still);
}

TEST(Modes, Names)
{
    EXPECT_EQ(sizeModeName(SizeMode::Compress), "Compress");
    EXPECT_EQ(sizeModeName(SizeMode::Still), "Still");
    EXPECT_EQ(sizeModeName(SizeMode::Expand), "Expand");
    EXPECT_EQ(flavorName(Flavor::Safe), "Safe");
    EXPECT_EQ(flavorName(Flavor::Speculative), "Speculative");
}

namespace {

/** Shared, lazily-built system (profiles are expensive). */
AccordionSystem &
sys()
{
    static AccordionSystem system;
    return system;
}

const QualityProfile &
hotspotProfile()
{
    return sys().profile("hotspot");
}

} // namespace

TEST(QualityProfile, DefaultPointIsUnityOnBothAxes)
{
    const QualityProfile &p = hotspotProfile();
    // The default input is inside the sweep, so the normalized
    // curve passes through (1, 1).
    EXPECT_NEAR(p.defaultCurve().interp()(1.0), 1.0, 1e-9);
    EXPECT_GT(p.defaultProblemSize(), 0.0);
    EXPECT_GT(p.defaultQuality(), 0.0);
    EXPECT_GT(p.defaultInstrPerTask(), 0.0);
    EXPECT_EQ(p.threads(), 64u);
}

TEST(QualityProfile, KnotsStrictlyIncrease)
{
    const QualityProfile &p = hotspotProfile();
    for (const ProfileCurve *curve :
         {&p.defaultCurve(), &p.dropQuarterCurve(), &p.dropHalfCurve()})
        for (std::size_t i = 1; i < curve->psRatio.size(); ++i)
            EXPECT_GT(curve->psRatio[i], curve->psRatio[i - 1]);
}

TEST(QualityProfile, DropCurvesBelowDefault)
{
    const QualityProfile &p = hotspotProfile();
    for (double ps : {0.5, 1.0, 2.0}) {
        EXPECT_GE(p.qualityAt(ps, 0.0), p.qualityAt(ps, 0.25) - 0.02);
        EXPECT_GE(p.qualityAt(ps, 0.25), p.qualityAt(ps, 0.5) - 0.02);
    }
}

TEST(QualityProfile, InterpolatesBetweenDropFractions)
{
    const QualityProfile &p = hotspotProfile();
    const double q0 = p.qualityAt(1.0, 0.0);
    const double q125 = p.qualityAt(1.0, 0.125);
    const double q25 = p.qualityAt(1.0, 0.25);
    EXPECT_NEAR(q125, 0.5 * (q0 + q25), 1e-9);
    // Clamps beyond one half.
    EXPECT_DOUBLE_EQ(p.qualityAt(1.0, 0.8), p.qualityAt(1.0, 0.5));
}

TEST(QualityProfile, QualityGrowsWithProblemSize)
{
    const QualityProfile &p = hotspotProfile();
    EXPECT_LT(p.qualityAt(0.5), p.qualityAt(1.0));
    EXPECT_LT(p.qualityAt(1.0), p.qualityAt(2.0));
}

TEST(QualityProfile, SpeculativeDropFractionRule)
{
    // hotspot degrades visibly under Drop 1/4 => analysis uses 1/4;
    // canneal barely degrades => the conservative 1/2.
    EXPECT_DOUBLE_EQ(hotspotProfile().speculativeDropFraction(), 0.25);
    EXPECT_DOUBLE_EQ(sys().profile("canneal").speculativeDropFraction(),
                     0.5);
}

TEST(CoreSelector, RankingIsSortedByEfficiency)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto &ranking = sel.rankedClusters();
    ASSERT_EQ(ranking.size(), 36u);
    for (std::size_t i = 1; i < ranking.size(); ++i)
        EXPECT_GE(ranking[i - 1].efficiency, ranking[i].efficiency);
}

TEST(CoreSelector, SelectionIsClusterGranular)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto cores = sel.selectCores(24);
    ASSERT_EQ(cores.size(), 24u);
    std::set<std::size_t> clusters;
    for (std::size_t c : cores)
        clusters.insert(sys().chip().geometry().clusterOfCore(c));
    EXPECT_EQ(clusters.size(), 3u); // 24 cores == 3 whole clusters
}

TEST(CoreSelector, SelectionPrefersEfficientClusters)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto cores = sel.selectCores(8);
    const std::size_t best = sel.rankedClusters().front().cluster;
    for (std::size_t c : cores)
        EXPECT_EQ(sys().chip().geometry().clusterOfCore(c), best);
}

TEST(CoreSelector, CommonFrequencyIsSlowestSelected)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto cores = sel.selectCores(48);
    double f_min = 1e300;
    for (std::size_t c : cores)
        f_min = std::min(f_min, sys().chip().coreSafeF(c));
    EXPECT_DOUBLE_EQ(sel.safeFrequency(cores), f_min);
}

TEST(CoreSelector, FrequencyDropsAsSelectionGrows)
{
    const CoreSelector &sel = sys().pareto().selector();
    double prev = 1e300;
    for (std::size_t n : {8u, 80u, 160u, 288u}) {
        const double f = sel.safeFrequency(sel.selectCores(n));
        EXPECT_LE(f, prev);
        prev = f;
    }
}

TEST(CoreSelector, SpeculativeAboveSafe)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto cores = sel.selectCores(64);
    EXPECT_GT(sel.speculativeFrequency(cores, 1e-6),
              sel.safeFrequency(cores));
}

TEST(CoreSelector, ControlCoresAreTheFastest)
{
    const CoreSelector &sel = sys().pareto().selector();
    const auto ccs = sel.selectControlCores(4);
    ASSERT_EQ(ccs.size(), 4u);
    const double slowest_cc = sys().chip().coreSafeF(ccs.back());
    // No non-CC core may beat the slowest CC.
    std::set<std::size_t> cc_set(ccs.begin(), ccs.end());
    for (std::size_t c = 0; c < sys().chip().numCores(); ++c) {
        if (!cc_set.count(c)) {
            EXPECT_LE(sys().chip().coreSafeF(c), slowest_cc);
        }
    }
}

class ParetoTest : public ::testing::TestWithParam<Flavor>
{
};

TEST_P(ParetoTest, FrontPropertiesHotspot)
{
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const StvBaseline base = sys().pareto().baseline(w, prof);
    EXPECT_GT(base.n, 0u);
    EXPECT_GT(base.seconds, 0.0);
    EXPECT_LE(base.powerW, sys().powerModel().budget());

    const auto front = sys().pareto().extract(w, prof, GetParam());
    ASSERT_FALSE(front.empty());
    double prev_ps = 0.0;
    std::size_t prev_n = 0;
    for (const OperatingPoint &p : front) {
        EXPECT_GT(p.psRatio, prev_ps); // one point per size, ordered
        prev_ps = p.psRatio;
        if (p.feasible) {
            // Iso-execution time holds within tolerance.
            EXPECT_LE(p.execSeconds, base.seconds * 1.03);
            // Larger problems need at least as many cores.
            EXPECT_GE(p.n, prev_n);
            prev_n = p.n;
        }
        EXPECT_GT(p.fHz, 0.0);
        EXPECT_LT(p.fHz, 1.0e9); // below the NTV nominal
        EXPECT_GT(p.qualityRatio, 0.0);
        EXPECT_EQ(p.flavor, GetParam());
        EXPECT_EQ(p.sizeMode, classifySizeMode(p.psRatio, 1e-6));
    }
}

INSTANTIATE_TEST_SUITE_P(BothFlavors, ParetoTest,
                         ::testing::Values(Flavor::Safe,
                                           Flavor::Speculative),
                         [](const auto &info) {
                             return flavorName(info.param);
                         });

TEST(Pareto, SpeculativeNeedsFewerCoresThanSafe)
{
    // Section 6.3: the higher speculative f releases pressure on N.
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const auto safe = sys().pareto().extract(w, prof, Flavor::Safe);
    const auto spec =
        sys().pareto().extract(w, prof, Flavor::Speculative);
    ASSERT_EQ(safe.size(), spec.size());
    for (std::size_t i = 0; i < safe.size(); ++i) {
        if (!safe[i].feasible || !spec[i].feasible)
            continue;
        EXPECT_LE(spec[i].n, safe[i].n) << "ps=" << safe[i].psRatio;
        EXPECT_GE(spec[i].fHz, safe[i].fHz * 0.99);
    }
}

TEST(Pareto, SpeculativeTradesQualityForEfficiency)
{
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const auto safe = sys().pareto().extract(w, prof, Flavor::Safe);
    const auto spec =
        sys().pareto().extract(w, prof, Flavor::Speculative);
    const StvBaseline base = sys().pareto().baseline(w, prof);
    for (std::size_t i = 0; i < safe.size(); ++i) {
        if (!safe[i].feasible || !spec[i].feasible)
            continue;
        EXPECT_LE(spec[i].qualityRatio, safe[i].qualityRatio);
        EXPECT_GE(spec[i].efficiencyRatio(base),
                  safe[i].efficiencyRatio(base) * 0.98);
    }
}

TEST(Pareto, EfficiencyDegradesWithCoreCount)
{
    // First column of Figs. 6-7: MIPS/W falls from left to right.
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const StvBaseline base = sys().pareto().baseline(w, prof);
    const auto front = sys().pareto().extract(w, prof, Flavor::Safe);
    double prev_eff = 1e300;
    for (const OperatingPoint &p : front) {
        if (!p.feasible)
            continue;
        const double eff = p.efficiencyRatio(base);
        EXPECT_LE(eff, prev_eff * 1.05) << "ps=" << p.psRatio;
        prev_eff = eff;
    }
}

TEST(Pareto, SafeExpandQualityTracksProblemSize)
{
    // Fourth column: under Safe the quality trends track problem
    // size exactly (no errors).
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const auto front = sys().pareto().extract(w, prof, Flavor::Safe);
    for (const OperatingPoint &p : front)
        EXPECT_DOUBLE_EQ(p.qualityRatio, prof.qualityAt(p.psRatio, 0.0));
}

TEST(Pareto, SpeculativeTargetsOneErrorPerTask)
{
    const auto &w = rms::findWorkload("hotspot");
    const QualityProfile &prof = hotspotProfile();
    const auto spec =
        sys().pareto().extract(w, prof, Flavor::Speculative);
    for (const OperatingPoint &p : spec) {
        EXPECT_GT(p.perr, 0.0);
        EXPECT_GT(p.dropFraction, 0.0);
    }
}

TEST(AccordionSystem, ProfileIsCached)
{
    const QualityProfile &a = sys().profile("hotspot");
    const QualityProfile &b = sys().profile("hotspot");
    EXPECT_EQ(&a, &b);
}

TEST(AccordionSystem, HeadlineEfficiencyGainAboveOne)
{
    // Section 9: 1.61-1.87x more energy-efficient at the STV
    // execution time. Our substrate lands in the same >1x regime.
    const double gain = sys().bestEfficiencyGain("hotspot");
    EXPECT_GT(gain, 1.2);
    EXPECT_LT(gain, 4.0);
}

TEST(AccordionSystem, EventDrivenBackendAgrees)
{
    AccordionSystem::Config config;
    config.perfEngine = PerfEngine::Event;
    AccordionSystem event_sys(config);
    const auto &w = rms::findWorkload("hotspot");
    const auto &prof = event_sys.profile("hotspot");
    const StvBaseline a = event_sys.pareto().baseline(w, prof);
    const StvBaseline b = sys().pareto().baseline(w, prof);
    EXPECT_NEAR(a.seconds / b.seconds, 1.0, 0.3);
}

TEST(AccordionSystem, BspBackendMatchesEventBackendBitwise)
{
    AccordionSystem::Config config;
    config.perfEngine = PerfEngine::Event;
    AccordionSystem event_sys(config);
    config.perfEngine = PerfEngine::Bsp;
    AccordionSystem bsp_sys(config);
    const auto &w = rms::findWorkload("hotspot");
    const auto &prof = event_sys.profile("hotspot");
    const StvBaseline a = event_sys.pareto().baseline(w, prof);
    const StvBaseline b = bsp_sys.pareto().baseline(w, prof);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.mips, b.mips);
    EXPECT_EQ(a.powerW, b.powerW);
}
