/**
 * @file
 * Unit and property tests of the deterministic PRNG layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

using accordion::util::Rng;
using accordion::util::splitMix64;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiffer)
{
    Rng a(42, 0), b(43, 0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, DistinctStreamsDiffer)
{
    Rng a(42, 0), b(42, 1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1, 0);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance)
{
    Rng rng(2, 0);
    double sum = 0, sum2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum2 += u * u;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(3, 0);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-5.0, 11.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 11.0);
    }
}

TEST(Rng, UniformIntBoundsAndCoverage)
{
    Rng rng(4, 0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng rng(5, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(6, 0);
    double sum = 0, sum2 = 0, sum3 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
        sum3 += x * x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
    EXPECT_NEAR(sum3 / n, 0.0, 0.1); // symmetry
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(7, 0);
    double sum = 0, sum2 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 3.0);
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 3.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(8, 0);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9, 0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ForkIsOrderIndependent)
{
    Rng parent(10, 3);
    Rng child_before = parent.fork(99);
    parent.next();
    parent.next();
    Rng child_after = parent.fork(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child_before.next(), child_after.next());
}

TEST(Rng, ForkedChildrenAreIndependent)
{
    Rng parent(11, 0);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitMix64Advances)
{
    std::uint64_t s = 0;
    const std::uint64_t a = splitMix64(s);
    const std::uint64_t b = splitMix64(s);
    EXPECT_NE(a, b);
}
