/**
 * @file
 * Tests of the technology model against the paper's calibration
 * anchors (Table 2 and Fig. 1a/1c).
 */

#include <gtest/gtest.h>

#include "vartech/guardband.hpp"
#include "vartech/technology.hpp"

using accordion::vartech::Technology;
using accordion::vartech::timingGuardbandPercent;

namespace {
const Technology &
tech11()
{
    static const Technology t = Technology::makeItrs11nm();
    return t;
}
} // namespace

TEST(Technology, Table2NominalCorner)
{
    const auto &t = tech11();
    EXPECT_DOUBLE_EQ(t.params().vddNom, 0.55);
    EXPECT_DOUBLE_EQ(t.params().vthNom, 0.33);
    EXPECT_NEAR(t.fNtv(), 1.0e9, 1e3);
    EXPECT_NEAR(t.frequencyAtNominalVth(0.55), 1.0e9, 1e3);
}

TEST(Technology, StvEquivalenceRoughly3GHz)
{
    // Table 2: 0.55 V / 1 GHz approximately corresponds to
    // 1 V / 3.3 GHz.
    const double ratio = tech11().fStv() / tech11().fNtv();
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 3.7);
}

TEST(Technology, FrequencyMonotoneInVdd)
{
    const auto &t = tech11();
    double prev = 0.0;
    for (double vdd = 0.2; vdd <= 1.2; vdd += 0.05) {
        const double f = t.frequencyAtNominalVth(vdd);
        EXPECT_GT(f, prev) << "vdd=" << vdd;
        prev = f;
    }
}

TEST(Technology, FrequencyDecreasesWithVth)
{
    const auto &t = tech11();
    EXPECT_LT(t.frequency(0.55, 0.40), t.frequency(0.55, 0.33));
    EXPECT_LT(t.frequency(0.55, 0.33), t.frequency(0.55, 0.28));
}

TEST(Technology, LeffSlowsAndDelaysScale)
{
    const auto &t = tech11();
    EXPECT_LT(t.frequency(0.55, 0.33, 0.1), t.frequency(0.55, 0.33));
    EXPECT_GT(t.relativeDelay(0.55, 0.33, 0.1),
              t.relativeDelay(0.55, 0.33));
    EXPECT_NEAR(t.relativeDelay(0.55, 0.33), 1.0, 1e-9);
}

TEST(Technology, StvCorePowerFitsBudgetAs16thOf100W)
{
    // The STV corner is calibrated to ~6.25 W per core so that
    // N_STV lands in the 15-16 range under the 100 W budget.
    const auto &t = tech11();
    const double p = t.dynamicPower(1.0, t.fStv()) +
        t.staticPower(1.0, t.params().vthNom);
    EXPECT_NEAR(p, 6.25, 0.01);
}

TEST(Technology, NtvPowerReductionInPaperBand)
{
    // Fig. 1a: power drops 10-50x from STV to NTV.
    const auto &t = tech11();
    const double p_stv = t.dynamicPower(1.0, t.fStv()) +
        t.staticPower(1.0, 0.33);
    const double p_ntv = t.dynamicPower(0.55, t.fNtv()) +
        t.staticPower(0.55, 0.33);
    const double reduction = p_stv / p_ntv;
    EXPECT_GT(reduction, 8.0);
    EXPECT_LT(reduction, 50.0);
}

TEST(Technology, EnergyPerOpImprovement2to5x)
{
    // Fig. 1a: energy/operation improves 2-5x at NTV.
    const auto &t = tech11();
    const double gain = t.energyPerOp(1.0) / t.energyPerOp(0.55);
    EXPECT_GT(gain, 2.0);
    EXPECT_LT(gain, 5.0);
}

TEST(Technology, EnergyMinimumBelowTheNtvOperatingPoint)
{
    // Fig. 1a places the minimum-energy point in the sub-threshold
    // region. Our calibration (which also has to hit the headline
    // power numbers) puts it at the near-threshold edge — still
    // well below VddNOM, preserving the figure's shape: energy
    // falls from STV to NTV and turns back up below it.
    const auto &t = tech11();
    double best_vdd = 0.0, best = 1e300;
    for (double vdd = 0.15; vdd <= 1.1; vdd += 0.01) {
        const double e = t.energyPerOp(vdd);
        if (e < best) {
            best = e;
            best_vdd = vdd;
        }
    }
    EXPECT_LT(best_vdd, t.params().vddNom - 0.10);
    EXPECT_GT(best_vdd, t.params().vthNom - 0.10);
}

TEST(Technology, DelaySensitivityAmplifiedAtNtv)
{
    // Transistor speed is more sensitive to Vth variation at lower
    // Vdd — the root of NTC's variation problem.
    const auto &t = tech11();
    const double s_ntv = t.delayVthSensitivity(0.55, 0.33);
    const double s_stv = t.delayVthSensitivity(1.0, 0.33);
    EXPECT_GT(s_ntv, 2.0 * s_stv);
}

TEST(Technology, StaticShareGrowsTowardNtv)
{
    // Section 6.2: the share of static power is higher at NTV.
    const auto &t = tech11();
    auto static_share = [&](double vdd, double f) {
        const double dyn = t.dynamicPower(vdd, f);
        const double stat = t.staticPower(vdd, 0.33);
        return stat / (dyn + stat);
    };
    // Compare at the respective achievable frequencies.
    EXPECT_GT(static_share(0.55, 0.4e9),
              static_share(1.0, t.fStv()));
}

TEST(Technology, RejectsVddBelowVth)
{
    Technology::Params p = tech11().params();
    p.vddNom = 0.3; // below vthNom = 0.33
    EXPECT_EXIT(Technology{std::move(p)},
                ::testing::ExitedWithCode(1), "vddNom");
}

TEST(Guardband, GrowsTowardThreshold)
{
    const auto &t = tech11();
    double prev = 0.0;
    for (double vdd : {1.2, 1.0, 0.8, 0.6, 0.5, 0.45}) {
        const double gb = timingGuardbandPercent(t, vdd);
        EXPECT_GT(gb, prev) << "vdd=" << vdd;
        prev = gb;
    }
}

TEST(Guardband, WorseAt11nmThan22nm)
{
    // Fig. 1c: variation grows each generation.
    const Technology t22 = Technology::makeItrs22nm();
    for (double vdd : {0.5, 0.6, 0.8, 1.0})
        EXPECT_GT(timingGuardbandPercent(tech11(), vdd),
                  timingGuardbandPercent(t22, vdd))
            << "vdd=" << vdd;
}

TEST(Guardband, SubstantialAtNtv)
{
    // Fig. 1c shows hundreds of percent near 0.5 V at 11 nm.
    EXPECT_GT(timingGuardbandPercent(tech11(), 0.5), 100.0);
}

TEST(Guardband, ScalesWithSigma)
{
    EXPECT_GT(timingGuardbandPercent(tech11(), 0.6, 3.0),
              timingGuardbandPercent(tech11(), 0.6, 1.0));
}
