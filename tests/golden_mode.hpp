/**
 * @file
 * Shared switch between the golden-value tests and the custom test
 * main: when set (via --update-golden or ACCORDION_UPDATE_GOLDEN=1),
 * golden tests regenerate their checked-in CSVs instead of
 * comparing against them.
 */

#ifndef ACCORDION_TESTS_GOLDEN_MODE_HPP
#define ACCORDION_TESTS_GOLDEN_MODE_HPP

namespace accordion::test {

/** Mutable process-wide flag; defaults to compare mode. */
inline bool &
updateGoldenFlag()
{
    static bool flag = false;
    return flag;
}

} // namespace accordion::test

#endif // ACCORDION_TESTS_GOLDEN_MODE_HPP
