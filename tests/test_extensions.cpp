/**
 * @file
 * Tests of the extension modules: the strict-weak-scaling bitmine
 * workload (Section 7), the Monte Carlo sample evaluator, the
 * Booster/EnergySmart baselines, and the checkpoint/recovery model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/accordion.hpp"
#include "core/baselines.hpp"
#include "core/checkpoint.hpp"
#include "core/montecarlo.hpp"
#include "rms/bitmine.hpp"

using namespace accordion;
using namespace accordion::core;

TEST(Bitmine, RegisteredAsExtensionOnly)
{
    EXPECT_EQ(rms::allWorkloads().size(), 6u);
    ASSERT_EQ(rms::extendedWorkloads().size(), 7u);
    EXPECT_EQ(rms::extendedWorkloads().back()->name(), "bitmine");
    EXPECT_EQ(rms::findWorkload("bitmine").name(), "bitmine");
}

TEST(Bitmine, StrictWeakScaling)
{
    // Per-thread work is exactly the Accordion input, regardless of
    // thread count — strict Gustafson weak scaling.
    const auto &w = rms::findWorkload("bitmine");
    rms::RunConfig a;
    a.input = 4096;
    a.threads = 16;
    rms::RunConfig b = a;
    b.threads = 64;
    const auto ra = w.run(a);
    const auto rb = w.run(b);
    EXPECT_DOUBLE_EQ(ra.taskSet.instrPerTask, rb.taskSet.instrPerTask);
    EXPECT_DOUBLE_EQ(rb.problemSize, 4.0 * ra.problemSize);
}

TEST(Bitmine, QualityProportionalToWork)
{
    const auto &w = rms::findWorkload("bitmine");
    const auto ref = w.runReference();
    rms::RunConfig c;
    c.input = w.defaultInput();
    const double q_full = w.qualityOf(c, ref);
    c.fault = fault::FaultPlan::dropHalf();
    const double q_half = w.qualityOf(c, ref);
    // Drop 1/2 halves the search, so it halves the shares (up to
    // Poisson noise in share counts).
    EXPECT_NEAR(q_half / q_full, 0.5, 0.08);
    // Doubling the input doubles the quality.
    c.fault = fault::FaultPlan();
    c.input = 2.0 * w.defaultInput();
    EXPECT_NEAR(w.qualityOf(c, ref) / q_full, 2.0, 0.15);
}

TEST(Bitmine, DeterministicSearch)
{
    const auto &w = rms::findWorkload("bitmine");
    rms::RunConfig c;
    c.input = 8192;
    const auto a = w.run(c);
    const auto b = w.run(c);
    EXPECT_EQ(a.output, b.output);
}

namespace {

AccordionSystem &
sys()
{
    static AccordionSystem system;
    return system;
}

} // namespace

TEST(MonteCarlo, StatisticsAreConsistent)
{
    const MonteCarloEvaluator mc(sys().factory(), 10);
    const auto stats = mc.evaluate(
        "vddntv", [](const vartech::VariationChip &chip) {
            return chip.vddNtv();
        });
    EXPECT_EQ(stats.chips, 10u);
    EXPECT_GE(stats.max, stats.p90);
    EXPECT_GE(stats.p90, stats.mean - 1e-12);
    EXPECT_GE(stats.mean, stats.p10 - 1e-12);
    EXPECT_GE(stats.p10, stats.min);
    EXPECT_GT(stats.stddev, 0.0);
    // VddNTV stays in the near-threshold band on every chip.
    EXPECT_GT(stats.min, 0.50);
    EXPECT_LT(stats.max, 0.65);
}

TEST(MonteCarlo, ValuesAreDeterministicPerChipId)
{
    const MonteCarloEvaluator mc(sys().factory(), 5);
    const auto metric = [](const vartech::VariationChip &chip) {
        return chip.clusterSafeF(0);
    };
    EXPECT_EQ(mc.values(metric), mc.values(metric));
}

TEST(MonteCarlo, GainDistributionIsPositive)
{
    const MonteCarloEvaluator mc(sys().factory(), 4);
    const auto &w = rms::findWorkload("hotspot");
    const auto stats = mc.efficiencyGainDistribution(
        w, sys().profile("hotspot"), sys().powerModel(),
        sys().perfModel(), Flavor::Speculative);
    EXPECT_GT(stats.min, 1.0);
    EXPECT_LT(stats.max, 4.0);
}

TEST(Baselines, ReachIsoExecutionTime)
{
    const BaselineEvaluator baselines(
        sys().chip(), sys().powerModel(), sys().perfModel());
    const auto &w = rms::findWorkload("hotspot");
    const auto &profile = sys().profile("hotspot");
    const auto base = sys().pareto().baseline(w, profile);
    for (const BaselineResult &r :
         {baselines.booster(w, profile, base),
          baselines.energySmart(w, profile, base)}) {
        EXPECT_TRUE(r.feasible) << r.scheme;
        EXPECT_LE(r.execSeconds, base.seconds * 1.03) << r.scheme;
        EXPECT_TRUE(r.withinBudget) << r.scheme;
        EXPECT_GT(r.efficiencyRatio(base), 1.0) << r.scheme;
        EXPECT_GT(r.n, base.n) << r.scheme;
    }
}

TEST(Baselines, BoosterClockExceedsSingleRailSafe)
{
    const BaselineEvaluator baselines(
        sys().chip(), sys().powerModel(), sys().perfModel());
    const auto &w = rms::findWorkload("hotspot");
    const auto &profile = sys().profile("hotspot");
    const auto base = sys().pareto().baseline(w, profile);
    const auto boost = baselines.booster(w, profile, base);
    const auto safe_still = sys().pareto().evaluateAt(
        w, profile, Flavor::Safe, 1.0, base);
    // The high rail buys frequency, so Booster needs fewer cores
    // than Accordion Safe at the same (Still) problem size.
    EXPECT_GT(boost.fHz, safe_still.fHz);
    EXPECT_LT(boost.n, safe_still.n);
}

TEST(Baselines, AccordionSpeculativeBeatsBothOnEfficiency)
{
    // The comparison the related-work section implies: embracing
    // errors (problem-size knob aside) already beats pure
    // variation-mitigation schemes.
    const BaselineEvaluator baselines(
        sys().chip(), sys().powerModel(), sys().perfModel());
    const auto &w = rms::findWorkload("hotspot");
    const auto &profile = sys().profile("hotspot");
    const auto base = sys().pareto().baseline(w, profile);
    const auto spec = sys().pareto().evaluateAt(
        w, profile, Flavor::Speculative, 1.0, base);
    EXPECT_GT(spec.efficiencyRatio(base),
              baselines.booster(w, profile, base)
                  .efficiencyRatio(base));
    EXPECT_GT(spec.efficiencyRatio(base),
              baselines.energySmart(w, profile, base)
                  .efficiencyRatio(base));
}

TEST(Checkpoint, OptimalIntervalFollowsYoungsFormula)
{
    CheckpointParams params;
    const double lambda = 1e-8;
    const auto plan = planCheckpoints(params, lambda, 1e9);
    EXPECT_NEAR(plan.optimalIntervalCycles,
                std::sqrt(2.0 * params.checkpointCostCycles / lambda),
                1e-6);
    // tau* minimizes the overhead: nearby intervals are worse.
    auto overhead = [&](double tau) {
        return params.checkpointCostCycles / tau +
            lambda * (tau / 2.0 + params.recoveryCostCycles);
    };
    EXPECT_LE(plan.overheadFraction,
              overhead(plan.optimalIntervalCycles * 1.3));
    EXPECT_LE(plan.overheadFraction,
              overhead(plan.optimalIntervalCycles * 0.7));
}

TEST(Checkpoint, ZeroErrorsNeverCheckpoints)
{
    const auto plan = planCheckpoints(CheckpointParams{}, 0.0, 1e9);
    EXPECT_EQ(plan.overheadFraction, 0.0);
    EXPECT_EQ(plan.checkpointsPerSecond, 0.0);
}

TEST(Checkpoint, AccordionCoverageCutsOverhead)
{
    const CheckpointParams params;
    const double perr = 1e-6;
    const auto full = planCheckpoints(params, perr, 1e9);
    const auto acc = planCheckpoints(
        params, accordionCoveredErrorRate(perr, 0.03), 1e9);
    EXPECT_LT(acc.overheadFraction, 0.25 * full.overheadFraction);
    EXPECT_LT(acc.checkpointsPerSecond, full.checkpointsPerSecond);
}

TEST(Checkpoint, CoverageValidation)
{
    EXPECT_DOUBLE_EQ(accordionCoveredErrorRate(1e-6, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(accordionCoveredErrorRate(1e-6, 1.0), 1e-6);
    EXPECT_EXIT(accordionCoveredErrorRate(1e-6, 1.5),
                ::testing::ExitedWithCode(1), "control fraction");
}
