/**
 * @file
 * Tests of the dynamic orchestration extension (Section 7): phase
 * accounting, event application, and the adaptive-vs-static
 * contrast under temporal resiliency changes.
 */

#include <gtest/gtest.h>

#include "core/accordion.hpp"
#include "core/dynamic.hpp"

using namespace accordion;
using namespace accordion::core;

namespace {

AccordionSystem &
sys()
{
    static AccordionSystem system;
    return system;
}

const rms::Workload &
work()
{
    return rms::findWorkload("hotspot");
}

const QualityProfile &
prof()
{
    return sys().profile("hotspot");
}

StvBaseline
base()
{
    static const StvBaseline b = sys().pareto().baseline(work(),
                                                         prof());
    return b;
}

DynamicOrchestrator
makeOrchestrator(bool adaptive, std::size_t phases = 8)
{
    DynamicOrchestrator::Params params;
    params.adaptive = adaptive;
    params.phases = phases;
    return DynamicOrchestrator(sys().chip(), sys().powerModel(),
                               sys().perfModel(), params);
}

} // namespace

TEST(Dynamic, NoEventsMatchesStaticOperation)
{
    const auto report = makeOrchestrator(true).run(work(), prof(),
                                                   base(), {});
    ASSERT_EQ(report.phases.size(), 8u);
    // One initial selection, no further churn.
    EXPECT_EQ(report.reselections, 1u);
    for (const PhaseOutcome &phase : report.phases) {
        EXPECT_EQ(phase.n, report.phases.front().n);
        EXPECT_DOUBLE_EQ(phase.fHz, report.phases.front().fHz);
    }
    // Iso-execution time holds without perturbation.
    EXPECT_LE(report.totalSeconds, base().seconds * 1.05);
    EXPECT_GT(report.energyJ, 0.0);
}

TEST(Dynamic, EventsOnUnusedClustersAreFree)
{
    // Degrade the least efficient cluster — the selection never
    // includes it, so the adaptive run is unaffected.
    const auto &ranking = sys().pareto().selector().rankedClusters();
    const std::size_t victim = ranking.back().cluster;
    const auto clean = makeOrchestrator(true).run(work(), prof(),
                                                  base(), {});
    const auto hit = makeOrchestrator(true).run(
        work(), prof(), base(), {{2, victim, 0.5}});
    EXPECT_NEAR(hit.totalSeconds, clean.totalSeconds,
                clean.totalSeconds * 0.02);
}

TEST(Dynamic, StaticAllocationSuffersUnderDegradation)
{
    // Degrade the clusters the initial selection uses: the static
    // scheme rides the slower clock; the adaptive one re-selects.
    const auto &ranking = sys().pareto().selector().rankedClusters();
    std::vector<ResilienceEvent> events;
    for (std::size_t i = 0; i < 4; ++i)
        events.push_back({2, ranking[i].cluster, 0.6});

    const auto still = makeOrchestrator(false).run(work(), prof(),
                                                   base(), events);
    const auto adaptive = makeOrchestrator(true).run(
        work(), prof(), base(), events);

    EXPECT_GT(still.totalSeconds, base().seconds * 1.05);
    EXPECT_LE(adaptive.totalSeconds, base().seconds * 1.05);
    EXPECT_LT(adaptive.totalSeconds, still.totalSeconds);
    EXPECT_GT(adaptive.reselections, 1u);
}

TEST(Dynamic, RecoveryRestoresTheOriginalAllocation)
{
    const auto &ranking = sys().pareto().selector().rankedClusters();
    std::vector<ResilienceEvent> events = {
        {2, ranking[0].cluster, 0.5}, {5, ranking[0].cluster, 1.0}};
    const auto report = makeOrchestrator(true).run(work(), prof(),
                                                   base(), events);
    // After recovery the controller converges back to the
    // unperturbed selection.
    const auto clean = makeOrchestrator(true).run(work(), prof(),
                                                  base(), {});
    EXPECT_EQ(report.phases.back().n, clean.phases.back().n);
    EXPECT_DOUBLE_EQ(report.phases.back().fHz,
                     clean.phases.back().fHz);
}

TEST(Dynamic, PhaseAccountingAddsUp)
{
    const auto report = makeOrchestrator(true).run(work(), prof(),
                                                   base(), {});
    double sum_s = 0.0, sum_j = 0.0;
    for (const PhaseOutcome &phase : report.phases) {
        sum_s += phase.seconds;
        sum_j += phase.seconds * phase.powerW;
    }
    EXPECT_NEAR(report.totalSeconds, sum_s, 1e-12);
    EXPECT_NEAR(report.energyJ, sum_j, 1e-12);
    EXPECT_NEAR(report.avgPowerW(), sum_j / sum_s, 1e-9);
}

TEST(Dynamic, RejectsBadInputs)
{
    DynamicOrchestrator::Params params;
    params.phases = 0;
    EXPECT_EXIT(DynamicOrchestrator(sys().chip(), sys().powerModel(),
                                    sys().perfModel(), params),
                ::testing::ExitedWithCode(1), "phase");
    EXPECT_EXIT(makeOrchestrator(true).run(work(), prof(), base(),
                                           {{0, 999, 0.5}}),
                ::testing::ExitedWithCode(1), "out of range");
}
