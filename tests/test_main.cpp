/**
 * @file
 * Custom gtest entry point: identical to gtest_main plus the
 * `--update-golden` flag (or ACCORDION_UPDATE_GOLDEN=1 in the
 * environment), which makes the golden-value regression tests
 * rewrite their checked-in CSVs from the current build instead of
 * comparing against them. See test_golden_figures.cpp.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "golden_mode.hpp"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-golden") == 0)
            accordion::test::updateGoldenFlag() = true;
    if (const char *env = std::getenv("ACCORDION_UPDATE_GOLDEN"))
        if (env[0] != '\0' && env[0] != '0')
            accordion::test::updateGoldenFlag() = true;
    return RUN_ALL_TESTS();
}
