/**
 * @file
 * Tests of the profiling/telemetry additions to the obs layer: the
 * sampling profiler (pure folding, start/stop lifecycle, real
 * SIGPROF sampling of a busy loop, coexistence with the thread
 * pool, trace-sample injection), scoped StatsDomain merge
 * semantics, and the Prometheus metrics exporter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "test_json.hpp"
#include "util/thread_pool.hpp"

namespace obs = accordion::obs;
namespace util = accordion::util;

namespace {

using testjson::Json;
using testjson::JsonParser;

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Burn CPU for roughly @p ns wall nanoseconds (spinning, so CPU
 *  time tracks wall time and the CPU-clock sampler fires). */
volatile double busySink = 0.0;
void
burnCpu(std::uint64_t ns)
{
    const std::uint64_t t0 = obs::nowNs();
    double acc = busySink;
    while (obs::nowNs() - t0 < ns)
        for (int i = 0; i < 1000; ++i)
            acc += static_cast<double>(i) * 1e-9;
    busySink = acc;
}

// ---------------------------------------------------------------
// SamplingProfiler
// ---------------------------------------------------------------

TEST(Profiler, FoldSymbolizedAggregatesRootFirst)
{
    // Input stacks are leaf-first (backtrace order); folded output
    // is root-first, semicolon-joined, count-aggregated.
    const std::vector<std::vector<std::string>> stacks = {
        {"leaf", "mid", "root"},
        {"leaf", "mid", "root"},
        {"other", "root"},
        {"solo"},
    };
    const auto folded = obs::SamplingProfiler::foldSymbolized(stacks);
    ASSERT_EQ(folded.size(), 3u);
    EXPECT_EQ(folded[0].stack, "root;mid;leaf");
    EXPECT_EQ(folded[0].count, 2u);
    // Ties sort by stack string ascending.
    EXPECT_EQ(folded[1].stack, "root;other");
    EXPECT_EQ(folded[1].count, 1u);
    EXPECT_EQ(folded[2].stack, "solo");
    EXPECT_EQ(folded[2].count, 1u);
}

TEST(Profiler, FoldSymbolizedEmptyInput)
{
    EXPECT_TRUE(obs::SamplingProfiler::foldSymbolized({}).empty());
}

#if defined(__linux__)

TEST(Profiler, StartStopLifecycleAndExclusivity)
{
    obs::SamplingProfiler first;
    obs::SamplingProfiler second;
    ASSERT_TRUE(first.start());
    EXPECT_TRUE(first.running());
    // Idempotent on the running instance, exclusive across
    // instances (SIGPROF is process-global).
    EXPECT_FALSE(first.start());
    EXPECT_TRUE(first.running());
    EXPECT_FALSE(second.start());
    EXPECT_FALSE(second.running());
    first.stop();
    EXPECT_FALSE(first.running());
    first.stop(); // idempotent
    // A stopped profiler releases the process latch: restart works.
    ASSERT_TRUE(second.start());
    second.stop();
}

TEST(Profiler, SamplesBusyLoopAndFoldsStacks)
{
    obs::SamplingProfiler profiler;
    obs::ProfilerOptions options;
    options.intervalUs = 500;
    ASSERT_TRUE(profiler.start(options));
    burnCpu(300000000ull); // ~300 ms of spinning
    profiler.stop();

    EXPECT_GT(profiler.sampleCount(), 5u);
    EXPECT_GE(profiler.sampledThreads(), 1u);

    const auto folded = profiler.folded();
    ASSERT_FALSE(folded.empty());
    std::uint64_t total = 0;
    for (const obs::FoldedStack &f : folded) {
        EXPECT_FALSE(f.stack.empty());
        EXPECT_GT(f.count, 0u);
        total += f.count;
    }
    EXPECT_EQ(total, profiler.sampleCount());

    // Every foldedText line is "stack count".
    std::istringstream text(profiler.foldedText());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(text, line)) {
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(space, 0u);
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        ++lines;
    }
    EXPECT_EQ(lines, folded.size());

    // Self times: fractions over *all* symbols sum to ~1.
    const auto self = profiler.selfTimes(1u << 20);
    ASSERT_FALSE(self.empty());
    double fraction_total = 0.0;
    for (std::size_t i = 0; i < self.size(); ++i) {
        fraction_total += self[i].fraction;
        if (i > 0)
            EXPECT_GE(self[i - 1].samples, self[i].samples);
    }
    EXPECT_NEAR(fraction_total, 1.0, 1e-9);
    EXPECT_EQ(profiler.selfTimes(1).size(), 1u);

    // Samples survive stop() and reach disk.
    const std::string path = tempPath("profiler_busy.folded");
    ASSERT_TRUE(profiler.writeFolded(path));
    EXPECT_FALSE(readFile(path).empty());
}

TEST(Profiler, SamplesUnderThreadPoolWork)
{
    // SIGPROF delivery while pool workers are parked on the queue
    // condvar (and while they compute) must not deadlock, crash, or
    // corrupt samples.
    util::ThreadPool pool(3);
    obs::SamplingProfiler profiler;
    obs::ProfilerOptions options;
    options.intervalUs = 500;
    ASSERT_TRUE(profiler.start(options));
    pool.parallelFor(0, 64,
                     [](std::size_t) { burnCpu(3000000ull); });
    profiler.stop();
    EXPECT_GT(profiler.sampleCount(), 0u);
    EXPECT_EQ(
        profiler.sampleCount(),
        [&] {
            std::uint64_t n = 0;
            for (const obs::FoldedStack &f : profiler.folded())
                n += f.count;
            return n;
        }());
}

TEST(Profiler, InjectsTraceSamplesAsInstantEvents)
{
    const std::string path = tempPath("profiler_trace.json");
    obs::SamplingProfiler profiler;
    obs::ProfilerOptions options;
    options.intervalUs = 500;
    std::size_t injected = 0;
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        ASSERT_TRUE(profiler.start(options));
        burnCpu(100000000ull);
        profiler.stop();
        injected = profiler.injectTraceSamples(&trace);
        EXPECT_EQ(injected, profiler.sampleCount());
        trace.close();
    }
    ASSERT_GT(injected, 0u);

    const Json root = JsonParser(readFile(path)).parse();
    std::size_t instants = 0;
    for (const Json &event : root.at("traceEvents").items)
        if (event.at("ph").text == "i") {
            EXPECT_EQ(event.at("cat").text, "profiler");
            EXPECT_FALSE(event.at("name").text.empty());
            ++instants;
        }
    EXPECT_EQ(instants, injected);
    EXPECT_EQ(profiler.injectTraceSamples(nullptr), 0u);
}

#endif // __linux__

// ---------------------------------------------------------------
// StatsDomain
// ---------------------------------------------------------------

TEST(StatsDomain, MergesIntoParentOnScopeExit)
{
    obs::StatsRegistry parent(true);
    parent.counter("domain.hits").add(10);
    {
        obs::StatsDomain domain(parent, "scope");
        domain.counter("domain.hits").add(5);
        domain.counter("domain.fresh").add(2);
        // Not yet merged: the parent sees only its own counts.
        EXPECT_EQ(parent.counter("domain.hits").value(), 10u);
    }
    EXPECT_EQ(parent.counter("domain.hits").value(), 15u);
    EXPECT_EQ(parent.counter("domain.fresh").value(), 2u);
}

TEST(StatsDomain, MergeIsIdempotentAndStopsForwarding)
{
    obs::StatsRegistry parent(true);
    obs::StatsDomain domain(parent, "scope");
    obs::Counter hits = domain.counter("domain.hits");
    hits.add(3);
    domain.merge();
    EXPECT_EQ(parent.counter("domain.hits").value(), 3u);
    // Updates after merge() stay local; a second merge (and the
    // destructor) must not double-count.
    hits.add(100);
    domain.merge();
    EXPECT_EQ(parent.counter("domain.hits").value(), 3u);
}

TEST(StatsDomain, DiscardDropsEverything)
{
    obs::StatsRegistry parent(true);
    {
        obs::StatsDomain domain(parent, "scope");
        domain.counter("domain.hits").add(7);
        domain.discard();
    }
    EXPECT_EQ(parent.counter("domain.hits").value(), 0u);
}

TEST(StatsDomain, NestedDomainsCascade)
{
    obs::StatsRegistry parent(true);
    {
        obs::StatsDomain outer(parent, "outer");
        {
            obs::StatsDomain inner(outer, "inner");
            inner.counter("domain.hits").add(4);
        }
        // Cascaded one level: the outer domain holds it now.
        EXPECT_EQ(parent.counter("domain.hits").value(), 0u);
        EXPECT_EQ(outer.counter("domain.hits").value(), 4u);
    }
    EXPECT_EQ(parent.counter("domain.hits").value(), 4u);
}

TEST(StatsDomain, DisabledParentDisengagesHandles)
{
    obs::StatsRegistry parent(false);
    obs::StatsDomain domain(parent, "scope");
    obs::Counter hits = domain.counter("domain.hits");
    EXPECT_FALSE(static_cast<bool>(hits));
    hits.add(9); // no-op, must not crash
    domain.merge();
    EXPECT_EQ(parent.size(), 0u);
}

TEST(StatsDomain, MergesGaugesAndDistributionsBySemantics)
{
    obs::StatsRegistry parent(true);
    parent.gauge("domain.level").set(1.0);
    parent.distribution("domain.lat").add(10.0);
    {
        obs::StatsDomain domain(parent, "scope");
        domain.gauge("domain.level").set(2.5); // latest wins
        domain.distribution("domain.lat").add(30.0);
        domain.distribution("domain.lat").add(20.0);
    }
    EXPECT_EQ(parent.gauge("domain.level").value(), 2.5);
    for (const obs::StatEntry &e : parent.snapshot()) {
        if (e.name != "domain.lat")
            continue;
        EXPECT_EQ(e.kind, obs::StatKind::Distribution);
        EXPECT_EQ(e.count, 3u);
        EXPECT_EQ(e.sum, 60.0);
        EXPECT_EQ(e.min, 10.0);
        EXPECT_EQ(e.max, 30.0);
        ASSERT_EQ(e.samples.size(), 3u); // pooled, sorted
        EXPECT_EQ(e.samples[0], 10.0);
        EXPECT_EQ(e.samples[2], 30.0);
    }
}

// ---------------------------------------------------------------
// MetricsExporter
// ---------------------------------------------------------------

TEST(MetricsExporter, SanitizesMetricNames)
{
    EXPECT_EQ(obs::prometheusMetricName("pool.tasks"),
              "accordion_pool_tasks");
    EXPECT_EQ(obs::prometheusMetricName("time.phase_ns"),
              "accordion_time_phase_ns");
    EXPECT_EQ(obs::prometheusMetricName("weird-name!"),
              "accordion_weird_name_");
}

TEST(MetricsExporter, RendersAllKindsAsPrometheusText)
{
    std::vector<obs::StatEntry> entries(3);
    entries[0].name = "pool.tasks";
    entries[0].kind = obs::StatKind::Counter;
    entries[0].count = 42;
    entries[1].name = "pool.workers";
    entries[1].kind = obs::StatKind::Gauge;
    entries[1].value = 8.0;
    entries[2].name = "time.phase_ns";
    entries[2].kind = obs::StatKind::Distribution;
    entries[2].count = 2;
    entries[2].sum = 30.0;
    entries[2].min = 10.0;
    entries[2].max = 20.0;
    entries[2].samples = {10.0, 20.0};

    const std::string text = obs::prometheusText(entries);
    EXPECT_NE(text.find("# TYPE accordion_pool_tasks counter\n"
                        "accordion_pool_tasks 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE accordion_pool_workers gauge\n"
                        "accordion_pool_workers 8\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE accordion_time_phase_ns summary"),
              std::string::npos);
    EXPECT_NE(text.find("accordion_time_phase_ns{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("accordion_time_phase_ns_sum 30\n"),
              std::string::npos);
    EXPECT_NE(text.find("accordion_time_phase_ns_count 2\n"),
              std::string::npos);
}

TEST(MetricsExporter, FlushesExpositionFileAtomically)
{
    obs::StatsRegistry registry(true);
    obs::Counter hits = registry.counter("syscache.hits");
    hits.add(5);

    const std::string path = tempPath("metrics.prom");
    obs::MetricsExporter::Options options;
    options.path = path;
    options.intervalMs = 3600000; // flushes driven by hand below
    obs::MetricsExporter exporter(registry, options);
    ASSERT_TRUE(exporter.ok());
    EXPECT_GE(exporter.flushes(), 1u); // constructor flushed
    EXPECT_NE(readFile(path).find("accordion_syscache_hits 5"),
              std::string::npos);

    hits.add(2);
    exporter.flushNow();
    EXPECT_NE(readFile(path).find("accordion_syscache_hits 7"),
              std::string::npos);
    // No torn temp file left behind after a completed flush.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    exporter.stopAndFlush();
    exporter.stopAndFlush(); // idempotent
    EXPECT_TRUE(exporter.ok());
}

TEST(MetricsExporter, ReportsUnwritablePath)
{
    obs::StatsRegistry registry(true);
    registry.counter("pool.tasks").add(1);
    obs::MetricsExporter::Options options;
    options.path = "/nonexistent-dir/x/metrics.prom";
    options.intervalMs = 1; // a live flusher would spin here
    obs::MetricsExporter exporter(registry, options);
    // The constructor's immediate flush fails fast: ok() false, no
    // background thread to stop, and later flushes never retry the
    // dead file (or crash) — they just skip it.
    EXPECT_FALSE(exporter.ok());
    exporter.flushNow();
    EXPECT_FALSE(exporter.ok());
    exporter.stopAndFlush();
    exporter.stopAndFlush(); // idempotent on the failed path too
    EXPECT_FALSE(exporter.ok());
}

TEST(MetricsExporter, MirrorsHwStatsIntoTraceUnconditionally)
{
    // hw.* counters AND gauges ride into the trace without being
    // listed in traceCounters — they exist only under --events, so
    // they are always wanted when present.
    obs::StatsRegistry registry(true);
    registry.counter("hw.scenario.instructions").add(1000);
    registry.gauge("hw.scenario.ipc").set(1.5);
    registry.counter("not.mirrored").add(3);

    const std::string path = tempPath("metrics_hw_trace.json");
    ASSERT_TRUE(obs::TraceWriter::openGlobal(path));
    {
        obs::MetricsExporter::Options options; // no file: trace only
        options.intervalMs = 3600000;
        obs::MetricsExporter exporter(registry, options);
        exporter.stopAndFlush();
    }
    obs::TraceWriter::closeGlobal();

    const Json root = JsonParser(readFile(path)).parse();
    bool saw_counter = false, saw_gauge = false;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "C")
            continue;
        const std::string &name = event.at("name").text;
        EXPECT_NE(name, "not.mirrored");
        if (name == "hw.scenario.instructions") {
            EXPECT_EQ(event.at("args").at("value").number, 1000.0);
            saw_counter = true;
        } else if (name == "hw.scenario.ipc") {
            EXPECT_EQ(event.at("args").at("value").number, 1.5);
            saw_gauge = true;
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);
}

TEST(MetricsExporter, MirrorsConfiguredCountersIntoTrace)
{
    obs::StatsRegistry registry(true);
    registry.counter("pool.tasks").add(11);
    registry.counter("not.mirrored").add(3);

    const std::string path = tempPath("metrics_trace.json");
    ASSERT_TRUE(obs::TraceWriter::openGlobal(path));
    {
        obs::MetricsExporter::Options options; // no file: trace only
        options.intervalMs = 3600000;
        obs::MetricsExporter exporter(registry, options);
        exporter.stopAndFlush();
    }
    obs::TraceWriter::closeGlobal();

    const Json root = JsonParser(readFile(path)).parse();
    std::size_t mirrored = 0;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "C")
            continue;
        EXPECT_EQ(event.at("name").text, "pool.tasks");
        EXPECT_EQ(event.at("args").at("value").number, 11.0);
        ++mirrored;
    }
    EXPECT_GE(mirrored, 2u); // constructor flush + final flush
}

} // namespace
