/**
 * @file
 * A minimal JSON reader shared by the test suites: objects, arrays,
 * strings (with backslash escapes), numbers, true/false/null. Just
 * enough to parse back the artifacts the repo writes — Chrome
 * traces, run_summary.json, perf snapshots and compare verdicts —
 * without a third-party dependency. Tests only; production parsing
 * lives in src/obs/snapshot.cpp.
 */

#ifndef ACCORDION_TESTS_TEST_JSON_HPP
#define ACCORDION_TESTS_TEST_JSON_HPP

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace testjson {

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object };

    Type type = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return fields.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return value;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' got '" + text_[pos_] + "'");
        ++pos_;
    }

    Json parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            Json v;
            v.type = Json::String;
            v.text = parseString();
            return v;
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            Json v;
            v.type = Json::Bool;
            v.boolean = true;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            Json v;
            v.type = Json::Bool;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Json{};
        }
        return parseNumber();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                c = text_[pos_++];
                switch (c) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u':
                    // \uXXXX: decode as a raw byte; the writer only
                    // emits these for control characters.
                    c = static_cast<char>(
                        std::stoi(text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                default: break; // quote, backslash, slash: keep c
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    Json parseNumber()
    {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            throw std::runtime_error("bad number");
        Json v;
        v.type = Json::Number;
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    Json parseArray()
    {
        expect('[');
        Json v;
        v.type = Json::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or ] in array");
        }
    }

    Json parseObject()
    {
        expect('{');
        Json v;
        v.type = Json::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            const std::string key = parseString();
            expect(':');
            v.fields[key] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or } in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace testjson

#endif // ACCORDION_TESTS_TEST_JSON_HPP
