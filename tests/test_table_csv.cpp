/**
 * @file
 * Tests of the bench-output helpers: ASCII tables and CSV emission.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

using namespace accordion::util;

TEST(Table, AlignsColumns)
{
    Table t({"a", "long-header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide-cell", "x", "y"});
    const std::string out = t.render();
    std::istringstream in(out);
    std::string header, rule, row1, row2;
    std::getline(in, header);
    std::getline(in, rule);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_NE(header.find("long-header"), std::string::npos);
    EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
    // The second column starts at the same offset in every row.
    EXPECT_EQ(header.find("long-header"), row1.find('2'));
    EXPECT_EQ(header.find("long-header"), row2.find('x'));
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(formatG(0.125), "0.125");
    EXPECT_EQ(formatG(1234567.0), "1.235e+06");
}

TEST(Csv, WritesQuotedRows)
{
    const std::string path = ::testing::TempDir() + "/accordion_test.csv";
    {
        CsvWriter csv(path, {"name", "value"});
        csv.addRow(std::vector<std::string>{"plain", "1"});
        csv.addRow(std::vector<std::string>{"with,comma", "quo\"te"});
        csv.addRow(std::vector<double>{1.5, 2.25});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,value");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",\"quo\"\"te\"");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.25");
    std::remove(path.c_str());
}

TEST(Csv, ReadRoundTripsWriter)
{
    const std::string path =
        ::testing::TempDir() + "/accordion_roundtrip.csv";
    {
        CsvWriter csv(path, {"name", "value"});
        csv.addRow(std::vector<std::string>{"plain", "1"});
        csv.addRow(std::vector<std::string>{"with,comma", "quo\"te"});
    }
    const CsvFile file = readCsv(path);
    ASSERT_EQ(file.header,
              (std::vector<std::string>{"name", "value"}));
    ASSERT_EQ(file.rows.size(), 2u);
    EXPECT_EQ(file.rows[0],
              (std::vector<std::string>{"plain", "1"}));
    EXPECT_EQ(file.rows[1],
              (std::vector<std::string>{"with,comma", "quo\"te"}));
    EXPECT_EQ(file.column("value"), 1u);
    std::remove(path.c_str());
}

TEST(CsvDeathTest, UnknownColumnIsFatal)
{
    CsvFile file;
    file.header = {"a", "b"};
    EXPECT_EXIT(file.column("missing"),
                ::testing::ExitedWithCode(1), "no column named");
}

TEST(CsvDeathTest, DuplicateColumnIsFatal)
{
    CsvFile file;
    file.header = {"a", "b", "a"};
    EXPECT_EQ(file.column("b"), 1u);
    EXPECT_EXIT(file.column("a"), ::testing::ExitedWithCode(1),
                "duplicate column 'a'");
}

TEST(CsvDeathTest, WriteErrorOnCloseIsFatal)
{
    // /dev/full accepts the open but fails every flush: without the
    // close-time check a full disk would truncate CSVs silently.
    if (!std::ifstream("/dev/full").good())
        GTEST_SKIP() << "/dev/full not available";
    EXPECT_EXIT(
        {
            CsvWriter csv("/dev/full", {"a"});
            for (int i = 0; i < 100000; ++i)
                csv.addRow(std::vector<std::string>{"row"});
            csv.close();
        },
        ::testing::ExitedWithCode(1), "write error");
}

TEST(Csv, CloseIsIdempotentAndMoveSafe)
{
    const std::string path =
        ::testing::TempDir() + "/accordion_close.csv";
    CsvWriter csv(path, {"a"});
    csv.addRow(std::vector<std::string>{"1"});
    CsvWriter moved = std::move(csv);
    moved.addRow(std::vector<std::string>{"2"});
    moved.close();
    moved.close(); // second close is a no-op
    const CsvFile file = readCsv(path);
    EXPECT_EQ(file.rows.size(), 2u);
    std::remove(path.c_str());
}
