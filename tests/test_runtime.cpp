/**
 * @file
 * Tests of the CC/DC master-slave runtime: watchdog detection and
 * recovery, mailbox protection domains, quality limits, and the
 * Fig. 3 organization trade-offs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.hpp"

using namespace accordion::core;

namespace {

std::vector<WorkItem>
makeItems(std::size_t n)
{
    std::vector<WorkItem> items(n);
    for (std::size_t i = 0; i < n; ++i)
        items[i] = {i, static_cast<double>(i)};
    return items;
}

double
square(const WorkItem &item)
{
    return item.input * item.input;
}

} // namespace

TEST(Runtime, FaultFreeCompletesEverything)
{
    AccordionRuntime runtime{RuntimeParams{}};
    const auto report = runtime.execute(makeItems(100), square);
    EXPECT_EQ(report.completed, 100u);
    EXPECT_EQ(report.recovered, 0u);
    EXPECT_EQ(report.dropped, 0u);
    EXPECT_EQ(report.watchdogFires, 0u);
    ASSERT_EQ(report.results.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(*report.resultOf[i],
                         static_cast<double>(i * i));
}

TEST(Runtime, ResultsPreserveItemOrder)
{
    AccordionRuntime runtime{RuntimeParams{}};
    const auto report = runtime.execute(makeItems(20), square);
    for (std::size_t i = 1; i < report.results.size(); ++i)
        EXPECT_GT(report.results[i], report.results[i - 1]);
}

TEST(Runtime, WatchdogDetectsHangsAndRecovers)
{
    AccordionRuntime runtime{RuntimeParams{}};
    DcFaultModel faults;
    faults.hangProbability = 0.2;
    faults.seed = 7;
    const auto report = runtime.execute(makeItems(200), square, faults);
    EXPECT_GT(report.watchdogFires, 10u);
    EXPECT_GT(report.recovered, 0u);
    // One retry swallows most single hangs.
    EXPECT_LT(report.dropped, report.watchdogFires);
    EXPECT_EQ(report.completed + report.recovered + report.dropped,
              200u);
}

TEST(Runtime, ExhaustedRetriesBecomeDrops)
{
    RuntimeParams params;
    params.maxRetries = 0;
    AccordionRuntime runtime{params};
    DcFaultModel faults;
    faults.hangProbability = 0.3;
    faults.seed = 8;
    const auto report = runtime.execute(makeItems(200), square, faults);
    EXPECT_EQ(report.dropped, report.watchdogFires);
    EXPECT_EQ(report.recovered, 0u);
    EXPECT_EQ(report.results.size(), 200u - report.dropped);
}

TEST(Runtime, HangsCostWatchdogTime)
{
    AccordionRuntime clean{RuntimeParams{}};
    const double t_clean =
        clean.execute(makeItems(100), square).virtualTime;
    DcFaultModel faults;
    faults.hangProbability = 0.3;
    faults.seed = 9;
    const double t_faulty =
        clean.execute(makeItems(100), square, faults).virtualTime;
    EXPECT_GT(t_faulty, t_clean);
}

TEST(Runtime, QualityLimitTreatsOffendersLikeCrashes)
{
    RuntimeParams params;
    params.acceptable = [](double v) {
        return std::isfinite(v) && std::abs(v) < 1e5;
    };
    params.maxRetries = 0;
    AccordionRuntime runtime{params};
    DcFaultModel faults;
    faults.corruptProbability = 0.25;
    faults.corruptMagnitude = 1e7;
    faults.seed = 10;
    const auto report = runtime.execute(makeItems(200), square, faults);
    EXPECT_GT(report.qualityRejects, 20u);
    EXPECT_EQ(report.dropped, report.qualityRejects);
    // Survivors are untainted.
    for (double v : report.results)
        EXPECT_LT(std::abs(v), 1e5);
}

TEST(Runtime, CorruptionWithoutLimitReachesOutput)
{
    // Without a preset quality limit, corrupted end results surface
    // in the merged output — outcome class (iii).
    AccordionRuntime runtime{RuntimeParams{}};
    DcFaultModel faults;
    faults.corruptProbability = 0.25;
    faults.seed = 11;
    const auto report = runtime.execute(makeItems(100), square, faults);
    EXPECT_EQ(report.dropped, 0u);
    int corrupted = 0;
    for (std::size_t i = 0; i < 100; ++i)
        corrupted += std::abs(*report.resultOf[i] -
                              static_cast<double>(i * i)) > 1.0;
    EXPECT_GT(corrupted, 10);
}

TEST(Runtime, DeterministicGivenSeed)
{
    AccordionRuntime runtime{RuntimeParams{}};
    DcFaultModel faults;
    faults.hangProbability = 0.1;
    faults.corruptProbability = 0.05;
    faults.seed = 12;
    const auto a = runtime.execute(makeItems(150), square, faults);
    const auto b = runtime.execute(makeItems(150), square, faults);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.watchdogFires, b.watchdogFires);
    EXPECT_DOUBLE_EQ(a.virtualTime, b.virtualTime);
}

TEST(Runtime, MoreDcsRunFaster)
{
    RuntimeParams small;
    small.numDcs = 4;
    RuntimeParams big;
    big.numDcs = 16;
    const auto items = makeItems(160);
    const double t_small =
        AccordionRuntime{small}.execute(items, square).virtualTime;
    const double t_big =
        AccordionRuntime{big}.execute(items, square).virtualTime;
    EXPECT_LT(t_big, t_small);
}

TEST(Runtime, RejectsDegenerateConfigs)
{
    RuntimeParams no_dcs;
    no_dcs.numDcs = 0;
    EXPECT_EXIT(AccordionRuntime{no_dcs}, ::testing::ExitedWithCode(1),
                "DC");
    RuntimeParams no_ccs;
    no_ccs.numCcs = 0;
    EXPECT_EXIT(AccordionRuntime{no_ccs}, ::testing::ExitedWithCode(1),
                "CC");
}

TEST(Mailbox, EnforcesProtectionDomains)
{
    Mailbox mailbox(4);
    mailbox.post(2, 2, 1.5);
    EXPECT_DOUBLE_EQ(*mailbox.collect(2), 1.5);
    EXPECT_FALSE(mailbox.collect(2).has_value()); // cleared
    EXPECT_FALSE(mailbox.collect(0).has_value());
    // A DC writing a foreign slot is a protection violation.
    EXPECT_DEATH(mailbox.post(1, 3, 0.0), "protection violation");
}

TEST(Organizations, TraitsMatchFig3)
{
    const auto spatial =
        organizationTraits(Organization::HomogeneousSpatial);
    const auto muxed =
        organizationTraits(Organization::HomogeneousTimeMultiplexed);
    const auto hetero =
        organizationTraits(Organization::HeterogeneousClusters);
    // (b) costs throughput; (a) and (c) do not.
    EXPECT_GT(muxed.multiplexOverhead, 0.0);
    EXPECT_EQ(spatial.multiplexOverhead, 0.0);
    // (c) has faster but bigger, fixed-count CCs.
    EXPECT_GT(hetero.ccSpeedFactor, spatial.ccSpeedFactor);
    EXPECT_GT(hetero.ccAreaFactor, 1.0);
    EXPECT_TRUE(hetero.ccCountFixed);
    EXPECT_FALSE(spatial.ccCountFixed);
}

TEST(Organizations, TimeMultiplexedIsSlowerThanSpatial)
{
    RuntimeParams spatial;
    spatial.organization = Organization::HomogeneousSpatial;
    RuntimeParams muxed = spatial;
    muxed.organization = Organization::HomogeneousTimeMultiplexed;
    const auto items = makeItems(200);
    EXPECT_LT(
        AccordionRuntime{spatial}.execute(items, square).virtualTime,
        AccordionRuntime{muxed}.execute(items, square).virtualTime);
}

TEST(Organizations, HeterogeneousMergesFaster)
{
    RuntimeParams spatial;
    spatial.organization = Organization::HomogeneousSpatial;
    spatial.mergeCostPerItem = 0.2; // make merge time visible
    RuntimeParams hetero = spatial;
    hetero.organization = Organization::HeterogeneousClusters;
    const auto items = makeItems(200);
    const auto rs = AccordionRuntime{spatial}.execute(items, square);
    const auto rh = AccordionRuntime{hetero}.execute(items, square);
    EXPECT_LT(rh.ccBusyTime, rs.ccBusyTime);
}

TEST(Organizations, Names)
{
    EXPECT_NE(organizationName(Organization::HomogeneousSpatial)
                  .find("3a"),
              std::string::npos);
    EXPECT_NE(organizationName(Organization::HeterogeneousClusters)
                  .find("3c"),
              std::string::npos);
}
