/**
 * @file
 * Tests of the statistics helpers: online moments, percentiles,
 * histograms, fits, and the normal-distribution functions the
 * timing-error model depends on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace accordion::util;

TEST(OnlineStats, Empty)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombined)
{
    OnlineStats a, b, all;
    Rng rng(1, 0);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal(3.0, 2.0);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, OrderStatistics)
{
    std::vector<double> v = {5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(VectorStats, MeanStddevGeomean)
{
    std::vector<double> v = {1.0, 2.0, 4.0, 8.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.75);
    EXPECT_NEAR(stddev(v), 3.095695936834452, 1e-12);
    EXPECT_NEAR(geomean(v), 2.8284271247461903, 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-5.0); // clamps into first bin
    h.add(42.0); // clamps into last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.countAt(0), 2u);
    EXPECT_EQ(h.countAt(9), 2u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(9), 10.0);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 5; ++i)
        h.add(0.25);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(FitLinear, ExactLine)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {3, 5, 7, 9}; // y = 1 + 2x
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineHasLowerR2)
{
    std::vector<double> xs, ys;
    Rng rng(2, 0);
    for (int i = 0; i < 100; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + 10.0 * rng.normal());
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.2);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_GT(fit.r2, 0.8);
}

TEST(FitPowerLaw, RecoversExponent)
{
    std::vector<double> xs, ys;
    for (double x = 1.0; x <= 32.0; x *= 2.0) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.7));
    }
    const LinearFit fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.slope, 1.7, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
}

TEST(NormalQuantile, InvertsCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                     0.999}) {
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-7)
            << "p=" << p;
    }
}

TEST(NormalQuantile, ExtremeTails)
{
    // The SRAM model uses quantiles around 1e-7.
    const double z = normalQuantile(1e-7);
    EXPECT_NEAR(normalCdf(z), 1e-7, 1e-9);
    EXPECT_LT(z, -5.0);
}

TEST(LogNormalCdf, MatchesLogOfCdfInBody)
{
    for (double x : {-6.0, -3.0, -1.0, 0.0, 1.0, 3.0})
        EXPECT_NEAR(logNormalCdf(x), std::log(normalCdf(x)), 1e-6)
            << "x=" << x;
}

TEST(LogNormalCdf, DeepTailIsFiniteAndMonotone)
{
    // Far below where Phi underflows, log Phi must stay finite and
    // decreasing — this is what lets Perr reach 1e-300 territory.
    double prev = logNormalCdf(-10.0);
    for (double x = -12.0; x >= -40.0; x -= 2.0) {
        const double v = logNormalCdf(x);
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_LT(v, prev);
        prev = v;
    }
    // Cross-check against the known asymptotic at -20.
    EXPECT_NEAR(logNormalCdf(-20.0), -203.9172, 0.01);
}

TEST(NormalInvCdf, RoundTripsThroughErfcAcrossTheTail)
{
    // The closed-form error-rate inversion needs upper-tail
    // quantiles accurate far past where 1 - p is representable.
    for (double q : {0.5, 0.4, 0.1, 0.02, 1e-3, 1e-6, 1e-10, 1e-15,
                     1e-30, 1e-100, 1e-250}) {
        const double z = normalInvCdfUpper(q);
        const double back = 0.5 * std::erfc(z / std::sqrt(2.0));
        EXPECT_NEAR(back / q, 1.0, 1e-9) << "q=" << q;
    }
}

TEST(NormalInvCdf, ReflectsAroundTheMedian)
{
    EXPECT_NEAR(normalInvCdfUpper(0.5), 0.0, 1e-12);
    // 0.75's complement is exact in binary, so the reflection is
    // bit-exact.
    EXPECT_EQ(normalInvCdfUpper(0.75), -normalInvCdfUpper(0.25));
    // Phi^-1(p) is the mirror of the upper-tail quantile.
    EXPECT_NEAR(normalInvCdf(0.975), 1.959963984540054, 1e-9);
    EXPECT_NEAR(normalInvCdf(0.025), -1.959963984540054, 1e-9);
}

TEST(NormalInvCdf, AgreesWithLowPrecisionQuantileInTheBody)
{
    for (double p : {0.05, 0.2, 0.5, 0.8, 0.95})
        EXPECT_NEAR(normalInvCdf(p), normalQuantile(p), 2e-7)
            << "p=" << p;
}

TEST(NormalInvCdf, RejectsOutOfRange)
{
    EXPECT_EXIT(normalInvCdfUpper(0.0), ::testing::ExitedWithCode(1),
                "q");
    EXPECT_EXIT(normalInvCdf(1.0), ::testing::ExitedWithCode(1),
                "p");
}
