/**
 * @file
 * Unit and stress tests of the fixed-size thread pool that carries
 * the parallel sweep layer. The determinism contract itself (same
 * bits at any thread count) is exercised end-to-end in
 * test_parallel_determinism.cpp; this file covers the pool
 * mechanics: range handling, exception propagation, nested calls,
 * submit futures, and a 10k-task stress case.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using accordion::util::Rng;
using accordion::util::ThreadPool;

TEST(ThreadPool, SizeClampsZeroToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    pool.parallelFor(7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForSingleElement)
{
    ThreadPool pool(4);
    std::vector<std::size_t> seen;
    pool.parallelFor(41, 42,
                     [&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 41u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    // One slot per index: each iteration touches only its own slot,
    // which is exactly the write discipline the sweeps use.
    std::vector<int> visits(n, 0);
    pool.parallelFor(0, n, [&](std::size_t i) { visits[i] += 1; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForStressCounter)
{
    // The 10k-task counter stress: small chunks, atomic target.
    ThreadPool pool(8);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(0, 10000, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum, 10000ull * 9999ull / 2);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(0, 1000, [&](std::size_t i) {
            if (i == 123)
                throw std::runtime_error("boom at 123");
        });
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom at 123");
    }
}

TEST(ThreadPool, ParallelForExceptionOnCallerThreadPath)
{
    // Index 0 is typically claimed by the calling thread itself;
    // the throw must still surface as an ordinary exception.
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 4,
                                  [&](std::size_t) {
                                      throw std::logic_error("x");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, PoolSurvivesAndReusesAfterException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](std::size_t) {
                                      throw std::runtime_error("once");
                                  }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.parallelFor(0, 100, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok, 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorkers)
{
    // A nested parallelFor from inside a worker must not deadlock
    // and must still visit the full inner range. Inner iterations
    // that run on a worker execute inline (serially) there.
    ThreadPool pool(4);
    const std::size_t outer = 16, inner = 64;
    std::vector<std::vector<int>> visits(
        outer, std::vector<int>(inner, 0));
    pool.parallelFor(0, outer, [&](std::size_t i) {
        pool.parallelFor(0, inner, [&](std::size_t j) {
            visits[i][j] += 1;
        });
    });
    for (std::size_t i = 0; i < outer; ++i)
        for (std::size_t j = 0; j < inner; ++j)
            ASSERT_EQ(visits[i][j], 1) << i << "," << j;
}

TEST(ThreadPool, InWorkerIsFalseOnCaller)
{
    EXPECT_FALSE(ThreadPool::inWorker());
}

TEST(ThreadPool, SubmitRunsTask)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto future = pool.submit([&] { ran = 1; });
    future.get();
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future =
        pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, TenThousandSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> count{0};
    std::vector<std::future<void>> futures;
    futures.reserve(10000);
    for (int i = 0; i < 10000; ++i)
        futures.push_back(pool.submit(
            [&] { count.fetch_add(1, std::memory_order_relaxed); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(count, 10000u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ++done; });
    }
    EXPECT_EQ(done, 100);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvVar)
{
    ::setenv("ACCORDION_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ::setenv("ACCORDION_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ::unsetenv("ACCORDION_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPool, SetGlobalThreadsResizesGlobalPool)
{
    accordion::util::ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().size(), 3u);
    std::vector<int> visits(500, 0);
    accordion::util::parallelFor(
        0, visits.size(), [&](std::size_t i) { visits[i] += 1; });
    for (int v : visits)
        ASSERT_EQ(v, 1);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

TEST(ThreadPool, StreamAtIsThreadScheduleInvariant)
{
    // Per-index counter-based streams: the same draws land in the
    // same slots no matter how many workers run the loop.
    const std::size_t n = 256;
    std::vector<double> ref(n);
    for (std::size_t i = 0; i < n; ++i)
        ref[i] = Rng::streamAt(7, i).uniform();
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::vector<double> out(n);
        pool.parallelFor(0, n, [&](std::size_t i) {
            out[i] = Rng::streamAt(7, i).uniform();
        });
        EXPECT_EQ(out, ref) << threads << " threads";
    }
}
