/**
 * @file
 * Tests of the quality metrics (distortion, SSD, PSNR, SSIM,
 * common-image count) and the fault-injection plans.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault.hpp"
#include "quality/metrics.hpp"
#include "util/grid.hpp"
#include "util/rng.hpp"

using namespace accordion;
using namespace accordion::quality;
using namespace accordion::fault;

TEST(Distortion, ZeroForIdentical)
{
    const std::vector<double> v = {1.0, -2.0, 3.5};
    EXPECT_DOUBLE_EQ(distortion(v, v), 0.0);
    EXPECT_DOUBLE_EQ(relativeQuality(v, v), 1.0);
}

TEST(Distortion, MeanRelativeError)
{
    // Misailovic: average of per-value relative errors.
    const std::vector<double> ref = {10.0, 100.0};
    const std::vector<double> out = {11.0, 90.0};
    EXPECT_NEAR(distortion(out, ref), (0.1 + 0.1) / 2.0, 1e-12);
    EXPECT_NEAR(relativeQuality(out, ref), 0.9, 1e-12);
}

TEST(Distortion, TinyReferenceUsesAbsoluteError)
{
    const std::vector<double> ref = {0.0};
    const std::vector<double> out = {0.25};
    EXPECT_DOUBLE_EQ(distortion(out, ref), 0.25);
}

TEST(QualityMetrics, SsdAndMse)
{
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> b = {2, 2, 5};
    EXPECT_DOUBLE_EQ(ssd(a, b), 5.0);
    EXPECT_NEAR(mse(a, b), 5.0 / 3.0, 1e-12);
}

TEST(Psnr, CapsOnIdenticalSignals)
{
    const std::vector<double> v = {1, 2, 3};
    EXPECT_DOUBLE_EQ(psnr(v, v, 255.0), 60.0);
    EXPECT_DOUBLE_EQ(psnr(v, v, 255.0, 80.0), 80.0);
}

TEST(Psnr, KnownValue)
{
    const std::vector<double> ref = {0.0, 0.0};
    const std::vector<double> out = {10.0, 10.0}; // mse = 100
    EXPECT_NEAR(psnr(out, ref, 255.0),
                10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(Psnr, DecreasesWithNoise)
{
    util::Rng rng(1, 0);
    std::vector<double> ref(100);
    for (double &v : ref)
        v = rng.uniform(0, 255);
    auto noisy = [&](double sigma) {
        util::Rng nrng(2, 0);
        std::vector<double> out = ref;
        for (double &v : out)
            v += sigma * nrng.normal();
        return psnr(out, ref, 255.0);
    };
    EXPECT_GT(noisy(1.0), noisy(10.0));
}

TEST(Ssim, OneForIdenticalImages)
{
    util::Grid2D<double> img(16, 16, 0.0);
    util::Rng rng(3, 0);
    for (std::size_t i = 0; i < img.size(); ++i)
        img.flat(i) = rng.uniform(0, 255);
    EXPECT_NEAR(ssim(img, img, 255.0), 1.0, 1e-9);
}

TEST(Ssim, DegradesWithDistortionMonotonically)
{
    util::Grid2D<double> img(16, 16, 0.0);
    util::Rng rng(4, 0);
    for (std::size_t i = 0; i < img.size(); ++i)
        img.flat(i) = 128.0 + 60.0 * std::sin(0.3 * i);
    double prev = 1.0;
    for (double sigma : {2.0, 10.0, 40.0}) {
        util::Rng nrng(5, 0);
        util::Grid2D<double> noisy = img;
        for (std::size_t i = 0; i < noisy.size(); ++i)
            noisy.flat(i) += sigma * nrng.normal();
        const double s = ssim(img, noisy, 255.0);
        EXPECT_LT(s, prev);
        prev = s;
    }
    EXPECT_LT(prev, 0.8);
}

TEST(CommonCount, CountsIntersection)
{
    EXPECT_EQ(commonCount({1, 2, 3}, {3, 4, 1}), 2u);
    EXPECT_EQ(commonCount({1, 2}, {3, 4}), 0u);
    EXPECT_EQ(commonCount({1, 1, 2}, {1, 1, 1}), 1u); // de-duplicated
}

TEST(FaultPlan, NonePlanInfectsNothing)
{
    const FaultPlan plan;
    EXPECT_TRUE(plan.none());
    for (std::size_t t = 0; t < 64; ++t)
        EXPECT_FALSE(plan.infected(t, 64));
    EXPECT_EQ(plan.infectedCount(64), 0u);
}

TEST(FaultPlan, DropQuarterInfectsExactQuarter)
{
    const FaultPlan plan = FaultPlan::dropQuarter();
    std::size_t infected = 0;
    for (std::size_t t = 0; t < 64; ++t)
        infected += plan.infected(t, 64);
    EXPECT_EQ(infected, 16u);
    EXPECT_EQ(plan.infectedCount(64), 16u);
    EXPECT_TRUE(plan.drops());
}

TEST(FaultPlan, DropHalfInfectsExactHalf)
{
    const FaultPlan plan = FaultPlan::dropHalf();
    std::size_t infected = 0;
    for (std::size_t t = 0; t < 64; ++t)
        infected += plan.infected(t, 64);
    EXPECT_EQ(infected, 32u);
}

TEST(FaultPlan, InfectionIsUniformlySpread)
{
    // "the tasks are uniformly dropped": no run of 4 consecutive
    // threads may contain more than 2 infected under Drop 1/4.
    const FaultPlan plan = FaultPlan::dropQuarter();
    for (std::size_t start = 0; start + 4 <= 64; ++start) {
        std::size_t infected = 0;
        for (std::size_t t = start; t < start + 4; ++t)
            infected += plan.infected(t, 64);
        EXPECT_LE(infected, 2u) << "window at " << start;
    }
}

TEST(FaultPlan, FractionOneInfectsAll)
{
    const FaultPlan plan(ErrorMode::Drop, 1.0);
    for (std::size_t t = 0; t < 16; ++t)
        EXPECT_TRUE(plan.infected(t, 16));
}

TEST(FaultPlan, CountMatchesMarkedIndicesForAdversarialFractions)
{
    // Regression for floating-point rounding at fraction
    // boundaries: for every fraction, the per-index marks and the
    // aggregate count must agree — they derive from the same
    // cumulative quota, which telescopes exactly.
    for (double fraction : {1.0 / 3.0, 0.1, 0.25, 0.3, 0.7, 0.999,
                            1e-9, 1.0 - 1e-12}) {
        const FaultPlan plan(ErrorMode::Drop, fraction);
        for (std::size_t n : {1u, 7u, 288u}) {
            std::size_t marked = 0;
            for (std::size_t t = 0; t < n; ++t)
                marked += plan.infected(t, n);
            EXPECT_EQ(marked, plan.infectedCount(n))
                << "fraction " << fraction << ", n " << n;
        }
    }
}

TEST(FaultPlan, ExactProductsRoundUpNotDown)
{
    // 0.7 * 10 rounds to 6.999...9 in double; the unnudged floor
    // used to lose a whole infection. n * fraction that is an
    // integer in exact arithmetic must count exactly.
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 0.7).infectedCount(10), 7u);
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 0.1).infectedCount(10), 1u);
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 0.3).infectedCount(10), 3u);
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 1.0 / 3.0).infectedCount(3),
              1u);
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 2.0 / 3.0).infectedCount(3),
              2u);
    // Genuinely fractional quotas still floor.
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 0.999).infectedCount(1), 0u);
    EXPECT_EQ(FaultPlan(ErrorMode::Drop, 1.0 / 3.0).infectedCount(7),
              2u);
}

TEST(FaultPlan, InfectedCountIsMonotoneInN)
{
    const FaultPlan plan(ErrorMode::Drop, 1.0 / 3.0);
    std::size_t prev = 0;
    for (std::size_t n = 1; n <= 288; ++n) {
        const std::size_t count = plan.infectedCount(n);
        EXPECT_GE(count, prev) << "n " << n;
        EXPECT_LE(count - prev, 1u) << "n " << n;
        prev = count;
    }
    EXPECT_EQ(plan.infectedCount(288), 96u);
}

TEST(Corruption, StuckAtAllBits)
{
    util::Rng rng(6, 0);
    const double v = 1234.5678;
    const double all1 = corruptDouble(v, ErrorMode::StuckAt1All, rng);
    EXPECT_TRUE(std::isnan(all1)); // all-ones IEEE-754 is a NaN
    const double all0 = corruptDouble(v, ErrorMode::StuckAt0All, rng);
    EXPECT_DOUBLE_EQ(all0, 0.0);
}

TEST(Corruption, LowBitsPerturbMantissaOnly)
{
    util::Rng rng(7, 0);
    const double v = 1234.5678;
    const double low0 = corruptDouble(v, ErrorMode::StuckAt0Low, rng);
    // Clearing the low 32 bits leaves the exponent and top mantissa:
    // small relative change.
    EXPECT_NEAR(low0 / v, 1.0, 1e-6);
    EXPECT_NE(low0, v);
}

TEST(Corruption, HighBitsAreCatastrophic)
{
    util::Rng rng(8, 0);
    const double v = 1234.5678;
    const double hi1 = corruptDouble(v, ErrorMode::StuckAt1High, rng);
    // Exponent forced high: NaN or enormous.
    EXPECT_TRUE(std::isnan(hi1) || std::abs(hi1) > 1e100);
}

TEST(Corruption, InvertIsInvolution)
{
    util::Rng rng(9, 0);
    const double v = -7.25;
    const double once = corruptDouble(v, ErrorMode::Invert, rng);
    const double twice = corruptDouble(once, ErrorMode::Invert, rng);
    EXPECT_DOUBLE_EQ(twice, v);
}

TEST(Corruption, RandomFlipChangesValue)
{
    util::Rng rng(10, 0);
    const double v = 3.14159;
    int changed = 0;
    for (int i = 0; i < 50; ++i)
        changed += corruptDouble(v, ErrorMode::RandomFlip, rng) != v;
    EXPECT_GE(changed, 48);
}

TEST(Corruption, PassThroughModes)
{
    util::Rng rng(11, 0);
    for (ErrorMode mode : {ErrorMode::None, ErrorMode::Drop,
                           ErrorMode::InvertDecision}) {
        EXPECT_DOUBLE_EQ(corruptDouble(42.0, mode, rng), 42.0);
        EXPECT_EQ(corruptInt(42, mode, rng), 42);
    }
}

TEST(Corruption, IntModes)
{
    util::Rng rng(12, 0);
    EXPECT_EQ(corruptInt(5, ErrorMode::StuckAt0All, rng), 0);
    EXPECT_EQ(corruptInt(5, ErrorMode::Invert, rng), ~5);
    EXPECT_EQ(corruptInt(0, ErrorMode::StuckAt1Low, rng),
              static_cast<std::int64_t>(0xffffffffULL));
}

TEST(Corruption, ModeNamesAndSweepList)
{
    EXPECT_EQ(errorModeName(ErrorMode::Drop), "drop");
    EXPECT_EQ(corruptionModes().size(), 8u);
    for (ErrorMode mode : corruptionModes())
        EXPECT_FALSE(errorModeName(mode).empty());
}
