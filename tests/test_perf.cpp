/**
 * @file
 * Tests of the performance-telemetry subsystem: the snapshot data
 * model and its JSON round trip (src/obs/snapshot.*), the compare
 * engine's verdicts (regression / improvement / within-noise /
 * missing / schema and scale mismatch), the perf CLI parsing, and a
 * tiny in-process record smoke run over one real scenario.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/perf.hpp"
#include "obs/snapshot.hpp"
#include "test_json.hpp"

namespace harness = accordion::harness;
namespace obs = accordion::obs;

namespace {

using testjson::Json;
using testjson::JsonParser;

/** A snapshot whose scenarios have the given min wall times [ms]. */
obs::PerfSnapshot
makeSnapshot(
    const std::vector<std::pair<std::string, double>> &walls_ms,
    double scale = 1.0)
{
    obs::PerfSnapshot snapshot;
    snapshot.environment["git_sha"] = "test";
    snapshot.seed = 12345;
    snapshot.threads = 4;
    snapshot.reps = 3;
    snapshot.scale = scale;
    for (const auto &[name, ms] : walls_ms) {
        obs::ScenarioRecord record;
        record.name = name;
        record.warmup = 1;
        // Reps in noisy descending order; min-of-reps is the metric.
        record.wallNs = {ms * 1.20e6, ms * 1.05e6, ms * 1e6};
        record.counters["perf.items"] = 100;
        record.throughput["perf.items"] = 100.0 / (ms * 1e-3);
        snapshot.scenarios.push_back(std::move(record));
    }
    return snapshot;
}

// ---------------------------------------------------------------
// ScenarioRecord / DistributionSummary
// ---------------------------------------------------------------

TEST(PerfSnapshot, MinWallAndWallSummary)
{
    obs::ScenarioRecord record;
    EXPECT_EQ(record.minWallNs(), 0.0);
    record.wallNs = {30.0, 10.0, 20.0};
    EXPECT_EQ(record.minWallNs(), 10.0);
    const obs::DistributionSummary s = record.wallSummary();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.min, 10.0);
    EXPECT_EQ(s.max, 30.0);
    EXPECT_DOUBLE_EQ(s.mean, 20.0);
    EXPECT_DOUBLE_EQ(s.p50, 20.0);
}

// ---------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------

TEST(PerfSnapshot, JsonRoundTripPreservesEverything)
{
    obs::PerfSnapshot snapshot = makeSnapshot(
        {{"substrate.alpha", 10.0}, {"experiment.beta", 25.0}}, 0.5);
    snapshot.environment["compiler"] = "gcc \"12\""; // needs escaping
    snapshot.scenarios[0].timers["time.x_ns"] =
        obs::summarize(std::vector<double>{1.0, 2.0, 3.0});
    snapshot.scenarios[0].gauges["pool.utilization.mean"] = 0.875;

    snapshot.scenarios[0].hwCounters["hw.scenario.instructions"] =
        123456789u;
    snapshot.scenarios[0].hwCounters["hw.scenario.cycles"] =
        98765432u;
    snapshot.scenarios[0].hwDerived["hw.scenario.ipc"] = 1.25;

    const std::string text = obs::toJson(snapshot);
    // Valid JSON as seen by an independent parser.
    ASSERT_NO_THROW(JsonParser(text).parse());
    // Scenario 0 carries an hw object, scenario 1 an explicit null.
    const Json parsed = JsonParser(text).parse();
    EXPECT_EQ(parsed.at("scenarios").items[0].at("hw").type,
              Json::Object);
    EXPECT_EQ(parsed.at("scenarios").items[1].at("hw").type,
              Json::Null);

    obs::PerfSnapshot back;
    std::string error;
    ASSERT_TRUE(obs::parsePerfSnapshot(text, &back, &error)) << error;
    EXPECT_EQ(back.schema, obs::kPerfSnapshotSchema);
    EXPECT_EQ(back.environment.at("git_sha"), "test");
    EXPECT_EQ(back.environment.at("compiler"), "gcc \"12\"");
    EXPECT_EQ(back.seed, 12345u);
    EXPECT_EQ(back.threads, 4u);
    EXPECT_EQ(back.reps, 3u);
    EXPECT_EQ(back.scale, 0.5);
    ASSERT_EQ(back.scenarios.size(), 2u);
    const obs::ScenarioRecord *alpha = back.find("substrate.alpha");
    ASSERT_NE(alpha, nullptr);
    EXPECT_EQ(alpha->warmup, 1u);
    ASSERT_EQ(alpha->wallNs.size(), 3u);
    EXPECT_DOUBLE_EQ(alpha->minWallNs(), 10.0e6);
    EXPECT_EQ(alpha->counters.at("perf.items"), 100u);
    EXPECT_GT(alpha->throughput.at("perf.items"), 0.0);
    ASSERT_EQ(alpha->timers.count("time.x_ns"), 1u);
    EXPECT_EQ(alpha->timers.at("time.x_ns").count, 3u);
    EXPECT_DOUBLE_EQ(alpha->timers.at("time.x_ns").p50, 2.0);
    EXPECT_DOUBLE_EQ(alpha->gauges.at("pool.utilization.mean"),
                     0.875);
    ASSERT_TRUE(alpha->hasHw());
    EXPECT_EQ(alpha->hwCounters.at("hw.scenario.instructions"),
              123456789u);
    EXPECT_EQ(alpha->hwCounters.at("hw.scenario.cycles"), 98765432u);
    EXPECT_DOUBLE_EQ(alpha->hwDerived.at("hw.scenario.ipc"), 1.25);
    const obs::ScenarioRecord *beta = back.find("experiment.beta");
    ASSERT_NE(beta, nullptr);
    EXPECT_FALSE(beta->hasHw());
    EXPECT_EQ(back.find("nope"), nullptr);
}

TEST(PerfSnapshot, ParserRejectsWrongSchemaAndGarbage)
{
    obs::PerfSnapshot out;
    std::string error;
    EXPECT_FALSE(obs::parsePerfSnapshot("not json", &out, &error));
    EXPECT_FALSE(error.empty());

    obs::PerfSnapshot other = makeSnapshot({{"a", 1.0}});
    std::string text = obs::toJson(other);
    const std::string needle = obs::kPerfSnapshotSchema;
    text.replace(text.find(needle), needle.size(),
                 "accordion-perf-snapshot-v999");
    error.clear();
    EXPECT_FALSE(obs::parsePerfSnapshot(text, &out, &error));
    EXPECT_NE(error.find("v999"), std::string::npos) << error;
}

// ---------------------------------------------------------------
// Compare engine
// ---------------------------------------------------------------

TEST(PerfCompare, IdenticalSnapshotsAreOk)
{
    const obs::PerfSnapshot base =
        makeSnapshot({{"a", 10.0}, {"b", 20.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, base, 5.0);
    EXPECT_TRUE(report.error.empty());
    ASSERT_EQ(report.deltas.size(), 2u);
    for (const harness::ScenarioDelta &d : report.deltas)
        EXPECT_EQ(d.status, harness::DeltaStatus::WithinNoise);
    EXPECT_TRUE(report.ok());
}

TEST(PerfCompare, TwofoldSlowdownIsARegression)
{
    const obs::PerfSnapshot base =
        makeSnapshot({{"a", 10.0}, {"b", 20.0}});
    const obs::PerfSnapshot next =
        makeSnapshot({{"a", 20.0}, {"b", 20.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 2u);
    EXPECT_EQ(report.deltas[0].status,
              harness::DeltaStatus::Regression);
    EXPECT_NEAR(report.deltas[0].deltaPct, 100.0, 1e-9);
    EXPECT_EQ(report.deltas[1].status,
              harness::DeltaStatus::WithinNoise);
    EXPECT_EQ(report.regressions(), 1u);
    EXPECT_FALSE(report.ok());
}

TEST(PerfCompare, SpeedupIsAnImprovement)
{
    const obs::PerfSnapshot base = makeSnapshot({{"a", 10.0}});
    const obs::PerfSnapshot next = makeSnapshot({{"a", 5.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_EQ(report.deltas[0].status,
              harness::DeltaStatus::Improvement);
    EXPECT_TRUE(report.ok()); // improvements never gate
}

TEST(PerfCompare, SmallRelativeDeltaIsWithinNoise)
{
    const obs::PerfSnapshot base = makeSnapshot({{"a", 100.0}});
    const obs::PerfSnapshot next = makeSnapshot({{"a", 103.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_EQ(report.deltas[0].status,
              harness::DeltaStatus::WithinNoise);
}

TEST(PerfCompare, AbsoluteFloorShieldsTinyScenarios)
{
    // 0.05 ms -> 0.10 ms is +100% relatively but only 50 us
    // absolutely — far below kAbsNoiseFloorNs, so noise.
    const obs::PerfSnapshot base = makeSnapshot({{"a", 0.05}});
    const obs::PerfSnapshot next = makeSnapshot({{"a", 0.10}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_EQ(report.deltas[0].status,
              harness::DeltaStatus::WithinNoise);
}

TEST(PerfCompare, MissingScenarioFailsAndNewOneDoesNot)
{
    const obs::PerfSnapshot base =
        makeSnapshot({{"a", 10.0}, {"gone", 10.0}});
    const obs::PerfSnapshot next =
        makeSnapshot({{"a", 10.0}, {"fresh", 10.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 3u);
    EXPECT_EQ(report.missing(), 1u);
    EXPECT_EQ(report.count(harness::DeltaStatus::OnlyInNew), 1u);
    EXPECT_FALSE(report.ok()); // a vanished scenario gates
}

TEST(PerfCompare, SchemaAndScaleMismatchesAreErrors)
{
    obs::PerfSnapshot base = makeSnapshot({{"a", 10.0}});
    obs::PerfSnapshot next = makeSnapshot({{"a", 10.0}});
    next.schema = "accordion-perf-snapshot-v999";
    harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    EXPECT_FALSE(report.error.empty());
    EXPECT_TRUE(report.deltas.empty());
    EXPECT_FALSE(report.ok());

    next = makeSnapshot({{"a", 10.0}}, 0.25);
    report = harness::compareSnapshots(base, next, 5.0);
    EXPECT_NE(report.error.find("scale"), std::string::npos);
}

TEST(PerfCompare, V1BaselineComparesAgainstV2Transparently)
{
    // Pre-hw baselines stay usable: a v1 base against a v2 next is
    // an ordinary comparison, not a schema error.
    obs::PerfSnapshot base = makeSnapshot({{"a", 10.0}});
    base.schema = obs::kPerfSnapshotSchemaV1;
    const obs::PerfSnapshot next = makeSnapshot({{"a", 10.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    EXPECT_TRUE(report.error.empty()) << report.error;
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_TRUE(report.ok());
}

TEST(PerfCompare, HwDeltasAreWarnOnlyTableLines)
{
    obs::PerfSnapshot base = makeSnapshot({{"a", 10.0}});
    obs::PerfSnapshot next = makeSnapshot({{"a", 10.0}});
    base.scenarios[0].hwDerived["hw.scenario.ipc"] = 2.0;
    next.scenarios[0].hwDerived["hw.scenario.ipc"] = 1.0;
    // Present on one side only: no delta line, no error.
    next.scenarios[0].hwDerived["hw.scenario.mpki"] = 3.0;

    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);
    ASSERT_EQ(report.deltas.size(), 1u);
    ASSERT_EQ(report.deltas[0].hwDeltas.size(), 1u);
    EXPECT_EQ(report.deltas[0].hwDeltas[0].name, "hw.scenario.ipc");
    EXPECT_DOUBLE_EQ(report.deltas[0].hwDeltas[0].base, 2.0);
    EXPECT_DOUBLE_EQ(report.deltas[0].hwDeltas[0].next, 1.0);
    // A halved IPC never gates: the wall time is the verdict.
    EXPECT_EQ(report.deltas[0].status,
              harness::DeltaStatus::WithinNoise);
    EXPECT_TRUE(report.ok());

    const std::string table = harness::compareTable(report);
    EXPECT_NE(table.find("hw (warn-only)"), std::string::npos)
        << table;
    EXPECT_NE(table.find("hw.scenario.ipc"), std::string::npos);

    // And the machine verdict keeps its v1 contract: no hw keys.
    const std::string verdict = harness::verdictJson(report);
    EXPECT_EQ(verdict.find("hw."), std::string::npos) << verdict;
}

TEST(PerfCompare, VerdictJsonParsesBackWithStatuses)
{
    const obs::PerfSnapshot base =
        makeSnapshot({{"a", 10.0}, {"b", 10.0}});
    const obs::PerfSnapshot next =
        makeSnapshot({{"a", 20.0}, {"b", 10.0}});
    const harness::CompareReport report =
        harness::compareSnapshots(base, next, 5.0);

    const Json root = JsonParser(harness::verdictJson(report)).parse();
    EXPECT_EQ(root.at("schema").text, "accordion-perf-compare-v1");
    EXPECT_FALSE(root.at("ok").boolean);
    EXPECT_EQ(root.at("regressions").number, 1.0);
    EXPECT_EQ(root.at("error").type, Json::Null);
    ASSERT_EQ(root.at("scenarios").items.size(), 2u);
    EXPECT_EQ(root.at("scenarios").items[0].at("status").text,
              "regression");
    EXPECT_EQ(root.at("scenarios").items[1].at("status").text,
              "within_noise");

    // The human table mentions every scenario and the verdict.
    const std::string table = harness::compareTable(report);
    EXPECT_NE(table.find("regression"), std::string::npos);
    EXPECT_NE(table.find("1 regression(s)"), std::string::npos);
}

// ---------------------------------------------------------------
// CLI parsing
// ---------------------------------------------------------------

TEST(PerfCli, ParsesRecordFlags)
{
    std::string error;
    const auto options = harness::parseCli(
        {"perf", "--reps", "5", "--warmup", "0", "--scale", "0.25",
         "--out", "snap.json", "--scenario", "substrate.error_rate",
         "--scenario", "substrate.montecarlo", "--threads", "2",
         "--seed", "7"},
        &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->command,
              harness::CliOptions::Command::Perf);
    EXPECT_EQ(options->perf.reps, 5u);
    EXPECT_EQ(options->perf.warmup, 0u);
    EXPECT_EQ(options->perf.scale, 0.25);
    EXPECT_EQ(options->perf.out, "snap.json");
    EXPECT_EQ(options->perf.threads, 2u);
    EXPECT_EQ(options->perf.seed, 7u);
    ASSERT_EQ(options->perf.only.size(), 2u);
    EXPECT_EQ(options->perf.only[0], "substrate.error_rate");
}

TEST(PerfCli, RejectsBadRecordValues)
{
    std::string error;
    EXPECT_FALSE(
        harness::parseCli({"perf", "--reps", "0"}, &error));
    EXPECT_FALSE(
        harness::parseCli({"perf", "--scale", "0"}, &error));
    EXPECT_FALSE(
        harness::parseCli({"perf", "--scale", "-1"}, &error));
    EXPECT_FALSE(
        harness::parseCli({"perf", "--bogus"}, &error));
    EXPECT_FALSE(harness::parseCli({"perf", "extra"}, &error));
}

TEST(PerfCli, ParsesCompareFlags)
{
    std::string error;
    const auto options = harness::parseCli(
        {"perf", "compare", "base.json", "new.json", "--threshold",
         "7.5", "--warn-only"},
        &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->command,
              harness::CliOptions::Command::PerfCompare);
    EXPECT_EQ(options->compare.basePath, "base.json");
    EXPECT_EQ(options->compare.newPath, "new.json");
    EXPECT_EQ(options->compare.thresholdPct, 7.5);
    EXPECT_TRUE(options->compare.warnOnly);

    EXPECT_FALSE(
        harness::parseCli({"perf", "compare", "one.json"}, &error));
    EXPECT_FALSE(harness::parseCli({"perf", "compare", "a", "b",
                                    "--threshold", "x"},
                                   &error));
}

TEST(PerfCli, ParsesEventsFlagEverywhere)
{
    std::string error;
    auto options = harness::parseCli({"perf", "--events"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_TRUE(options->perf.events);
    options = harness::parseCli({"perf"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_FALSE(options->perf.events);

    options = harness::parseCli(
        {"profile", "substrate.error_rate", "--events"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_TRUE(options->profile.events);

    options = harness::parseCli({"run", "all", "--events"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_TRUE(options->events);
    options = harness::parseCli({"run", "all"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_FALSE(options->events);
}

TEST(PerfCli, ParsesListFlags)
{
    std::string error;
    auto options = harness::parseCli({"perf", "--list"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_TRUE(options->perf.list);

    options = harness::parseCli({"profile", "--list"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_TRUE(options->profile.list);
    EXPECT_FALSE(
        harness::parseCli({"profile", "--list", "name"}, &error));
}

TEST(PerfCli, ParsesStatsModeOnRun)
{
    std::string error;
    auto options = harness::parseCli({"run", "all"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->stats, harness::StatsMode::Auto);

    options =
        harness::parseCli({"run", "all", "--stats", "off"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->stats, harness::StatsMode::Off);

    options =
        harness::parseCli({"run", "all", "--stats", "on"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->stats, harness::StatsMode::On);

    EXPECT_FALSE(harness::parseCli(
        {"run", "all", "--stats", "sometimes"}, &error));
}

// ---------------------------------------------------------------
// Record smoke (one real scenario, tiny scale)
// ---------------------------------------------------------------

TEST(PerfRecord, UnknownScenarioIsAnError)
{
    harness::PerfOptions options;
    options.only = {"substrate.does_not_exist"};
    std::string error;
    EXPECT_FALSE(harness::recordSnapshot(options, &error));
    EXPECT_NE(error.find("does_not_exist"), std::string::npos);
    // The error embeds the one shared suite table --list prints, so
    // a typo'd name always shows the valid spellings.
    EXPECT_NE(error.find("substrate.error_rate"), std::string::npos)
        << error;
}

TEST(PerfSuite, SuiteTableNamesEveryScenario)
{
    const std::string table = harness::scenarioSuiteTable();
    for (const harness::PerfScenario &s : harness::perfScenarios())
        EXPECT_NE(table.find(s.name), std::string::npos) << s.name;
}

TEST(PerfRecord, RecordsOneScenarioWithCountersAndThroughput)
{
    // Pin the ambient state: record must restore it afterwards.
    obs::StatsRegistry::global().setEnabled(false);

    harness::PerfOptions options;
    options.reps = 2;
    options.warmup = 1;
    options.scale = 0.01;
    options.only = {"substrate.error_rate"};
    std::string error;
    const auto snapshot = harness::recordSnapshot(options, &error);
    ASSERT_TRUE(snapshot.has_value()) << error;

    EXPECT_EQ(snapshot->schema, obs::kPerfSnapshotSchema);
    EXPECT_EQ(snapshot->reps, 2u);
    EXPECT_EQ(snapshot->scale, 0.01);
    EXPECT_EQ(snapshot->environment.count("compiler"), 1u);
    EXPECT_EQ(snapshot->environment.count("git_sha"), 1u);
    ASSERT_EQ(snapshot->scenarios.size(), 1u);
    const obs::ScenarioRecord &record = snapshot->scenarios[0];
    EXPECT_EQ(record.name, "substrate.error_rate");
    EXPECT_EQ(record.warmup, 1u);
    ASSERT_EQ(record.wallNs.size(), 2u); // warmup not recorded
    EXPECT_GT(record.minWallNs(), 0.0);
    // 400000 iterations at scale 0.01.
    EXPECT_EQ(record.counters.at("perf.items"), 4000u);
    EXPECT_GT(record.throughput.at("perf.items"), 0.0);

    // The snapshot renders to valid JSON and round-trips.
    obs::PerfSnapshot back;
    ASSERT_TRUE(obs::parsePerfSnapshot(obs::toJson(*snapshot), &back,
                                       &error))
        << error;
    EXPECT_EQ(back.scenarios.size(), 1u);

    // Recording must leave the global registry disabled (the tests'
    // ambient state) so other suites see the zero-overhead path.
    EXPECT_FALSE(obs::StatsRegistry::global().enabled());
}

TEST(PerfRecord, DegradedEventsRecordMatchesEventlessRecord)
{
    // --events on a host where no requested event can open must
    // yield the same snapshot shape as no --events at all: "hw"
    // null, same counters, same schema — only the wall times (and
    // environment timestamps) may differ.
    obs::StatsRegistry::global().setEnabled(false);
    ::setenv("ACCORDION_PERF_EVENTS", "no-such-event", 1);

    harness::PerfOptions options;
    options.reps = 1;
    options.warmup = 0;
    options.scale = 0.01;
    options.only = {"substrate.error_rate"};
    std::string error;
    options.events = true;
    ::testing::internal::CaptureStderr();
    const auto with = harness::recordSnapshot(options, &error);
    ::testing::internal::GetCapturedStderr();
    ::unsetenv("ACCORDION_PERF_EVENTS");
    ASSERT_TRUE(with.has_value()) << error;

    options.events = false;
    const auto without = harness::recordSnapshot(options, &error);
    ASSERT_TRUE(without.has_value()) << error;

    ASSERT_EQ(with->scenarios.size(), 1u);
    ASSERT_EQ(without->scenarios.size(), 1u);
    EXPECT_FALSE(with->scenarios[0].hasHw());
    EXPECT_FALSE(without->scenarios[0].hasHw());
    EXPECT_EQ(with->schema, without->schema);
    EXPECT_EQ(with->scenarios[0].counters,
              without->scenarios[0].counters);
    EXPECT_NE(obs::toJson(*with).find("\"hw\": null"),
              std::string::npos);
}

TEST(PerfRecord, ExperimentScenariosAlwaysDeriveThroughput)
{
    obs::StatsRegistry::global().setEnabled(false);

    // fig1a leaves no domain counters behind once the shared system
    // cache is warm; the scenario must still count its own run so
    // the snapshot's throughput map is never empty (CI asserts this
    // invariant for every scenario).
    harness::PerfOptions options;
    options.reps = 1;
    options.warmup = 0;
    options.scale = 0.01;
    options.only = {"experiment.fig1a_operating_point"};
    std::string error;
    const auto snapshot = harness::recordSnapshot(options, &error);
    ASSERT_TRUE(snapshot.has_value()) << error;
    ASSERT_EQ(snapshot->scenarios.size(), 1u);
    const obs::ScenarioRecord &record = snapshot->scenarios[0];
    EXPECT_EQ(record.counters.at("perf.items"), 1u);
    ASSERT_FALSE(record.throughput.empty());
    EXPECT_GT(record.throughput.at("perf.items"), 0.0);
}

// ---------------------------------------------------------------
// Compare CLI smoke: runPerfCompare end to end against real files,
// asserting the documented exit-code contract (0 ok / 1 verdict
// failure / 2 unusable input) CI scripts depend on.
// ---------------------------------------------------------------

/** Writes @p text to a fresh temp file; removed on destruction. */
class TempSnapshotFile
{
  public:
    TempSnapshotFile(const std::string &stem, const std::string &text)
        : path_((std::filesystem::temp_directory_path() /
                 ("accordion-test-" + stem + "-" +
                  std::to_string(::getpid()) + ".json"))
                    .string())
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out << text;
    }

    TempSnapshotFile(const TempSnapshotFile &) = delete;
    TempSnapshotFile &operator=(const TempSnapshotFile &) = delete;

    ~TempSnapshotFile()
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(PerfCompareCli, MissingScenarioExitsOneAndNamesIt)
{
    const TempSnapshotFile base(
        "base", obs::toJson(makeSnapshot(
                    {{"substrate.alpha", 10.0}, {"gone", 10.0}})));
    const TempSnapshotFile next(
        "next", obs::toJson(makeSnapshot({{"substrate.alpha", 10.0}})));

    harness::CompareOptions options;
    options.basePath = base.path();
    options.newPath = next.path();

    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    const int code = harness::runPerfCompare(options);
    const std::string verdict =
        ::testing::internal::GetCapturedStdout();
    const std::string table = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(code, 1);
    // The human table names the vanished scenario and its status.
    EXPECT_NE(table.find("gone"), std::string::npos) << table;
    EXPECT_NE(table.find("missing_in_new"), std::string::npos)
        << table;
    // And stdout still carries parseable verdict JSON.
    const Json root = JsonParser(verdict).parse();
    EXPECT_FALSE(root.at("ok").boolean);
    EXPECT_EQ(root.at("missing").number, 1.0);

    // --warn-only downgrades the verdict failure to success.
    options.warnOnly = true;
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(harness::runPerfCompare(options), 0);
    ::testing::internal::GetCapturedStdout();
    ::testing::internal::GetCapturedStderr();
}

TEST(PerfCompareCli, TruncatedFileExitsTwo)
{
    const std::string good =
        obs::toJson(makeSnapshot({{"substrate.alpha", 10.0}}));
    const TempSnapshotFile base("trunc-base", good);
    // Chop the file mid-object: unusable input, not a verdict.
    const TempSnapshotFile next("trunc-new",
                                good.substr(0, good.size() / 2));

    harness::CompareOptions options;
    options.basePath = base.path();
    options.newPath = next.path();
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    const int code = harness::runPerfCompare(options);
    ::testing::internal::GetCapturedStdout();
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(code, 2);
    EXPECT_NE(err.find(next.path()), std::string::npos) << err;
    // Even --warn-only cannot bless unusable input.
    options.warnOnly = true;
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(harness::runPerfCompare(options), 2);
    ::testing::internal::GetCapturedStdout();
    ::testing::internal::GetCapturedStderr();
}

TEST(PerfCompareCli, SchemaMismatchedFileExitsTwo)
{
    const std::string good =
        obs::toJson(makeSnapshot({{"substrate.alpha", 10.0}}));
    std::string other = good;
    const std::string needle = obs::kPerfSnapshotSchema;
    other.replace(other.find(needle), needle.size(),
                  "accordion-perf-snapshot-v999");
    const TempSnapshotFile base("schema-base", good);
    const TempSnapshotFile next("schema-new", other);

    harness::CompareOptions options;
    options.basePath = base.path();
    options.newPath = next.path();
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    const int code = harness::runPerfCompare(options);
    ::testing::internal::GetCapturedStdout();
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(code, 2);
    EXPECT_NE(err.find("v999"), std::string::npos) << err;
}

TEST(PerfSuite, CuratedSuiteIsSortedAndBigEnough)
{
    const auto &suite = harness::perfScenarios();
    EXPECT_GE(suite.size(), 6u);
    for (std::size_t i = 1; i < suite.size(); ++i)
        EXPECT_LT(suite[i - 1].name, suite[i].name);
    for (const harness::PerfScenario &s : suite) {
        EXPECT_FALSE(s.description.empty()) << s.name;
        EXPECT_TRUE(static_cast<bool>(s.body)) << s.name;
    }
}

TEST(PerfSuite, DefaultSnapshotPathSkipsExistingFiles)
{
    const std::string path = harness::defaultSnapshotPath();
    EXPECT_EQ(path.rfind("BENCH_", 0), 0u);
    EXPECT_NE(path.find(".json"), std::string::npos);
}

} // namespace
