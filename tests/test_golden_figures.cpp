/**
 * @file
 * Golden-value regression tests: the paper-figure numbers the repo
 * currently produces are frozen into checked-in CSVs under
 * tests/golden/, and every run recomputes them and compares at
 * 1e-9 relative tolerance. Any change that moves a Fig. 6/7 pareto
 * front, a Table 1 mode demonstration, a Table 3 characterization
 * fit, or a Monte Carlo summary fails here — parallelism,
 * refactors, and optimizations must all be number-preserving.
 *
 * Refreshing the goldens after an *intentional* model change:
 *
 *     ./accordion_tests --update-golden \
 *         --gtest_filter='GoldenFigures.*'
 *
 * (or ACCORDION_UPDATE_GOLDEN=1 in the environment). The CSVs are
 * rewritten in the source tree at tests/golden/; review and commit
 * the diff together with the change that caused it.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/accordion.hpp"
#include "core/montecarlo.hpp"
#include "golden_mode.hpp"
#include "harness/experiment.hpp"
#include "harness/run_context.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "rms/workload.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace accordion;

namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(ACCORDION_GOLDEN_DIR) + "/" + name + ".csv";
}

/** Full double precision so compare tolerance is the only slack. */
std::string
cell(double v)
{
    return util::format("%.17g", v);
}

bool
parseNumber(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

/**
 * Compare freshly computed rows against the checked-in golden CSV —
 * or rewrite the CSV when running under --update-golden. Numeric
 * cells compare at 1e-9 relative tolerance; everything else must
 * match exactly.
 */
void
checkOrUpdate(const std::string &name,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows)
{
    const std::string path = goldenPath(name);
    if (accordion::test::updateGoldenFlag()) {
        std::filesystem::create_directories(ACCORDION_GOLDEN_DIR);
        util::CsvWriter csv(path, header);
        for (const auto &row : rows)
            csv.addRow(row);
        GTEST_SKIP() << "rewrote " << path;
    }

    ASSERT_TRUE(std::filesystem::exists(path))
        << path << " is missing; run with --update-golden once to "
        << "create it, then commit the file";
    const util::CsvFile golden = util::readCsv(path);
    ASSERT_EQ(golden.header, header) << name;
    ASSERT_EQ(golden.rows.size(), rows.size()) << name;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(golden.rows[r].size(), rows[r].size())
            << name << " row " << r;
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            double want = 0.0, got = 0.0;
            if (parseNumber(golden.rows[r][c], &want) &&
                parseNumber(rows[r][c], &got)) {
                const double tol =
                    std::max(1e-12, std::abs(want) * 1e-9);
                EXPECT_NEAR(got, want, tol)
                    << name << " row " << r << " col " << header[c];
            } else {
                EXPECT_EQ(rows[r][c], golden.rows[r][c])
                    << name << " row " << r << " col " << header[c];
            }
        }
    }
}

/**
 * The goldens run through the experiment harness: the fixture owns
 * a RunContext (the object `accordion run` drives) and takes its
 * AccordionSystem from the context's shared cache, so any harness
 * regression — a config-key collision, a cache returning the wrong
 * system — fails these number-pinned tests too.
 */
class GoldenFigures : public ::testing::Test
{
  protected:
    /** Per-process output directory: ctest runs every golden test
     *  in its own process, possibly in parallel, so a shared
     *  literal directory races (one process's remove_all deletes a
     *  CSV another is about to byte-compare). */
    static const std::string kOutDir;

    static void SetUpTestSuite()
    {
        util::setVerbose(false);
        std::filesystem::remove_all(kOutDir);
        harness::RunContext::Options options;
        options.outDir = kOutDir;
        ctx_ = new harness::RunContext(options);
        system_ = &ctx_->system();
    }

    static void TearDownTestSuite()
    {
        delete ctx_;
        ctx_ = nullptr;
        system_ = nullptr;
        std::error_code ec;
        std::filesystem::remove_all(kOutDir, ec);
    }

    /** Run a registered experiment, swallowing its stdout tables. */
    static void runExperiment(const std::string &name)
    {
        const harness::Experiment *e =
            harness::Registry::instance().find(name);
        ASSERT_NE(e, nullptr) << name;
        ::testing::internal::CaptureStdout();
        e->run(*ctx_);
        ::testing::internal::GetCapturedStdout();
    }

    /**
     * Byte-compare a CSV the harness produced against the frozen
     * pre-refactor bench CSV under tests/golden/harness/ (or
     * refresh the snapshot under --update-golden).
     */
    static void checkBytesOrUpdate(const std::string &csv_name)
    {
        const std::string produced =
            std::string(kOutDir) + "/" + csv_name;
        const std::string golden = std::string(ACCORDION_GOLDEN_DIR) +
                                   "/harness/" + csv_name;
        ASSERT_TRUE(std::filesystem::exists(produced)) << produced;
        if (accordion::test::updateGoldenFlag()) {
            std::filesystem::create_directories(
                std::string(ACCORDION_GOLDEN_DIR) + "/harness");
            std::filesystem::copy_file(
                produced, golden,
                std::filesystem::copy_options::overwrite_existing);
            GTEST_SKIP() << "rewrote " << golden;
        }
        ASSERT_TRUE(std::filesystem::exists(golden))
            << golden << " is missing; run with --update-golden "
            << "once to create it, then commit the file";
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            return std::string(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>());
        };
        EXPECT_EQ(slurp(produced), slurp(golden))
            << csv_name << " is no longer byte-identical to the "
            << "pre-harness bench output";
    }

    static harness::RunContext *ctx_;
    static core::AccordionSystem *system_;
};

harness::RunContext *GoldenFigures::ctx_ = nullptr;
core::AccordionSystem *GoldenFigures::system_ = nullptr;
const std::string GoldenFigures::kOutDir =
    "harness_golden_out_" + std::to_string(::getpid());

/** The pareto-front rows of one figure's kernel set. */
std::vector<std::vector<std::string>>
frontRows(core::AccordionSystem &system,
          const std::vector<std::string> &kernels)
{
    std::vector<std::vector<std::string>> rows;
    for (const std::string &name : kernels) {
        const rms::Workload &w = rms::findWorkload(name);
        const core::QualityProfile &profile = system.profile(name);
        const core::StvBaseline base =
            system.pareto().baseline(w, profile);
        for (core::Flavor flavor :
             {core::Flavor::Safe, core::Flavor::Speculative}) {
            for (const core::OperatingPoint &p :
                 system.pareto().extract(w, profile, flavor)) {
                rows.push_back(
                    {name, core::flavorName(flavor),
                     cell(p.psRatio), util::format("%zu", p.n),
                     cell(p.fHz), cell(p.efficiencyRatio(base)),
                     cell(p.powerRatio(base)), cell(p.qualityRatio),
                     p.feasible ? "1" : "0",
                     p.withinBudget ? "1" : "0"});
            }
        }
    }
    return rows;
}

const std::vector<std::string> kFrontHeader = {
    "benchmark", "flavor",      "ps_ratio",    "n",       "f_hz",
    "mipsw_ratio", "power_ratio", "q_ratio", "feasible",
    "within_budget"};

TEST_F(GoldenFigures, Fig6ParetoFrontsParsec)
{
    checkOrUpdate(
        "fig6_pareto", kFrontHeader,
        frontRows(*system_,
                  {"canneal", "ferret", "bodytrack", "x264"}));
}

TEST_F(GoldenFigures, Fig7ParetoFrontsRodinia)
{
    checkOrUpdate("fig7_pareto", kFrontHeader,
                  frontRows(*system_, {"hotspot", "srad"}));
}

TEST_F(GoldenFigures, Table1ModeDemonstration)
{
    const rms::Workload &w = rms::findWorkload("canneal");
    const core::QualityProfile &profile = system_->profile("canneal");
    const core::StvBaseline base =
        system_->pareto().baseline(w, profile);
    std::vector<std::vector<std::string>> rows;
    for (double ps : {0.5, 1.0, 1.33}) {
        const auto p = system_->pareto().evaluateAt(
            w, profile, core::Flavor::Safe, ps, base);
        rows.push_back({cell(ps), core::sizeModeName(p.sizeMode),
                        cell(p.nRatio(base)), cell(p.fHz),
                        cell(p.qualityRatio)});
    }
    checkOrUpdate("table1_modes",
                  {"ps_ratio", "mode", "n_ratio", "f_hz", "q_ratio"},
                  rows);
}

TEST_F(GoldenFigures, Table3CharacterizationFits)
{
    std::vector<std::vector<std::string>> rows;
    for (const rms::Workload *w : rms::allWorkloads()) {
        const rms::RunResult ref = w->runReference();
        std::vector<double> inputs, sizes, qualities;
        for (double input : w->inputSweep()) {
            rms::RunConfig c;
            c.input = input;
            c.threads = w->defaultThreads();
            const rms::RunResult r = w->run(c);
            inputs.push_back(input);
            sizes.push_back(r.problemSize);
            qualities.push_back(w->quality(r, ref));
        }
        const auto ps_fit = util::fitPowerLaw(inputs, sizes);
        const auto q_fit = util::fitPowerLaw(inputs, qualities);
        rows.push_back({w->name(), cell(ps_fit.slope),
                        cell(q_fit.slope), cell(q_fit.r2)});
    }
    checkOrUpdate("table3_characterization",
                  {"benchmark", "ps_exponent", "q_exponent", "q_r2"},
                  rows);
}

TEST_F(GoldenFigures, MonteCarloSampleSummaries)
{
    const core::MonteCarloEvaluator mc(system_->factory(), 100);
    std::vector<std::vector<std::string>> rows;
    auto add = [&](const core::SampleStatistics &s) {
        rows.push_back({s.metric, cell(s.mean), cell(s.stddev),
                        cell(s.min), cell(s.p10), cell(s.p90),
                        cell(s.max)});
    };
    add(mc.evaluate("vdd_ntv", [](const vartech::VariationChip &c) {
        return c.vddNtv();
    }));
    add(mc.evaluate("slowest_cluster_safe_f",
                    [](const vartech::VariationChip &c) {
                        double f = 1e300;
                        for (std::size_t k = 0; k < c.numClusters();
                             ++k)
                            f = std::min(f, c.clusterSafeF(k));
                        return f;
                    }));
    add(mc.evaluate("fastest_cluster_safe_f",
                    [](const vartech::VariationChip &c) {
                        double f = 0.0;
                        for (std::size_t k = 0; k < c.numClusters();
                             ++k)
                            f = std::max(f, c.clusterSafeF(k));
                        return f;
                    }));

    // The headline: hotspot's best Speculative MIPS/W gain over a
    // 20-chip subsample (the montecarlo_sample bench's Table 2
    // companion number).
    const core::MonteCarloEvaluator mc20(system_->factory(), 20);
    add(mc20.efficiencyGainDistribution(
        rms::findWorkload("hotspot"), system_->profile("hotspot"),
        system_->powerModel(), system_->perfModel(),
        core::Flavor::Speculative, 0.0));

    checkOrUpdate("montecarlo_stats",
                  {"metric", "mean", "stddev", "min", "p10", "p90",
                   "max"},
                  rows);
}

// ---------------------------------------------------------------
// Byte-identity through the harness: `accordion run <name>` must
// produce the exact CSV bytes the pre-refactor one-binary-per-
// figure benches wrote (frozen under tests/golden/harness/).
// ---------------------------------------------------------------

TEST_F(GoldenFigures, HarnessFig6CsvByteIdentical)
{
    runExperiment("fig6_pareto_parsec");
    checkBytesOrUpdate("fig6_pareto.csv");
}

TEST_F(GoldenFigures, HarnessFig7CsvByteIdentical)
{
    runExperiment("fig7_pareto_rodinia");
    checkBytesOrUpdate("fig7_pareto.csv");
}

TEST_F(GoldenFigures, HarnessTable3CsvByteIdentical)
{
    runExperiment("table3_characterization");
    checkBytesOrUpdate("table3_characterization.csv");
}

/**
 * The instrumentation layer's no-perturbation contract: with the
 * stats registry enabled, a trace being recorded, the sampling
 * profiler delivering SIGPROF to the workers *and* a live metrics
 * exporter flushing concurrently — the heaviest observability
 * configuration — an experiment's CSV is still byte-identical to
 * the frozen pre-instrumentation output.
 */
TEST_F(GoldenFigures, InstrumentationPreservesCsvBytes)
{
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    const std::string trace_path =
        std::string(kOutDir) + "/instrumented_trace.json";
    std::filesystem::create_directories(kOutDir);
    registry.setEnabled(true);
    ASSERT_TRUE(obs::TraceWriter::openGlobal(trace_path));

    // Hardware counters requested but forced onto the degraded path
    // (no requested event can open): the run must not notice.
    ::setenv("ACCORDION_PERF_EVENTS", "no-such-event", 1);
    ::testing::internal::CaptureStderr();
    const bool hw_engaged = obs::hwEngage();
    ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(hw_engaged);

    obs::MetricsExporter::Options metrics;
    metrics.path = std::string(kOutDir) + "/instrumented.prom";
    metrics.intervalMs = 20;
    obs::MetricsExporter exporter(registry, metrics);
    ASSERT_TRUE(exporter.ok());

    obs::SamplingProfiler profiler;
    obs::ProfilerOptions sampling;
    sampling.intervalUs = 500;
    const bool profiling = profiler.start(sampling);

    runExperiment("fig6_pareto_parsec");

    profiler.stop();
    if (profiling)
        (void)profiler.injectTraceSamples(obs::TraceWriter::global());
    exporter.stopAndFlush();

    // Join the pool's workers (recreating the pool) before sealing
    // the trace so no in-flight span races the writer teardown —
    // the same discipline the CLI follows.
    util::ThreadPool::setGlobalThreads(
        util::ThreadPool::global().size());
    obs::TraceWriter::closeGlobal();
    registry.setEnabled(false);
    EXPECT_GT(registry.size(), 0u)
        << "instrumented run registered no stats";
    // Degraded counters leave no trace in the stats either.
    for (const obs::StatEntry &e : registry.snapshot())
        EXPECT_NE(e.name.rfind("hw.", 0), 0u) << e.name;
    obs::hwDisengage();
    ::unsetenv("ACCORDION_PERF_EVENTS");
    EXPECT_GE(exporter.flushes(), 1u);
    checkBytesOrUpdate("fig6_pareto.csv");
}

} // namespace
