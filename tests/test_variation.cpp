/**
 * @file
 * Tests of the correlated variation-field machinery (VARIUS
 * methodology): spherical correlation, field statistics, and the
 * systematic/random split.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"
#include "vartech/variation.hpp"

using namespace accordion::vartech;
using accordion::util::OnlineStats;
using accordion::util::Rng;

TEST(SphericalCorrelation, Endpoints)
{
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.0, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.1, 0.1), 0.0);
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.5, 0.1), 0.0);
}

TEST(SphericalCorrelation, MonotoneDecreasing)
{
    double prev = 1.0;
    for (double r = 0.01; r < 0.1; r += 0.01) {
        const double rho = sphericalCorrelation(r, 0.1);
        EXPECT_LT(rho, prev);
        EXPECT_GE(rho, 0.0);
        prev = rho;
    }
}

namespace {

std::vector<Point>
linePositions(std::size_t n, double spacing)
{
    std::vector<Point> pts;
    for (std::size_t i = 0; i < n; ++i)
        pts.push_back({static_cast<double>(i) * spacing, 0.5});
    return pts;
}

} // namespace

TEST(CorrelatedFieldSampler, UnitVarianceZeroMean)
{
    const CorrelatedFieldSampler sampler(linePositions(20, 0.05), 0.1);
    Rng rng(1, 0);
    OnlineStats stats;
    for (int s = 0; s < 2000; ++s)
        for (double v : sampler.sample(rng))
            stats.add(v);
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(CorrelatedFieldSampler, NearbySitesCorrelated)
{
    // Sites at distance 0.02 (inside phi=0.1) should correlate
    // strongly; sites at distance 0.5 should not.
    const CorrelatedFieldSampler sampler(linePositions(11, 0.05), 0.1);
    Rng rng(2, 0);
    double close_cov = 0.0, far_cov = 0.0;
    const int samples = 4000;
    for (int s = 0; s < samples; ++s) {
        const auto field = sampler.sample(rng);
        close_cov += field[0] * field[1]; // distance 0.05
        far_cov += field[0] * field[10]; // distance 0.5
    }
    close_cov /= samples;
    far_cov /= samples;
    EXPECT_NEAR(close_cov, sphericalCorrelation(0.05, 0.1), 0.06);
    EXPECT_NEAR(far_cov, 0.0, 0.06);
}

TEST(CorrelatedFieldSampler, CorrelatedCompanionField)
{
    const CorrelatedFieldSampler sampler(linePositions(8, 0.05), 0.1);
    Rng rng(3, 0);
    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    const int samples = 4000;
    for (int s = 0; s < samples; ++s) {
        const auto a = sampler.sample(rng);
        const auto b = sampler.sampleCorrelatedWith(a, 0.9, rng);
        for (std::size_t i = 0; i < a.size(); ++i) {
            cov += a[i] * b[i];
            var_a += a[i] * a[i];
            var_b += b[i] * b[i];
        }
    }
    const double rho = cov / std::sqrt(var_a * var_b);
    EXPECT_NEAR(rho, 0.9, 0.03);
}

TEST(VariationRealization, VarianceSplitRespectsTotals)
{
    VariationParams params;
    const CorrelatedFieldSampler sampler(linePositions(16, 0.07), 0.1);
    Rng rng(4, 0);
    OnlineStats vth;
    for (int s = 0; s < 3000; ++s) {
        VariationRealization real(sampler, params, rng);
        for (std::size_t i = 0; i < real.size(); ++i)
            vth.add(real.vthDev(i));
        // Systematic^2 + random^2 == total^2, every realization.
        const double sys_var = params.sigmaVthTotal *
            params.sigmaVthTotal * params.systematicFraction;
        EXPECT_NEAR(real.sigmaVthRandom() * real.sigmaVthRandom(),
                    params.sigmaVthTotal * params.sigmaVthTotal -
                        sys_var,
                    1e-12);
    }
    const double sys_sigma =
        params.sigmaVthTotal * std::sqrt(params.systematicFraction);
    EXPECT_NEAR(vth.stddev(), sys_sigma, 0.005);
    EXPECT_NEAR(vth.mean(), 0.0, 0.005);
}

TEST(VariationRealization, LeffTracksVth)
{
    VariationParams params;
    const CorrelatedFieldSampler sampler(linePositions(16, 0.07), 0.1);
    Rng rng(5, 0);
    double cov = 0, va = 0, vb = 0;
    for (int s = 0; s < 3000; ++s) {
        VariationRealization real(sampler, params, rng);
        for (std::size_t i = 0; i < real.size(); ++i) {
            cov += real.vthDev(i) * real.leffDev(i);
            va += real.vthDev(i) * real.vthDev(i);
            vb += real.leffDev(i) * real.leffDev(i);
        }
    }
    EXPECT_NEAR(cov / std::sqrt(va * vb),
                params.vthLeffCorrelation, 0.03);
}

TEST(VariationRealization, PathSigmaScaleBounded)
{
    VariationParams params;
    const CorrelatedFieldSampler sampler(linePositions(16, 0.07), 0.1);
    Rng rng(6, 0);
    VariationRealization real(sampler, params, rng);
    for (std::size_t i = 0; i < real.size(); ++i) {
        EXPECT_GE(real.pathSigmaScale(i), 0.7);
        EXPECT_LE(real.pathSigmaScale(i), 1.3);
    }
}

TEST(VariationRealization, Deterministic)
{
    VariationParams params;
    const CorrelatedFieldSampler sampler(linePositions(8, 0.05), 0.1);
    Rng rng_a(7, 3), rng_b(7, 3);
    VariationRealization a(sampler, params, rng_a);
    VariationRealization b(sampler, params, rng_b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.vthDev(i), b.vthDev(i));
        EXPECT_DOUBLE_EQ(a.leffDev(i), b.leffDev(i));
    }
}
