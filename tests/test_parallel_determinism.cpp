/**
 * @file
 * The parallel sweep layer's hard guarantee: every parallelized
 * sweep — Monte Carlo chip statistics, iso-execution-time pareto
 * fronts, dynamic orchestration over a chip sample — produces
 * bit-identical results at 1 thread, 2 threads, and
 * hardware_concurrency() threads, and across repeated runs at the
 * same seed. Parallelism must never be able to silently change a
 * paper number.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/accordion.hpp"
#include "core/dynamic.hpp"
#include "core/montecarlo.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace accordion;
using accordion::util::ThreadPool;

namespace {

/** 1, 2, and the machine's own width (deduplicated, sorted). */
std::vector<std::size_t>
threadCounts()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<std::size_t> counts = {1, 2,
                                       hw > 0 ? hw : 4};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    return counts;
}

/** Run @p fn with the global pool sized to @p threads. */
template <typename Fn>
auto
withThreads(std::size_t threads, Fn &&fn)
{
    ThreadPool::setGlobalThreads(threads);
    auto result = fn();
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
    return result;
}

void
expectSameStatistics(const core::SampleStatistics &a,
                     const core::SampleStatistics &b,
                     const std::string &label)
{
    EXPECT_EQ(a.metric, b.metric) << label;
    EXPECT_EQ(a.chips, b.chips) << label;
    // Bitwise equality, not tolerance: aggregation happens in chip-
    // id order from pre-sized slots, so scheduling cannot reorder
    // the floating-point reductions.
    EXPECT_EQ(a.mean, b.mean) << label;
    EXPECT_EQ(a.stddev, b.stddev) << label;
    EXPECT_EQ(a.min, b.min) << label;
    EXPECT_EQ(a.max, b.max) << label;
    EXPECT_EQ(a.p10, b.p10) << label;
    EXPECT_EQ(a.p90, b.p90) << label;
}

void
expectSameFront(const std::vector<core::OperatingPoint> &a,
                const std::vector<core::OperatingPoint> &b,
                const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].psRatio, b[i].psRatio) << label << " #" << i;
        EXPECT_EQ(a[i].n, b[i].n) << label << " #" << i;
        EXPECT_EQ(a[i].fHz, b[i].fHz) << label << " #" << i;
        EXPECT_EQ(a[i].perr, b[i].perr) << label << " #" << i;
        EXPECT_EQ(a[i].execSeconds, b[i].execSeconds)
            << label << " #" << i;
        EXPECT_EQ(a[i].powerW, b[i].powerW) << label << " #" << i;
        EXPECT_EQ(a[i].mips, b[i].mips) << label << " #" << i;
        EXPECT_EQ(a[i].mipsPerWatt, b[i].mipsPerWatt)
            << label << " #" << i;
        EXPECT_EQ(a[i].qualityRatio, b[i].qualityRatio)
            << label << " #" << i;
        EXPECT_EQ(a[i].feasible, b[i].feasible) << label << " #" << i;
        EXPECT_EQ(a[i].withinBudget, b[i].withinBudget)
            << label << " #" << i;
    }
}

void
expectSameReports(const std::vector<core::DynamicReport> &a,
                  const std::vector<core::DynamicReport> &b,
                  const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].totalSeconds, b[i].totalSeconds)
            << label << " chip " << i;
        EXPECT_EQ(a[i].energyJ, b[i].energyJ)
            << label << " chip " << i;
        EXPECT_EQ(a[i].reselections, b[i].reselections)
            << label << " chip " << i;
        ASSERT_EQ(a[i].phases.size(), b[i].phases.size())
            << label << " chip " << i;
        for (std::size_t p = 0; p < a[i].phases.size(); ++p) {
            EXPECT_EQ(a[i].phases[p].n, b[i].phases[p].n)
                << label << " chip " << i << " phase " << p;
            EXPECT_EQ(a[i].phases[p].fHz, b[i].phases[p].fHz)
                << label << " chip " << i << " phase " << p;
            EXPECT_EQ(a[i].phases[p].seconds, b[i].phases[p].seconds)
                << label << " chip " << i << " phase " << p;
            EXPECT_EQ(a[i].phases[p].powerW, b[i].phases[p].powerW)
                << label << " chip " << i << " phase " << p;
        }
    }
}

class ParallelDeterminism : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        util::setVerbose(false);
        system_ = new core::AccordionSystem();
        // Profiles are measured lazily and cached on the system;
        // warm them on the main thread so the parallel regions only
        // ever read them.
        system_->profile("canneal");
        system_->profile("hotspot");
    }

    static void TearDownTestSuite()
    {
        delete system_;
        system_ = nullptr;
    }

    static core::AccordionSystem *system_;
};

core::AccordionSystem *ParallelDeterminism::system_ = nullptr;

TEST_F(ParallelDeterminism, MonteCarloValuesIdenticalAcrossThreadCounts)
{
    auto run = [&] {
        const core::MonteCarloEvaluator mc(system_->factory(), 12);
        return mc.values([](const vartech::VariationChip &chip) {
            double f = 1e300;
            for (std::size_t k = 0; k < chip.numClusters(); ++k)
                f = std::min(f, chip.clusterSafeF(k));
            return f * chip.vddNtv();
        });
    };
    const auto ref = withThreads(1, run);
    ASSERT_EQ(ref.size(), 12u);
    for (std::size_t threads : threadCounts()) {
        const auto got = withThreads(threads, run);
        EXPECT_EQ(got, ref) << threads << " threads";
    }
}

TEST_F(ParallelDeterminism, MonteCarloStatisticsIdenticalAcrossThreadCounts)
{
    auto run = [&] {
        const core::MonteCarloEvaluator mc(system_->factory(), 12);
        return mc.evaluate("vddNtv",
                           [](const vartech::VariationChip &chip) {
                               return chip.vddNtv();
                           });
    };
    const auto ref = withThreads(1, run);
    for (std::size_t threads : threadCounts())
        expectSameStatistics(
            withThreads(threads, run), ref,
            "stats @" + std::to_string(threads) + " threads");
}

TEST_F(ParallelDeterminism, ParetoFrontIdenticalAcrossThreadCounts)
{
    const rms::Workload &w = rms::findWorkload("canneal");
    const core::QualityProfile &profile = system_->profile("canneal");
    for (core::Flavor flavor :
         {core::Flavor::Safe, core::Flavor::Speculative}) {
        auto run = [&] {
            return system_->pareto().extract(w, profile, flavor);
        };
        const auto ref = withThreads(1, run);
        ASSERT_FALSE(ref.empty());
        for (std::size_t threads : threadCounts())
            expectSameFront(withThreads(threads, run), ref,
                            core::flavorName(flavor) + " @" +
                                std::to_string(threads));
    }
}

TEST_F(ParallelDeterminism, BspParetoFrontsMatchEventOracleAcrossThreads)
{
    // Drive the BSP engine through full fig6/fig7-style pareto
    // sweeps and demand bit-identical fronts against the serial
    // event-queue oracle at every thread count. Inside extract()
    // the estimates run from pool workers, so this also covers the
    // engine's nested-parallelism path. A reduced 3x3-cluster
    // floorplan (72 cores) keeps the per-transaction simulation
    // affordable; bodytrack and hotspot are the cheapest fig6
    // (PARSEC) and fig7 (Rodinia) kernels respectively.
    core::AccordionSystem::Config config;
    config.factory.geometry.clustersX = 3;
    config.factory.geometry.clustersY = 3;
    config.perfEngine = core::PerfEngine::Event;
    core::AccordionSystem oracle(config);
    config.perfEngine = core::PerfEngine::Bsp;
    core::AccordionSystem bsp(config);

    for (const char *name : {"bodytrack", "hotspot"}) {
        const rms::Workload &w = rms::findWorkload(name);
        // Warm both profile caches on the main thread.
        const core::QualityProfile &oracle_prof = oracle.profile(name);
        const core::QualityProfile &bsp_prof = bsp.profile(name);
        for (core::Flavor flavor :
             {core::Flavor::Safe, core::Flavor::Speculative}) {
            const auto ref = withThreads(1, [&] {
                return oracle.pareto().extract(w, oracle_prof, flavor);
            });
            ASSERT_FALSE(ref.empty());
            for (std::size_t threads : threadCounts()) {
                const auto got = withThreads(threads, [&] {
                    return bsp.pareto().extract(w, bsp_prof, flavor);
                });
                expectSameFront(got, ref,
                                std::string(name) + " " +
                                    core::flavorName(flavor) + " @" +
                                    std::to_string(threads));
            }
        }
    }
}

TEST_F(ParallelDeterminism, DynamicSampleIdenticalAcrossThreadCounts)
{
    const rms::Workload &w = rms::findWorkload("hotspot");
    const core::QualityProfile &profile = system_->profile("hotspot");
    const std::vector<core::ResilienceEvent> events = {{2, 0, 0.6},
                                                       {5, 0, 1.0}};
    auto run = [&] {
        return core::runOverSample(
            system_->factory(), 3, system_->powerModel(),
            system_->perfModel(), core::DynamicOrchestrator::Params{},
            w, profile, events);
    };
    const auto ref = withThreads(1, run);
    for (std::size_t threads : threadCounts())
        expectSameReports(withThreads(threads, run), ref,
                          "dynamic @" + std::to_string(threads));
}

TEST_F(ParallelDeterminism, EvaluateManyMatchesPerMetricEvaluate)
{
    // The chip-reuse sweep (one manufacture, all metrics) must be a
    // pure optimization: statistics bit-identical to the historical
    // one-manufacture-per-metric evaluate() calls, at every thread
    // count.
    const std::vector<core::MonteCarloEvaluator::NamedMetric>
        metrics = {
            {"vddNtv",
             [](const vartech::VariationChip &chip) {
                 return chip.vddNtv();
             }},
            {"slowest safe f",
             [](const vartech::VariationChip &chip) {
                 double f = 1e300;
                 for (std::size_t k = 0; k < chip.numClusters(); ++k)
                     f = std::min(f, chip.clusterSafeF(k));
                 return f;
             }},
            {"core0 spec f",
             [](const vartech::VariationChip &chip) {
                 return chip.coreFrequencyForErrorRate(0, 1e-6);
             }}};
    const core::MonteCarloEvaluator mc(system_->factory(), 12);
    const auto ref = withThreads(1, [&] {
        std::vector<core::SampleStatistics> out;
        for (const auto &m : metrics)
            out.push_back(mc.evaluate(m.name, m.metric));
        return out;
    });
    ASSERT_EQ(ref.size(), metrics.size());
    for (std::size_t threads : threadCounts()) {
        const auto many =
            withThreads(threads, [&] { return mc.evaluateMany(metrics); });
        ASSERT_EQ(many.size(), ref.size());
        for (std::size_t m = 0; m < ref.size(); ++m)
            expectSameStatistics(many[m], ref[m],
                                 metrics[m].name + " @" +
                                     std::to_string(threads) +
                                     " threads");
    }
}

TEST_F(ParallelDeterminism, MakeSampleMatchesSerialManufacture)
{
    // The parallel batch manufacture assembles chips in id order;
    // every chip must equal a direct make(id) bit for bit.
    auto fingerprint = [](const vartech::VariationChip &chip) {
        std::vector<double> v = {chip.vddNtv()};
        for (std::size_t c = 0; c < chip.numCores(); ++c) {
            v.push_back(chip.coreVthDev(c));
            v.push_back(chip.coreSafeF(c));
        }
        return v;
    };
    const auto batch = withThreads(threadCounts().back(), [&] {
        return system_->factory().makeSample(6);
    });
    ASSERT_EQ(batch.size(), 6u);
    for (std::size_t id = 0; id < batch.size(); ++id) {
        EXPECT_EQ(batch[id].chipId(), id);
        EXPECT_EQ(fingerprint(batch[id]),
                  fingerprint(system_->factory().make(id)))
            << "chip " << id;
    }
}

TEST_F(ParallelDeterminism, RepeatedRunsAtSameSeedIdentical)
{
    // Two runs of the same parallel sweep in the same process must
    // match bit for bit: no hidden shared RNG state, no
    // order-dependent caches.
    auto run = [&] {
        const core::MonteCarloEvaluator mc(system_->factory(), 12);
        return mc.values([](const vartech::VariationChip &chip) {
            return chip.clusterSafeF(0);
        });
    };
    const auto first = withThreads(2, run);
    const auto second = withThreads(2, run);
    EXPECT_EQ(first, second);
}

TEST_F(ParallelDeterminism, SeparatelyBuiltSystemsAgree)
{
    // A fresh AccordionSystem at the default seed reproduces the
    // shared fixture's chip exactly — manufacturing is a pure
    // function of (seed, chip id).
    core::AccordionSystem fresh;
    EXPECT_EQ(fresh.chip().vddNtv(), system_->chip().vddNtv());
    EXPECT_EQ(fresh.chip().coreSafeF(0), system_->chip().coreSafeF(0));
}

TEST(ParallelDeterminismRng, StreamAtIsPureAndIndexKeyed)
{
    // streamAt is a pure function of (seed, index)...
    auto a = util::Rng::streamAt(42, 7);
    auto b = util::Rng::streamAt(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    // ...with uncorrelated neighbours...
    auto c = util::Rng::streamAt(42, 8);
    auto d = util::Rng::streamAt(43, 7);
    int same_c = 0, same_d = 0;
    auto e = util::Rng::streamAt(42, 7);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t x = e.next();
        same_c += x == c.next();
        same_d += x == d.next();
    }
    EXPECT_LT(same_c, 3);
    EXPECT_LT(same_d, 3);
}

} // namespace
