/**
 * @file
 * Tests of the chip floorplan and the manufactured VariationChip:
 * topology invariants, Monte Carlo determinism, and the Fig. 5
 * reliability ranges.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vartech/variation_chip.hpp"

using namespace accordion::vartech;

namespace {

const ChipFactory &
factory()
{
    static const Technology tech = Technology::makeItrs11nm();
    static const ChipFactory fac(tech, ChipFactory::Params{}, 777);
    return fac;
}

const VariationChip &
chip()
{
    static const VariationChip c = factory().make(0);
    return c;
}

} // namespace

TEST(Geometry, Table2Shape)
{
    const ChipGeometry geo;
    EXPECT_EQ(geo.numClusters(), 36u);
    EXPECT_EQ(geo.coresPerCluster(), 8u);
    EXPECT_EQ(geo.numCores(), 288u);
}

TEST(Geometry, ClusterMembership)
{
    const ChipGeometry geo;
    for (std::size_t k = 0; k < geo.numClusters(); ++k) {
        const auto cores = geo.coresOfCluster(k);
        ASSERT_EQ(cores.size(), 8u);
        for (std::size_t core : cores)
            EXPECT_EQ(geo.clusterOfCore(core), k);
    }
}

TEST(Geometry, PositionsInsideUnitDie)
{
    const ChipGeometry geo;
    for (std::size_t c = 0; c < geo.numCores(); ++c) {
        const Point p = geo.corePosition(c);
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, 1.0);
    }
    for (std::size_t k = 0; k < geo.numClusters(); ++k) {
        const Point p = geo.clusterMemPosition(k);
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
    }
}

TEST(Geometry, CoresOfSameClusterAreClose)
{
    const ChipGeometry geo;
    const auto cores = geo.coresOfCluster(7);
    const double cluster_diag = std::sqrt(2.0) / 6.0;
    for (std::size_t a : cores)
        for (std::size_t b : cores)
            EXPECT_LE(distance(geo.corePosition(a),
                               geo.corePosition(b)),
                      cluster_diag + 1e-9);
}

TEST(Geometry, TorusHopsProperties)
{
    const ChipGeometry geo;
    for (std::size_t a = 0; a < geo.numClusters(); a += 5) {
        EXPECT_EQ(geo.torusHops(a, a), 0u);
        for (std::size_t b = 0; b < geo.numClusters(); b += 7) {
            EXPECT_EQ(geo.torusHops(a, b), geo.torusHops(b, a));
            // Max hop distance on a 6x6 torus is 3 + 3.
            EXPECT_LE(geo.torusHops(a, b), 6u);
        }
    }
}

TEST(Geometry, TorusWrapsAround)
{
    const ChipGeometry geo;
    // Clusters 0 and 5 are on the same row, 5 apart; the torus
    // wraps to 1 hop.
    EXPECT_EQ(geo.torusHops(0, 5), 1u);
}

TEST(VariationChip, Deterministic)
{
    const VariationChip a = factory().make(3);
    const VariationChip b = factory().make(3);
    EXPECT_DOUBLE_EQ(a.vddNtv(), b.vddNtv());
    for (std::size_t c = 0; c < a.numCores(); c += 17)
        EXPECT_DOUBLE_EQ(a.coreVthDev(c), b.coreVthDev(c));
}

TEST(VariationChip, ChipsDiffer)
{
    const VariationChip a = factory().make(1);
    const VariationChip b = factory().make(2);
    int same = 0;
    for (std::size_t c = 0; c < a.numCores(); ++c)
        same += a.coreVthDev(c) == b.coreVthDev(c);
    EXPECT_LT(same, 3);
}

TEST(VariationChip, VddNtvIsMaxClusterVddMin)
{
    double max_vmin = 0.0;
    for (std::size_t k = 0; k < chip().numClusters(); ++k)
        max_vmin = std::max(max_vmin, chip().clusterVddMin(k));
    EXPECT_DOUBLE_EQ(chip().vddNtv(), max_vmin);
}

TEST(VariationChip, ClusterVddMinCoversItsBlocks)
{
    for (std::size_t k = 0; k < chip().numClusters(); ++k) {
        EXPECT_GE(chip().clusterVddMin(k), chip().clusterMemVddMin(k));
        for (std::size_t core : chip().geometry().coresOfCluster(k))
            EXPECT_GE(chip().clusterVddMin(k),
                      chip().privateMemVddMin(core));
    }
}

TEST(VariationChip, Fig5aVddMinRange)
{
    // Per-cluster VddMIN varies in a significant ~0.46-0.58 V range
    // (representative chip).
    double lo = 1e9, hi = 0.0;
    for (std::size_t k = 0; k < chip().numClusters(); ++k) {
        lo = std::min(lo, chip().clusterVddMin(k));
        hi = std::max(hi, chip().clusterVddMin(k));
    }
    EXPECT_GT(lo, 0.42);
    EXPECT_LT(hi, 0.60);
    EXPECT_GT(hi - lo, 0.04); // significant spread
}

TEST(VariationChip, ClusterSafeFIsSlowestCore)
{
    for (std::size_t k = 0; k < chip().numClusters(); k += 5) {
        double f_min = 1e300;
        for (std::size_t core : chip().geometry().coresOfCluster(k))
            f_min = std::min(f_min, chip().coreSafeF(core));
        EXPECT_DOUBLE_EQ(chip().clusterSafeF(k), f_min);
        EXPECT_DOUBLE_EQ(
            chip().coreSafeF(chip().slowestCoreOfCluster(k)), f_min);
    }
}

TEST(VariationChip, Fig5bSafeFrequencySpread)
{
    // Section 6.1: the slowest core per cluster supports maximum
    // frequencies well below the 1 GHz NTV nominal, with a wide
    // spread across clusters.
    double lo = 1e300, hi = 0.0;
    for (std::size_t k = 0; k < chip().numClusters(); ++k) {
        const double f = chip().clusterSafeF(k);
        lo = std::min(lo, f);
        hi = std::max(hi, f);
        EXPECT_LT(f, 1.0e9);
    }
    EXPECT_LT(lo, 0.45e9);
    EXPECT_GT(hi / lo, 1.8); // ample speed differences
}

TEST(VariationChip, SpeculativeFrequencyAboveSafe)
{
    for (std::size_t core = 0; core < chip().numCores(); core += 31) {
        const double f_safe = chip().coreSafeF(core);
        const double f_spec =
            chip().coreFrequencyForErrorRate(core, 1e-7);
        EXPECT_GT(f_spec, f_safe);
    }
}

TEST(VariationChip, StaticPowerTracksVth)
{
    // Find a notably fast (low Vth) and slow (high Vth) core; the
    // fast one must leak more.
    std::size_t fast = 0, slow = 0;
    for (std::size_t c = 0; c < chip().numCores(); ++c) {
        if (chip().coreVthDev(c) < chip().coreVthDev(fast))
            fast = c;
        if (chip().coreVthDev(c) > chip().coreVthDev(slow))
            slow = c;
    }
    EXPECT_GT(chip().coreStaticPower(fast, 0.55),
              chip().coreStaticPower(slow, 0.55));
}

TEST(ChipFactory, SampleGeneration)
{
    const auto sample = factory().makeSample(5);
    ASSERT_EQ(sample.size(), 5u);
    for (std::size_t i = 0; i < sample.size(); ++i)
        EXPECT_EQ(sample[i].chipId(), i);
    // Chip-to-chip VddNTV varies across the sample.
    double lo = 1e9, hi = 0.0;
    for (const auto &c : sample) {
        lo = std::min(lo, c.vddNtv());
        hi = std::max(hi, c.vddNtv());
    }
    EXPECT_GT(hi, lo);
}
