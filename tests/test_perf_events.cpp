/**
 * @file
 * Tests of the hardware-counter layer (src/obs/perf_events.*): the
 * event-list parser, engagement and the degradation contract, delta
 * publication into the stats registry, and the availability
 * reporting blocks. Runs on any host: where perf_event_open is
 * unavailable (permissions, no PMU, non-Linux) the degraded-path
 * assertions are the interesting ones and the counting assertions
 * gate on hwEngaged().
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "harness/stats_report.hpp"
#include "obs/perf_events.hpp"
#include "obs/stats.hpp"
#include "test_json.hpp"

namespace obs = accordion::obs;

namespace {

using testjson::Json;
using testjson::JsonParser;

/** Scoped setenv/unsetenv of ACCORDION_PERF_EVENTS. */
class ScopedEventsEnv
{
  public:
    explicit ScopedEventsEnv(const char *value)
    {
        const char *old = std::getenv("ACCORDION_PERF_EVENTS");
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv("ACCORDION_PERF_EVENTS", value, 1);
        else
            ::unsetenv("ACCORDION_PERF_EVENTS");
    }

    ~ScopedEventsEnv()
    {
        if (had_)
            ::setenv("ACCORDION_PERF_EVENTS", saved_.c_str(), 1);
        else
            ::unsetenv("ACCORDION_PERF_EVENTS");
    }

  private:
    std::string saved_;
    bool had_ = false;
};

/** Leave every test with counters off and the registry disabled. */
class PerfEventsTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        obs::hwDisengage();
        obs::StatsRegistry::global().reset();
        obs::StatsRegistry::global().setEnabled(false);
    }
};

// ---------------------------------------------------------------
// Event-list parsing (pure, no syscalls)
// ---------------------------------------------------------------

TEST(PerfEventParse, DefaultsAreSevenKnownEvents)
{
    const auto specs = obs::defaultPerfEventSpecs();
    ASSERT_EQ(specs.size(), 7u);
    EXPECT_EQ(specs[0].name, "cycles");
    EXPECT_EQ(specs[1].name, "instructions");
    // task-clock rides along as a software event so the hw section
    // is never empty on a PMU-less host.
    EXPECT_EQ(specs.back().name, "task_clock_ns");
}

TEST(PerfEventParse, AliasesAcceptHyphensAndCase)
{
    std::vector<std::string> rejected;
    const auto specs = obs::parsePerfEventList(
        "Cache-Misses, BRANCH_MISSES ,instructions", &rejected);
    EXPECT_TRUE(rejected.empty());
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].name, "cache_misses");
    EXPECT_EQ(specs[1].name, "branch_misses");
    EXPECT_EQ(specs[2].name, "instructions");
}

TEST(PerfEventParse, RawEventsAndRejects)
{
    std::vector<std::string> rejected;
    const auto specs =
        obs::parsePerfEventList("r01c2,bogus,,cycles", &rejected);
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "r01c2");
    EXPECT_EQ(specs[0].config, 0x01c2u);
    EXPECT_EQ(specs[1].name, "cycles");
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0], "bogus");
}

TEST(PerfEventParse, DuplicateSpellingsCollapse)
{
    std::vector<std::string> rejected;
    const auto specs = obs::parsePerfEventList(
        "cycles,cpu-cycles,cycles", &rejected);
    EXPECT_TRUE(rejected.empty());
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].name, "cycles");
}

// ---------------------------------------------------------------
// Engagement & degradation
// ---------------------------------------------------------------

TEST_F(PerfEventsTest, DisengagedIsInertEverywhere)
{
    obs::hwDisengage();
    EXPECT_FALSE(obs::hwEngaged());
    EXPECT_TRUE(obs::hwEventNames().empty());
    obs::HwSample sample;
    EXPECT_FALSE(obs::hwSampleNow(&sample));

    // A scoped region over an enabled registry publishes nothing.
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();
    {
        ACC_SCOPED_HW("test.inert");
    }
    for (const obs::StatEntry &e : registry.snapshot())
        EXPECT_NE(e.name.rfind("hw.", 0), 0u) << e.name;
}

TEST_F(PerfEventsTest, BogusEventListDegradesCleanly)
{
    // Every requested event is unknown: engagement must fail with
    // disengaged semantics, not crash or half-engage.
    ScopedEventsEnv env("nonsense,also-bogus");
    ::testing::internal::CaptureStderr();
    const bool engaged = obs::hwEngage();
    const std::string note =
        ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(engaged);
    EXPECT_FALSE(obs::hwEngaged());
    EXPECT_TRUE(obs::hwEventNames().empty());
    obs::HwSample sample;
    EXPECT_FALSE(obs::hwSampleNow(&sample));
}

TEST_F(PerfEventsTest, EngageIsIdempotentAndStatusIsComplete)
{
    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    const bool first = obs::hwEngage();
    const bool second = obs::hwEngage(); // no second probe, no note
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(first, second);

    // Whatever this host supports, every default event has a
    // definite probe outcome: available, or a real errno.
    const auto status = obs::hwEventStatus();
    ASSERT_EQ(status.size(), obs::defaultPerfEventSpecs().size());
    for (const obs::PerfEventStatus &s : status) {
        if (!s.available) {
            EXPECT_NE(s.error, 0) << s.spec.name;
        }
    }
    EXPECT_EQ(obs::hwEventNames().size(),
              static_cast<std::size_t>(
                  std::count_if(status.begin(), status.end(),
                                [](const obs::PerfEventStatus &s) {
                                    return s.available;
                                })));
}

TEST_F(PerfEventsTest, SamplingAndPublishWhenEngaged)
{
    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    const bool engaged = obs::hwEngage();
    ::testing::internal::GetCapturedStderr();
    if (!engaged)
        GTEST_SKIP() << "perf_event_open unavailable on this host";

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();

    obs::HwSample a, b;
    ASSERT_TRUE(obs::hwSampleNow(&a));
    // Burn some cycles so at least task-clock/cycles advance.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i)
        sink = sink + static_cast<double>(i) * 1e-9;
    ASSERT_TRUE(obs::hwSampleNow(&b));
    EXPECT_EQ(a.n, obs::hwEventNames().size());
    double advanced = 0.0;
    for (std::size_t i = 0; i < b.n; ++i)
        advanced += b.values[i] - a.values[i];
    EXPECT_GT(advanced, 0.0);

    obs::hwPublishDelta("test.scope", a, b);
    bool saw_counter = false;
    for (const obs::StatEntry &e : registry.snapshot()) {
        if (e.name.rfind("hw.test.scope.", 0) == 0 &&
            e.kind == obs::StatKind::Counter && e.count > 0)
            saw_counter = true;
    }
    EXPECT_TRUE(saw_counter);
}

TEST_F(PerfEventsTest, ScopedRegionPublishesUnderItsName)
{
    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    const bool engaged = obs::hwEngage();
    ::testing::internal::GetCapturedStderr();
    if (!engaged)
        GTEST_SKIP() << "perf_event_open unavailable on this host";

    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();
    {
        ACC_SCOPED_HW("test.region");
        volatile double sink = 0.0;
        for (int i = 0; i < 200000; ++i)
            sink = sink + static_cast<double>(i) * 1e-9;
    }
    bool saw = false;
    for (const obs::StatEntry &e : registry.snapshot())
        if (e.name.rfind("hw.test.region.", 0) == 0)
            saw = true;
    EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------
// Availability reporting
// ---------------------------------------------------------------

TEST_F(PerfEventsTest, AvailabilityJsonIsWellFormed)
{
    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    obs::hwEngage();
    ::testing::internal::GetCapturedStderr();

    const Json root = JsonParser(obs::hwAvailabilityJson()).parse();
    EXPECT_EQ(root.at("engaged").type, Json::Bool);
    EXPECT_EQ(root.at("paranoid").type, Json::Number);
    ASSERT_EQ(root.at("events").type, Json::Object);
    // Every default event reports "ok" or an errno name.
    EXPECT_EQ(root.at("events").fields.size(),
              obs::defaultPerfEventSpecs().size());
    for (const auto &[name, value] : root.at("events").fields) {
        EXPECT_EQ(value.type, Json::String) << name;
        EXPECT_FALSE(value.text.empty()) << name;
    }
}

TEST_F(PerfEventsTest, RunSummaryCarriesAvailabilityBlock)
{
    namespace harness = accordion::harness;
    namespace fs = std::filesystem;

    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    obs::hwEngage();
    ::testing::internal::GetCapturedStderr();

    const fs::path dir =
        fs::temp_directory_path() /
        ("accordion-test-summary-" + std::to_string(::getpid()));
    fs::create_directories(dir);
    harness::RunContext::Options run;
    run.outDir = dir.string();
    const std::string path = (dir / "run_summary.json").string();
    harness::writeRunSummary(path, run, "", 1, {});

    std::ifstream in(path, std::ios::binary);
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    const Json root = JsonParser(text).parse();
    const Json &avail = root.at("environment").at("perf_events");
    EXPECT_EQ(avail.at("engaged").type, Json::Bool);
    EXPECT_EQ(avail.at("events").type, Json::Object);
    EXPECT_FALSE(avail.at("events").fields.empty());

    std::error_code ec;
    fs::remove_all(dir, ec);
}

TEST_F(PerfEventsTest, SummaryReflectsEngagementState)
{
    obs::hwDisengage();
    ScopedEventsEnv env(nullptr);
    ::testing::internal::CaptureStderr();
    const bool engaged = obs::hwEngage();
    ::testing::internal::GetCapturedStderr();
    const std::string summary = obs::hwSummary();
    if (engaged)
        EXPECT_NE(summary.find(obs::hwEventNames()[0]),
                  std::string::npos)
            << summary;
    else
        EXPECT_NE(summary.find("unavailable"), std::string::npos)
            << summary;
}

} // namespace
